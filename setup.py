"""Compatibility shim for editable installs on environments without the
``wheel`` package (all real metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
