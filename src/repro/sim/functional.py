"""Functional execution support: values, surrogates and the reference.

The functional simulator needs a concrete function for every kernel.
Real DSP kernels come from :mod:`repro.kernels`; for workloads defined
only by sizes (the paper's synthetic experiments) a *surrogate kernel*
provides a deterministic, input-sensitive stand-in: every output word
depends on the sum of every input word, the iteration index and the
(kernel, output) identity.  Any scheduling bug that delivers a stale,
missing or wrong-iteration operand changes the output values and is
caught by comparing against :func:`reference_outputs`.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from repro.arch.external_memory import ExternalMemory
from repro.core.application import Application
from repro.errors import SimulationError

__all__ = [
    "KernelImpl",
    "surrogate_kernel",
    "populate_external_inputs",
    "reference_outputs",
]

#: Signature of a functional kernel implementation: takes the kernel's
#: input arrays (by object name) and the iteration index, returns its
#: output arrays (by object name).
KernelImpl = Callable[[Mapping[str, np.ndarray], int], Dict[str, np.ndarray]]

_MODULUS = 2 ** 31 - 1


def _salt(kernel_name: str, out_name: str) -> int:
    return zlib.crc32(f"{kernel_name}/{out_name}".encode()) % 1000003


def surrogate_kernel(application: Application, kernel_name: str) -> KernelImpl:
    """A deterministic stand-in implementation for one kernel.

    For each output of *size* words::

        out[i] = (sum(all input words) + iteration + salt + i) mod (2^31 - 1)

    The full dependence on every input word makes the surrogate a
    sensitive detector of data-movement bugs.
    """
    kernel = application.kernel(kernel_name)
    output_sizes = {
        name: application.object(name).size for name in kernel.outputs
    }

    def implementation(
        inputs: Mapping[str, np.ndarray], iteration: int
    ) -> Dict[str, np.ndarray]:
        missing = [name for name in kernel.inputs if name not in inputs]
        if missing:
            raise SimulationError(
                f"kernel {kernel_name!r}: missing inputs {missing}"
            )
        base = sum(int(np.sum(inputs[name])) for name in kernel.inputs)
        base = (base + iteration) % _MODULUS
        outputs: Dict[str, np.ndarray] = {}
        for out_name, size in output_sizes.items():
            ramp = np.arange(size, dtype=np.int64)
            outputs[out_name] = (base + _salt(kernel_name, out_name) + ramp) % _MODULUS
        return outputs

    return implementation


def build_impls(
    application: Application,
    overrides: Mapping[str, KernelImpl] = (),
) -> Dict[str, KernelImpl]:
    """Implementations for every kernel: overrides, else surrogates."""
    overrides = dict(overrides or {})
    impls: Dict[str, KernelImpl] = {}
    for kernel in application.kernels:
        impls[kernel.name] = overrides.get(
            kernel.name, surrogate_kernel(application, kernel.name)
        )
    return impls


def populate_external_inputs(
    application: Application,
    memory: ExternalMemory,
    *,
    seed: int = 2002,
) -> None:
    """Fill external memory with deterministic pseudo-random inputs for
    every iteration of every external object."""
    rng = np.random.RandomState(seed)
    for name in application.external_inputs():
        obj = application.object(name)
        if obj.invariant:
            values = rng.randint(0, 1 << 15, size=obj.size).astype(np.int64)
            memory.put(name, 0, values)
            continue
        for iteration in range(application.total_iterations):
            values = rng.randint(0, 1 << 15, size=obj.size).astype(np.int64)
            memory.put(name, iteration, values)


def reference_outputs(
    application: Application,
    memory: ExternalMemory,
    impls: Mapping[str, KernelImpl],
) -> Dict[Tuple[str, int], np.ndarray]:
    """Direct (unscheduled) execution of the application.

    Reads external inputs from *memory* without counting traffic and
    returns ``{(final_output, iteration): values}`` — the golden data
    the scheduled run must reproduce.
    """
    golden: Dict[Tuple[str, int], np.ndarray] = {}
    for iteration in range(application.total_iterations):
        values: Dict[str, np.ndarray] = {}
        for name in application.external_inputs():
            instance = 0 if application.object(name).invariant else iteration
            stored = memory.get(name, instance)
            if stored is None:
                raise SimulationError(
                    f"external input {name}#{iteration} missing or not "
                    f"functional; call populate_external_inputs first"
                )
            values[name] = stored
        for kernel in application.kernels:
            inputs = {name: values[name] for name in kernel.inputs}
            outputs = impls[kernel.name](inputs, iteration)
            for out_name in kernel.outputs:
                if out_name not in outputs:
                    raise SimulationError(
                        f"kernel {kernel.name!r} implementation did not "
                        f"produce {out_name!r}"
                    )
                values[out_name] = np.asarray(outputs[out_name], dtype=np.int64)
        for final_name in application.final_outputs:
            golden[(final_name, iteration)] = values[final_name]
    return golden
