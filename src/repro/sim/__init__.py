"""Event-driven simulation of programs on the M1 machine model.

The simulator serialises every transfer on the single DMA channel,
overlaps transfers with computation through the two frame-buffer sets
(and the two context-memory blocks), and reports the makespan, the
traffic broken down by kind, and the RC-array stall time — the numbers
behind the paper's Figure 6 / Table 1.

In *functional* mode the simulator additionally moves real values:
external inputs flow through loads, kernel executions and stores, and
the resulting outputs are compared against a direct (unscheduled)
reference execution — proving the schedule preserves semantics, not
just capacity constraints.
"""

from repro.sim.batch import simulate_many, simulate_program
from repro.sim.engine import Simulator
from repro.sim.functional import (
    populate_external_inputs,
    reference_outputs,
    surrogate_kernel,
)
from repro.sim.report import SimulationReport, VisitTiming

__all__ = [
    "SimulationReport",
    "Simulator",
    "VisitTiming",
    "populate_external_inputs",
    "reference_outputs",
    "simulate_many",
    "simulate_program",
    "surrogate_kernel",
]
