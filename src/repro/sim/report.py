"""Simulation results: timing, traffic and the per-visit Gantt trace."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.dma import DmaTransfer, TransferKind

__all__ = ["VisitTiming", "SimulationReport"]


@dataclass(frozen=True)
class VisitTiming:
    """When one visit's computation ran.

    Attributes:
        index: visit index (round-major).
        round_index / cluster_index / fb_set: identification.
        prep_finish: cycle when the visit's loads and contexts were all
            in place.
        compute_start / compute_end: the RC-array busy window.
    """

    index: int
    round_index: int
    cluster_index: int
    fb_set: int
    prep_finish: int
    compute_start: int
    compute_end: int

    @property
    def compute_cycles(self) -> int:
        return self.compute_end - self.compute_start


@dataclass(frozen=True)
class SimulationReport:
    """Everything a simulation run measured.

    Attributes:
        scheduler: scheduler name from the schedule.
        application: application name.
        total_cycles: the makespan (DMA drain included).
        compute_cycles: total RC-array busy cycles.
        rc_stall_cycles: cycles the RC array sat idle between visits
            waiting for transfers.
        dma_busy_cycles: cycles the DMA channel was transferring.
        data_load_words / data_store_words / context_words: traffic.
        data_load_count / data_store_count / context_load_count:
            transfer operation counts.
        visits: per-visit timing (the Gantt trace rows).
        transfers: the raw DMA transfer trace.
        functional_verified: True when functional mode ran and every
            final output matched the reference execution.
    """

    scheduler: str
    application: str
    total_cycles: int
    compute_cycles: int
    rc_stall_cycles: int
    dma_busy_cycles: int
    data_load_words: int
    data_store_words: int
    context_words: int
    data_load_count: int
    data_store_count: int
    context_load_count: int
    visits: Tuple[VisitTiming, ...]
    transfers: Tuple[DmaTransfer, ...]
    functional_verified: Optional[bool] = None

    @property
    def data_words(self) -> int:
        """Total data traffic (loads + stores)."""
        return self.data_load_words + self.data_store_words

    @property
    def dma_utilisation(self) -> float:
        """Fraction of the makespan the DMA channel was busy."""
        return self.dma_busy_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def rc_utilisation(self) -> float:
        """Fraction of the makespan the RC array was busy."""
        return self.compute_cycles / self.total_cycles if self.total_cycles else 0.0

    def improvement_over(self, baseline: "SimulationReport") -> float:
        """Relative execution improvement (the paper's Figure 6 metric):
        ``(T_baseline - T_this) / T_baseline``, in [0, 1] when faster."""
        if baseline.total_cycles <= 0:
            raise ValueError("baseline has non-positive makespan")
        return (baseline.total_cycles - self.total_cycles) / baseline.total_cycles

    def gantt(self, *, width: int = 72) -> str:
        """ASCII Gantt chart of compute windows and DMA activity."""
        if not self.visits:
            return "(empty run)"
        scale = max(self.total_cycles, 1)
        lines: List[str] = [
            f"{'visit':>6} {'cluster':>8} {'set':>3}  timeline "
            f"(total {self.total_cycles} cycles)"
        ]
        for timing in self.visits:
            start = int(timing.compute_start / scale * width)
            # A window ending at the makespan lands exactly on `width`;
            # clamp like the DMA row so the right frame edge survives.
            end = min(
                max(int(timing.compute_end / scale * width), start + 1),
                width,
            )
            bar = " " * start + "#" * (end - start)
            lines.append(
                f"{timing.index:>6} {('Cl' + str(timing.cluster_index + 1)):>8} "
                f"{timing.fb_set:>3}  |{bar:<{width}}|"
            )
        if not self.transfers:
            # The run recorded no per-transfer trace (trace=False) —
            # an empty bar would be indistinguishable from an idle DMA.
            lines.append(f"{'DMA':>19}  (trace disabled)")
            return "\n".join(lines)
        dma_bar = [" "] * width
        for transfer in self.transfers:
            start = int(transfer.start / scale * width)
            end = max(int(transfer.finish / scale * width), start + 1)
            mark = {"data_load": "L", "data_store": "S", "context_load": "C"}[
                transfer.kind.value
            ]
            for position in range(start, min(end, width)):
                dma_bar[position] = mark
        lines.append(f"{'DMA':>19}  |{''.join(dma_bar)}|")
        return "\n".join(lines)
