"""Batch simulation helpers for analysis drivers.

The ablation/sweep/corpus drivers and the fuzz runner all follow the
same shape: lower a schedule, build a fresh machine, simulate, keep the
:class:`~repro.sim.report.SimulationReport`.  :func:`simulate_program`
captures that shape once — defaulting to the vectorized hot path
(``trace=False``, ``verify=False``) — and :func:`simulate_many` maps it
over a batch of programs so callers get one report per program without
re-spelling the machine/simulator plumbing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.program import Program
from repro.schedule.context_scheduler import DmaPolicy
from repro.sim.engine import Simulator
from repro.sim.report import SimulationReport

__all__ = ["simulate_program", "simulate_many"]


def simulate_program(
    program: Program,
    architecture: Architecture,
    *,
    machine: Optional[MorphoSysM1] = None,
    dma_policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
    trace: bool = False,
    verify: bool = False,
    engine: str = "auto",
) -> SimulationReport:
    """Simulate one lowered program on a fresh (or given) machine.

    Defaults differ from :class:`Simulator` on purpose: batch drivers
    consume aggregate reports, so the per-transfer trace and the
    program re-verification are off unless explicitly requested.
    """
    if machine is None:
        machine = MorphoSysM1(architecture)
    simulator = Simulator(
        machine,
        dma_policy=dma_policy,
        trace=trace,
        verify=verify,
        engine=engine,
    )
    return simulator.run(program)


def simulate_many(
    programs: Iterable[Program],
    architecture: Architecture,
    *,
    dma_policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
    trace: bool = False,
    verify: bool = False,
    engine: str = "auto",
) -> List[SimulationReport]:
    """Simulate a batch of programs, one fresh machine per program.

    Each program gets its own machine so DMA statistics and memory
    state never bleed between batch entries.
    """
    return [
        simulate_program(
            program,
            architecture,
            dma_policy=dma_policy,
            trace=trace,
            verify=verify,
            engine=engine,
        )
        for program in programs
    ]
