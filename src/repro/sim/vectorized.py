"""Vectorized timeline evaluator: the simulator's hot path.

The event-driven engine in :mod:`repro.sim.engine` resolves the
DMA-serialization / overlap-window recurrence by walking every visit's
context loads, data loads and stores item by item.  The analysis
drivers (corpus, sweep, ablations, fuzz) simulate thousands of programs
per campaign with the per-transfer trace off, so the per-item Python
work — attribute lookups, :meth:`DmaChannel.request` calls, dict
updates — dominates the whole ``simulate`` stage.

This module rebuilds that hot path in two phases:

1. :class:`TimelineTables` — one pass over the program lowers every
   visit's transfer groups into NumPy arrays: per-visit word counts,
   operation counts, cycle costs (the timing model is linear, so a
   group's duration is ``count * setup + words * per_word`` exactly),
   compute cycles, FB-set assignment and the previous-same-set links.
   The arrays are converted to plain Python lists at the end, because
   the recurrence loop consumes scalars and ``np.int64`` boxing is
   slower than native ints there.
2. :func:`evaluate_timeline` — one tight loop over visits resolves the
   serialisation recurrence with scalar arithmetic only: no per-item
   iteration, no DMA-channel method calls, no dict writes.  Aggregate
   DMA statistics fall out of vectorized sums at table-build time
   (every transfer group is issued exactly once), so the loop only has
   to track the timeline itself.

The result is **byte-identical** to the reference engine's trace-off
fast path: the same :class:`~repro.sim.report.VisitTiming` rows, the
same DMA busy/traffic aggregates, the same makespan — equivalence- and
property-tested against the reference engine across the fuzz generator
matrix (``tests/sim/test_vectorized_equivalence.py``) and enforced by
the fuzz campaign's ``simengine`` oracle, mirroring the
``incremental ≡ naive`` occupancy-engine pattern.

Tables are cached per program object (keyed by identity, evicted by
weakref callback), so repeated simulations of one program — the DMA
policy ablation's three runs, ``repro bench``'s best-of-N repeats, the
``simulate_many`` batch API — build them once.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.arch.dma import TransferKind
from repro.arch.params import TimingModel
from repro.codegen.program import Program
from repro.schedule.context_scheduler import (
    DmaPolicy,
    loads_may_precede_stores,
)
from repro.sim.report import VisitTiming

__all__ = ["TimelineTables", "tables_for", "evaluate_timeline"]


def _segment_sums(values: Iterable[int], counts: np.ndarray) -> np.ndarray:
    """Sum a flat per-item sequence into per-visit segments.

    ``counts[i]`` items of *values* belong to visit ``i``.  Implemented
    with a cumulative sum differenced at the segment boundaries, which
    (unlike ``np.add.reduceat``) is exact for empty segments.
    """
    total = int(counts.sum())
    if total == 0:
        return np.zeros(len(counts), dtype=np.int64)
    flat = np.fromiter(values, dtype=np.int64, count=total)
    running = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(flat)))
    ends = np.cumsum(counts)
    return running[ends] - running[ends - counts]


class TimelineTables:
    """Per-program arrays consumed by :func:`evaluate_timeline`.

    Built once per ``(program, timing model)`` pair; independent of the
    DMA policy and of any machine state, so one instance serves every
    simulation of the program.
    """

    __slots__ = (
        "count", "ident", "iter_len", "fb", "prev_same", "comp",
        "ctx_words", "ctx_dur", "ctx_cnt",
        "ld_words", "ld_dur", "ld_cnt",
        "st_words", "st_dur", "st_cnt",
        "totals", "__weakref__",
    )

    def __init__(self, program: Program, timing: TimingModel) -> None:
        visits = program.visits
        n = len(visits)
        self.count = n
        self.ident = [
            (ops.visit.index, ops.visit.round_index,
             ops.visit.cluster_index, ops.visit.fb_set)
            for ops in visits
        ]
        self.iter_len = [len(ops.visit.iterations) for ops in visits]
        fb = [ops.visit.fb_set for ops in visits]
        self.fb = fb
        # Previous visit on the same FB set (-1 if none): the set-drain
        # dependency of the loads.
        last_seen: Dict[int, int] = {}
        prev_same = [-1] * n
        for index, fb_set in enumerate(fb):
            prev_same[index] = last_seen.get(fb_set, -1)
            last_seen[fb_set] = index
        self.prev_same = prev_same

        ctx_cnt = np.fromiter(
            (len(ops.context_loads) for ops in visits), np.int64, count=n
        )
        ld_cnt = np.fromiter(
            (len(ops.data_loads) for ops in visits), np.int64, count=n
        )
        st_cnt = np.fromiter(
            (len(ops.stores) for ops in visits), np.int64, count=n
        )
        run_cnt = np.fromiter(
            (len(ops.compute) for ops in visits), np.int64, count=n
        )
        ctx_words = _segment_sums(
            (load.words for ops in visits for load in ops.context_loads),
            ctx_cnt,
        )
        ld_words = _segment_sums(
            (load.words for ops in visits for load in ops.data_loads),
            ld_cnt,
        )
        st_words = _segment_sums(
            (store.words for ops in visits for store in ops.stores),
            st_cnt,
        )
        comp = _segment_sums(
            (run.cycles for ops in visits for run in ops.compute),
            run_cnt,
        )
        # Linear timing model: every op moves > 0 words (validated at
        # construction), so a group of k ops moving w words total costs
        # exactly k bursts of setup plus w per-word cycles — the same
        # value the reference engine accumulates item by item.
        setup = timing.dma_setup_cycles
        ctx_dur = ctx_cnt * setup + ctx_words * timing.context_word_cycles
        ld_dur = ld_cnt * setup + ld_words * timing.data_word_cycles
        st_dur = st_cnt * setup + st_words * timing.data_word_cycles

        # Every group is issued exactly once per simulation, so the
        # aggregate DMA statistics are plain sums, independent of the
        # timeline interleaving.
        self.totals = {
            TransferKind.CONTEXT_LOAD: (
                int(ctx_words.sum()), int(ctx_cnt.sum()), int(ctx_dur.sum())
            ),
            TransferKind.DATA_LOAD: (
                int(ld_words.sum()), int(ld_cnt.sum()), int(ld_dur.sum())
            ),
            TransferKind.DATA_STORE: (
                int(st_words.sum()), int(st_cnt.sum()), int(st_dur.sum())
            ),
        }

        # The recurrence loop consumes scalars; native ints beat
        # np.int64 boxing there.
        self.comp = comp.tolist()
        self.ctx_words = ctx_words.tolist()
        self.ctx_dur = ctx_dur.tolist()
        self.ctx_cnt = ctx_cnt.tolist()
        self.ld_words = ld_words.tolist()
        self.ld_dur = ld_dur.tolist()
        self.ld_cnt = ld_cnt.tolist()
        self.st_words = st_words.tolist()
        self.st_dur = st_dur.tolist()
        self.st_cnt = st_cnt.tolist()


# Keyed by id(program); the weakref guards against id reuse after
# collection and the callback evicts the entry when the program dies.
_TABLE_CACHE: Dict[int, Tuple[weakref.ref, TimingModel, TimelineTables]] = {}


def tables_for(program: Program, timing: TimingModel) -> TimelineTables:
    """The (cached) :class:`TimelineTables` of one program."""
    key = id(program)
    entry = _TABLE_CACHE.get(key)
    if entry is not None:
        ref, cached_timing, tables = entry
        if ref() is program and cached_timing == timing:
            return tables
    tables = TimelineTables(program, timing)

    def _evict(
        _ref: "weakref.ref[Program]", _key: int = key
    ) -> None:
        _TABLE_CACHE.pop(_key, None)

    _TABLE_CACHE[key] = (weakref.ref(program, _evict), timing, tables)
    return tables


def evaluate_timeline(
    program: Program,
    tables: TimelineTables,
    policy: DmaPolicy,
    busy_start: int,
) -> Tuple[List[VisitTiming], int]:
    """Resolve the DMA/overlap recurrence over precomputed tables.

    Mirrors the reference engine's trace-off path exactly — the same
    issue order, the same ``max(busy, earliest)`` block placement, the
    same policy branches — with all per-item work hoisted into
    *tables*.

    Returns ``(visit timings, final DMA busy_until)``.  Aggregate
    traffic statistics are in ``tables.totals``; the caller accounts
    them into the DMA channel in one step.
    """
    n = tables.count
    if n == 0:
        return [], busy_start

    ctx_words, ctx_dur, ctx_cnt = tables.ctx_words, tables.ctx_dur, tables.ctx_cnt
    ld_words, ld_dur, ld_cnt = tables.ld_words, tables.ld_dur, tables.ld_cnt
    st_words, st_dur, st_cnt = tables.st_words, tables.st_dur, tables.st_cnt
    comp, fb, prev_same = tables.comp, tables.fb, tables.prev_same

    loads_before_contexts = policy is DmaPolicy.LOADS_FIRST
    adaptive = policy is DmaPolicy.ADAPTIVE
    if adaptive:
        # Per-window soundness of loads overtaking the previous visit's
        # stores; depends only on cluster pairs, so memoised.
        schedule = program.schedule
        window_memo: Dict[Tuple[int, int, int], bool] = {}
        ident = tables.ident
        iter_len = tables.iter_len
        adaptive_loads_first = [False] * n
        for index in range(1, n - 1):
            key = (
                ident[index - 1][2], ident[index + 1][2],
                iter_len[index - 1],
            )
            flag = window_memo.get(key)
            if flag is None:
                flag = loads_may_precede_stores(schedule, *key)
                window_memo[key] = flag
            adaptive_loads_first[index] = flag

    busy = busy_start
    prep = [0] * n
    cstart = [0] * n
    cend = [0] * n
    stores_issued = [False] * n

    def issue_prep(index: int, earliest: int) -> None:
        nonlocal busy
        prev = prev_same[index]
        set_free = cend[prev] if prev >= 0 else 0

        def issue_contexts() -> int:
            nonlocal busy
            if ctx_cnt[index] == 0:
                return earliest
            if ctx_words[index] == 0:
                return busy if busy > earliest else earliest
            start = busy if busy > earliest else earliest
            busy = start + ctx_dur[index]
            return busy

        def issue_loads() -> int:
            nonlocal busy
            if ld_cnt[index] == 0:
                return earliest
            start_at = earliest if earliest > set_free else set_free
            if ld_words[index] == 0:
                return busy if busy > start_at else start_at
            start = busy if busy > start_at else start_at
            busy = start + ld_dur[index]
            return busy

        if loads_before_contexts:
            finish = max(earliest, issue_loads(), issue_contexts())
        else:
            finish = max(earliest, issue_contexts(), issue_loads())
        prep[index] = finish

    def issue_stores(index: int) -> None:
        nonlocal busy
        if stores_issued[index]:
            return
        stores_issued[index] = True
        if st_cnt[index] == 0 or st_words[index] == 0:
            return
        earliest = cend[index]
        start = busy if busy > earliest else earliest
        busy = start + st_dur[index]

    pipelined = program.schedule.overlap_transfers
    if pipelined:
        issue_prep(0, 0)
    for index in range(n):
        previous_end = cend[index - 1] if index else 0
        if not pipelined:
            # Serial mode (Basic Scheduler): the previous visit's
            # stores and this visit's preparation all happen after the
            # previous computation, before this one.
            if index > 0:
                issue_stores(index - 1)
            issue_prep(index, previous_end)
        start = prep[index] if prep[index] > previous_end else previous_end
        end = start + comp[index]
        cstart[index] = start
        cend[index] = end
        if not pipelined:
            continue
        if index + 1 < n:
            if policy is DmaPolicy.LOADS_FIRST:
                loads_first = True
            elif adaptive and index > 0:
                loads_first = adaptive_loads_first[index]
            else:
                loads_first = False
            if fb[index + 1] == fb[index]:
                # The next visit reuses this set: its loads must follow
                # this visit's compute and stores, whatever the policy.
                if index > 0:
                    issue_stores(index - 1)
                issue_stores(index)
                issue_prep(index + 1, end)
            elif not loads_first:
                if index > 0:
                    issue_stores(index - 1)
                issue_prep(index + 1, previous_end)
            else:
                issue_prep(index + 1, previous_end)
                if index > 0:
                    issue_stores(index - 1)
        else:
            if index > 0:
                issue_stores(index - 1)
    issue_stores(n - 1)

    ident = tables.ident
    timings = [
        VisitTiming(
            index=ident[i][0],
            round_index=ident[i][1],
            cluster_index=ident[i][2],
            fb_set=ident[i][3],
            prep_finish=prep[i],
            compute_start=cstart[i],
            compute_end=cend[i],
        )
        for i in range(n)
    ]
    return timings, busy
