"""The event-driven execution engine.

Timing model (paper section 2's structural constraints):

* one **DMA channel** serialises every transfer — data loads, result
  stores and context loads never overlap each other;
* a visit's computation starts when (a) the RC array is free and (b) the
  visit's *preparation* (context loads + data loads) has finished;
* preparation of visit ``v + 1`` overlaps visit ``v``'s computation
  **when they use different FB sets** (the normal alternating case);
  when consecutive visits share a set (odd cluster counts at round
  boundaries) the loads additionally wait for the set to drain —
  compute finished and outgoing stores issued first;
* stores of visit ``v`` are issued during visit ``v + 1`` (the set is
  idle then) and precede the loads of the next same-set visit, so the
  space freed by departing results is available to arriving data (the
  ordering assumed by the ``DS(C_c) <= FBS`` feasibility check);
* within one overlap window the :class:`ContextScheduler` policy orders
  contexts / stores / loads (default: contexts first, per [4]).

Functional mode additionally moves real values through the machine's
external memory and checks every final output against the reference
execution.

Two engines resolve the timing recurrence:

* the **vectorized** engine (:mod:`repro.sim.vectorized`) precomputes
  per-visit transfer groups into NumPy arrays and resolves the
  recurrence in one tight scalar loop — the default whenever the
  per-transfer trace is off and functional mode is not requested;
* the **reference** engine (this module's :meth:`Simulator._execute`)
  walks every transfer through the DMA channel item by item — the only
  engine that can record the trace or move functional values, and the
  equivalence oracle for the vectorized one (the ``simengine`` fuzz
  oracle and ``tests/sim/test_vectorized_equivalence.py`` assert the
  two produce byte-identical :class:`VisitTiming` rows and reports).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.arch.dma import TransferKind
from repro.arch.machine import MorphoSysM1
from repro.codegen.program import Program
from repro.codegen.verifier import verify_program
from repro.errors import SimulationError
from repro.schedule.context_scheduler import (
    ContextScheduler,
    DmaPolicy,
    loads_may_precede_stores,
)
from repro.sim.functional import (
    KernelImpl,
    build_impls,
    populate_external_inputs,
    reference_outputs,
)
from repro.sim.report import SimulationReport, VisitTiming
from repro.sim.vectorized import evaluate_timeline, tables_for

__all__ = ["Simulator"]

_ENGINES = ("auto", "vectorized", "reference")


class Simulator:
    """Executes a :class:`Program` on a :class:`MorphoSysM1`.

    Args:
        machine: the machine instance (its DMA timeline and counters are
            consumed; call :meth:`MorphoSysM1.reset` between runs).
        dma_policy: ordering of DMA work inside overlap windows.
        verify: run the static program verifier before executing.
        trace: record the per-transfer DMA trace (and its labels) in
            the report.  Aggregate statistics are exact either way;
            bulk analysis drivers turn tracing off for speed.
        engine: ``"auto"`` (default) resolves the timing recurrence
            with the vectorized evaluator whenever the trace is off and
            functional mode is not requested, falling back to the
            reference engine otherwise; ``"vectorized"`` forces the
            fast path (and rejects trace/functional runs, which need
            per-item execution); ``"reference"`` forces the item-by-
            item engine — the equivalence oracle.
    """

    def __init__(
        self,
        machine: MorphoSysM1,
        *,
        dma_policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
        verify: bool = True,
        trace: bool = True,
        engine: str = "auto",
    ):
        if engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}"
            )
        self.machine = machine
        self.context_scheduler = ContextScheduler(dma_policy)
        self.verify = verify
        self.trace = trace
        self.engine = engine
        #: After a functional run: total words brought in by data loads,
        #: and the subset never read by any kernel before eviction or
        #: program end.  ``None`` until a functional run completes.
        #: These are the dynamic counterparts of the static ``DFA001``
        #: pass (``repro.dataflow``) — property-tested to agree.
        self.functional_loaded_words: Optional[int] = None
        self.functional_dead_words: Optional[int] = None
        self._load_watch: Dict[tuple, int] = {}
        self._dead_words = 0
        self._loaded_words = 0

    # -- public API --------------------------------------------------------

    def run(
        self,
        program: Program,
        *,
        functional: Optional[bool] = None,
        kernel_impls: Optional[Mapping[str, KernelImpl]] = None,
        seed: int = 2002,
    ) -> SimulationReport:
        """Simulate *program* and return the :class:`SimulationReport`.

        Args:
            program: the lowered schedule.
            functional: move real values (defaults to the machine's
                ``functional`` flag).
            kernel_impls: per-kernel implementations for functional
                mode; kernels not listed get surrogates.
            seed: seed for auto-populated external inputs (only used if
                the machine's external memory is empty).
        """
        if self.verify:
            verify_program(program)
        functional = self.machine.functional if functional is None else functional

        application = program.schedule.application
        impls: Dict[str, KernelImpl] = {}
        golden = {}
        if functional:
            impls = build_impls(application, kernel_impls or {})
            if not any(
                self.machine.external_memory.exists(name, 0)
                for name in application.external_inputs()
            ):
                populate_external_inputs(
                    application, self.machine.external_memory, seed=seed
                )
            golden = reference_outputs(
                application, self.machine.external_memory, impls
            )
        else:
            self._populate_accounting(application)

        use_vectorized = self._wants_vectorized(functional)
        # The tracing mode is set only for the duration of this run and
        # restored afterwards: the DMA channel is shared machine state,
        # and a constructor side effect would let two simulators over
        # one machine silently flip each other's tracing.
        dma_record_trace = self.machine.dma.record_trace
        self.machine.dma.record_trace = self.trace
        if functional:
            self._load_watch = {}
            self._dead_words = 0
            self._loaded_words = 0
        try:
            if use_vectorized:
                timings = self._execute_vectorized(program)
            else:
                timings = self._execute(program, functional, impls)
        finally:
            self.machine.dma.record_trace = dma_record_trace

        verified: Optional[bool] = None
        if functional:
            verified = self._check_outputs(application, golden)
            # Loads still unread at program end were pure wasted traffic.
            self.functional_loaded_words = self._loaded_words
            self.functional_dead_words = (
                self._dead_words + sum(self._load_watch.values())
            )

        dma = self.machine.dma
        compute_cycles = sum(t.compute_end - t.compute_start for t in timings)
        total = max(
            dma.busy_until, timings[-1].compute_end if timings else 0
        )
        stall = self._stall_cycles(timings)
        return SimulationReport(
            scheduler=program.schedule.scheduler,
            application=application.name,
            total_cycles=total,
            compute_cycles=compute_cycles,
            rc_stall_cycles=stall,
            dma_busy_cycles=dma.cycles_busy(),
            data_load_words=dma.words_moved(TransferKind.DATA_LOAD),
            data_store_words=dma.words_moved(TransferKind.DATA_STORE),
            context_words=dma.words_moved(TransferKind.CONTEXT_LOAD),
            data_load_count=dma.count(TransferKind.DATA_LOAD),
            data_store_count=dma.count(TransferKind.DATA_STORE),
            context_load_count=dma.count(TransferKind.CONTEXT_LOAD),
            visits=tuple(timings),
            transfers=tuple(dma.transfers),
            functional_verified=verified,
        )

    # -- engine selection -------------------------------------------------

    def _wants_vectorized(self, functional: bool) -> bool:
        """Whether this run resolves timing via the vectorized path."""
        if self.engine == "reference":
            return False
        incompatible = self.trace or functional
        if self.engine == "vectorized":
            if incompatible:
                raise SimulationError(
                    "engine='vectorized' resolves timing in bulk: it "
                    "records no per-transfer trace and moves no "
                    "functional values; use trace=False and "
                    "functional=False (or engine='auto'/'reference')"
                )
            return True
        return not incompatible

    def _execute_vectorized(self, program: Program) -> List[VisitTiming]:
        """Bulk timing resolution (see :mod:`repro.sim.vectorized`)."""
        if not program.visits:
            return []
        dma = self.machine.dma
        tables = tables_for(program, dma.timing)
        timings, busy_until = evaluate_timeline(
            program, tables, self.context_scheduler.policy, dma.busy_until
        )
        last = TransferKind.DATA_STORE
        for kind, (words, count, cycles) in tables.totals.items():
            dma.account(
                kind, words=words, count=count, cycles=cycles,
                busy_until=busy_until if kind is last else None,
            )
        return timings

    # -- reference engine -------------------------------------------------

    def _execute(
        self,
        program: Program,
        functional: bool,
        impls: Mapping[str, KernelImpl],
    ) -> List[VisitTiming]:
        visits = program.visits
        if not visits:
            return []
        dma = self.machine.dma
        fb_values: Tuple[Dict, Dict] = ({}, {})

        count = len(visits)
        prep_finish = [0] * count
        compute_end = [0] * count
        stores_issued = [False] * count
        timings: List[VisitTiming] = []

        def last_same_set_end(index: int) -> int:
            fb_set = visits[index].visit.fb_set
            for prev in range(index - 1, -1, -1):
                if visits[prev].visit.fb_set == fb_set:
                    return compute_end[prev]
            return 0

        loads_before_contexts = (
            self.context_scheduler.policy is DmaPolicy.LOADS_FIRST
        )
        trace = self.trace

        # Fast path (trace off): back-to-back requests at one earliest
        # start occupy one contiguous timeline block, so each visit's
        # context/load/store group is accounted in O(1) via
        # request_block.  Group totals depend only on the cluster and
        # the round's iteration count, so they are memoised and laid
        # out per visit up front.
        groups: List[Tuple] = []
        if not trace:
            timing = dma.timing
            memo: Dict[Tuple[str, int, int], Tuple[int, int, int]] = {}

            def totals(tag, cluster_index, variant, items, cycles_of):
                key = (tag, cluster_index, variant)
                found = memo.get(key)
                if found is None:
                    words = 0
                    duration = 0
                    for item in items:
                        words += item.words
                        duration += cycles_of(item.words)
                    found = (words, duration, len(items))
                    memo[key] = found
                return found

            ctx_cycles = timing.context_transfer_cycles
            data_cycles = timing.data_transfer_cycles
            for ops in visits:
                cluster_index = ops.visit.cluster_index
                n_iters = len(ops.visit.iterations)
                groups.append((
                    # Context words never vary with the round, only
                    # with block residency (empty when reused).
                    totals("ctx", cluster_index, len(ops.context_loads),
                           ops.context_loads, ctx_cycles),
                    totals("ld", cluster_index, n_iters,
                           ops.data_loads, data_cycles),
                    totals("st", cluster_index, n_iters,
                           ops.stores, data_cycles),
                ))

        def issue_prep(index: int, earliest: int) -> None:
            ops = visits[index]
            finish = earliest
            set_free = last_same_set_end(index)

            def issue_contexts() -> int:
                if not trace:
                    words, duration, count = groups[index][0]
                    if count == 0:
                        return earliest
                    _, done = dma.request_block(
                        TransferKind.CONTEXT_LOAD, words, duration,
                        count, earliest,
                    )
                    return done
                done_at = earliest
                for load in ops.context_loads:
                    _, done = dma.request(
                        TransferKind.CONTEXT_LOAD,
                        load.words,
                        earliest,
                        label=f"ctx:{load.kernel}@v{index}",
                    )
                    done_at = max(done_at, done)
                return done_at

            def issue_loads() -> int:
                start_at = max(earliest, set_free)
                if not trace:
                    words, duration, count = groups[index][1]
                    if count == 0:
                        return earliest
                    _, done = dma.request_block(
                        TransferKind.DATA_LOAD, words, duration,
                        count, start_at,
                    )
                    return done
                done_at = earliest
                for load in ops.data_loads:
                    _, done = dma.request(
                        TransferKind.DATA_LOAD,
                        load.words,
                        start_at,
                        label=f"ld:{load.name}#{load.iteration}@v{index}",
                    )
                    done_at = max(done_at, done)
                return done_at

            if loads_before_contexts:
                finish = max(finish, issue_loads(), issue_contexts())
            else:
                finish = max(finish, issue_contexts(), issue_loads())
            prep_finish[index] = finish

        def issue_stores(index: int) -> None:
            if stores_issued[index]:
                return
            stores_issued[index] = True
            ops = visits[index]
            earliest = compute_end[index]
            if not trace:
                words, duration, count = groups[index][2]
                if count:
                    dma.request_block(
                        TransferKind.DATA_STORE, words, duration,
                        count, earliest,
                    )
                return
            for store in ops.stores:
                dma.request(
                    TransferKind.DATA_STORE,
                    store.words,
                    earliest,
                    label=f"st:{store.name}#{store.iteration}@v{index}",
                )

        pipelined = program.schedule.overlap_transfers
        if pipelined:
            issue_prep(0, 0)
        for index in range(count):
            ops = visits[index]
            previous_end = compute_end[index - 1] if index else 0
            if not pipelined:
                # Serial mode (Basic Scheduler): the previous visit's
                # stores and this visit's preparation all happen after
                # the previous computation, before this one.
                if index > 0:
                    issue_stores(index - 1)
                issue_prep(index, previous_end)
            start = max(prep_finish[index], previous_end)
            end = start + ops.compute_cycles
            compute_end[index] = end
            if functional:
                # Functional data movement follows strict program order
                # (the verifier's order); DMA timing is tracked
                # independently below.
                for load in ops.data_loads:
                    self._do_load(load, fb_values)
                self._do_compute(program, index, fb_values, impls)
                for store in ops.stores:
                    self._do_store(store, fb_values)
                self._drain_set(program, index, fb_values)
            timings.append(
                VisitTiming(
                    index=ops.visit.index,
                    round_index=ops.visit.round_index,
                    cluster_index=ops.visit.cluster_index,
                    fb_set=ops.visit.fb_set,
                    prep_finish=prep_finish[index],
                    compute_start=start,
                    compute_end=end,
                )
            )
            # Overlap window during this visit's compute: by policy,
            # contexts for v+1 go first, then the previous visit's
            # stores, then v+1's data loads (issue_prep handles the
            # context/load order internally; stores are interleaved
            # here according to set conflicts).
            if not pipelined:
                continue
            if index + 1 < count:
                same_set_next = (
                    visits[index + 1].visit.fb_set == ops.visit.fb_set
                )
                policy = self.context_scheduler.policy
                loads_first = policy is DmaPolicy.LOADS_FIRST
                if policy is DmaPolicy.ADAPTIVE and index > 0:
                    # Sound reordering: loads may overtake the previous
                    # visit's stores when the set has room for both the
                    # departing results and the arriving working set.
                    loads_first = loads_may_precede_stores(
                        program.schedule,
                        visits[index - 1].visit.cluster_index,
                        visits[index + 1].visit.cluster_index,
                        len(visits[index - 1].visit.iterations),
                    )
                if same_set_next:
                    # The next visit reuses this set: its loads must
                    # follow this visit's compute and stores, whatever
                    # the policy says.
                    if index > 0:
                        issue_stores(index - 1)
                    issue_stores(index)
                    issue_prep(index + 1, end)
                elif not loads_first:
                    if index > 0:
                        issue_stores(index - 1)
                    issue_prep(index + 1, previous_end)
                else:
                    issue_prep(index + 1, previous_end)
                    if index > 0:
                        issue_stores(index - 1)
            else:
                if index > 0:
                    issue_stores(index - 1)
        issue_stores(count - 1)
        return timings

    def _stall_cycles(self, timings: List[VisitTiming]) -> int:
        stall = 0
        previous_end = 0
        for timing in timings:
            stall += max(0, timing.compute_start - previous_end)
            previous_end = timing.compute_end
        return stall

    # -- accounting-mode support --------------------------------------------

    def _populate_accounting(self, application) -> None:
        """Ensure external inputs exist (size-only) so loads are legal."""
        memory = self.machine.external_memory
        exists = memory.exists
        put = memory.put
        for name in application.external_inputs():
            obj = application.object(name)
            size = obj.size
            instances = (
                (0,) if obj.invariant
                else range(application.total_iterations)
            )
            for iteration in instances:
                if not exists(name, iteration):
                    put(name, iteration, size=size)

    # -- functional data movement ---------------------------------------

    def _do_load(self, load, fb_values) -> None:
        values = self.machine.external_memory.read(
            load.name, load.iteration, load.words
        )
        if values is None:
            raise SimulationError(
                f"functional load of {load.name}#{load.iteration}: external "
                f"memory holds no values"
            )
        fb_values[load.fb_set][(load.name, load.iteration)] = values
        watch_key = (load.fb_set, load.name, load.iteration)
        # A reload over an unread copy means the first copy was dead.
        self._dead_words += self._load_watch.pop(watch_key, 0)
        self._load_watch[watch_key] = load.words
        self._loaded_words += load.words

    def _do_store(self, store, fb_values) -> None:
        key = (store.name, store.iteration)
        if key not in fb_values[store.fb_set]:
            raise SimulationError(
                f"functional store of {store.name}#{store.iteration}: "
                f"not in set{store.fb_set}"
            )
        self.machine.external_memory.write(
            store.name, store.iteration, store.words,
            values=fb_values[store.fb_set][key],
        )

    def _do_compute(self, program: Program, index: int, fb_values, impls) -> None:
        ops = program.visits[index]
        application = program.schedule.application
        dataflow = program.schedule.dataflow
        keeps_by_name = {k.name: k for k in program.schedule.keeps}
        for run in ops.compute:
            kernel = application.kernel(run.kernel)
            inputs = {}
            for in_name in kernel.inputs:
                instance = 0 if dataflow[in_name].invariant else run.iteration
                key = (in_name, instance)
                if key in fb_values[run.fb_set]:
                    inputs[in_name] = fb_values[run.fb_set][key]
                    self._load_watch.pop((run.fb_set, *key), None)
                    continue
                keep = keeps_by_name.get(in_name)
                if (
                    keep is not None
                    and keep.fb_set != run.fb_set
                    and key in fb_values[keep.fb_set]
                ):
                    # Cross-set retention: read the operand in place.
                    inputs[in_name] = fb_values[keep.fb_set][key]
                    self._load_watch.pop((keep.fb_set, *key), None)
                    continue
                raise SimulationError(
                    f"kernel {run.kernel!r}#{run.iteration}: input "
                    f"{in_name!r} not in set{run.fb_set}"
                )
            outputs = impls[run.kernel](inputs, run.iteration)
            for out_name in kernel.outputs:
                fb_values[run.fb_set][(out_name, run.iteration)] = np.asarray(
                    outputs[out_name], dtype=np.int64
                )

    def _drain_set(self, program: Program, index: int, fb_values) -> None:
        """Drop non-kept contents after a visit's stores complete."""
        schedule = program.schedule
        visit = program.visits[index].visit
        survivors: Set[str] = set()
        for keep in schedule.keeps:
            if keep.fb_set != visit.fb_set:
                continue
            first, last = keep.span
            if first <= visit.cluster_index < last:
                survivors.add(keep.name)
        if visit.cluster_index == len(schedule.clustering) - 1:
            survivors = set()
        retained = {
            key: value
            for key, value in fb_values[visit.fb_set].items()
            if key[0] in survivors
        }
        fb_values[visit.fb_set].clear()
        fb_values[visit.fb_set].update(retained)

    def _check_outputs(self, application, golden) -> bool:
        memory = self.machine.external_memory
        for (name, iteration), expected in golden.items():
            actual = memory.get(name, iteration)
            if actual is None or not np.array_equal(actual, expected):
                raise SimulationError(
                    f"functional mismatch: final output {name}#{iteration} "
                    f"differs from the reference execution"
                )
        return True
