"""Common machinery for the three data schedulers.

All schedulers share the same output contract (:class:`Schedule`) and
most of the plan-building logic: given a reuse factor and a set of keep
decisions, derive per-cluster load/store/keep lists and validate
capacities.  Subclasses differ only in how they choose ``RF`` and the
keeps — which is exactly how the paper frames the progression Basic
[3] -> Data Scheduler [5] -> Complete Data Scheduler.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import DataflowInfo, analyze_dataflow
from repro.core.metrics import (
    KeepDecision,
    cluster_data_size_naive,
    cluster_footprint,
)
from repro.core.reuse import SharedData, SharedResult
from repro.errors import InfeasibleScheduleError
from repro.schedule.occupancy import OccupancyEngine
from repro.schedule.plan import ClusterPlan, Schedule
from repro.units import format_words_pair

__all__ = [
    "ScheduleOptions",
    "DataSchedulerBase",
    "derive_cluster_plans",
    "derive_plan_skeleton",
    "assemble_schedule",
]


@dataclass(frozen=True)
class ScheduleOptions:
    """Tunables common to all schedulers.

    Attributes:
        rf_cap: upper bound on the reuse factor (0 = only bounded by the
            application's iteration count).  Useful for ablations.
        keep_policy: how the Complete Data Scheduler ranks retention
            candidates — ``"tf"`` (the paper's time factor), ``"size"``
            (largest first; ablation) or ``"fifo"`` (discovery order;
            ablation).
        rf_policy: ``"max_then_keep"`` (the paper: maximise the common
            RF first, then keep what still fits) or ``"joint"`` (sweep
            RF values and pick the combination with the best estimated
            execution time; ablation).
        cross_set_retention: offer retention candidates whose consumers
            sit on the *other* frame-buffer set — the paper's future
            work.  Requires an architecture with
            ``fb_cross_set_access=True``; the Complete Data Scheduler
            rejects the combination otherwise.
        occupancy_engine: ``"incremental"`` (default) uses the memoised
            :class:`~repro.schedule.occupancy.OccupancyEngine` for RF
            search, keep acceptance, and capacity validation;
            ``"naive"`` recomputes every ``DS(C_c)`` from scratch with
            the reference event sweep.  Both produce byte-identical
            schedules (property-tested); the naive path exists as the
            equivalence oracle and for debugging.
        strict_lint: after building the schedule, run the
            application- and schedule-layer lint passes over it and
            raise :class:`~repro.errors.LintError` if any
            error-severity diagnostic is found.  A self-check: the
            scheduler refuses to hand out a schedule its own static
            analysis rejects.
        strict_hazards: after building the schedule, lower it all the
            way to a program, run the timing-aware hazard analysis of
            :mod:`repro.dataflow` under the default DMA policy, and
            raise :class:`~repro.errors.LintError` if any
            error-severity ``HAZ`` finding survives.  Stronger (and
            costlier) than ``strict_lint``: it proves the generated
            program free of DMA/compute races, live-range interference
            and capacity violations, not just the schedule well-formed.
        decision_trace: record a structured
            :class:`~repro.obs.events.DecisionTrace` of every TF
            ranking, keep accept/reject (with the occupancy numbers
            behind it), and RF search step, attached to the returned
            schedule as ``schedule.decisions``.  Off by default; the
            trace never changes a decision, so traced and untraced
            schedules of one problem are identical.
    """

    rf_cap: int = 0
    keep_policy: str = "tf"
    rf_policy: str = "max_then_keep"
    cross_set_retention: bool = False
    strict_lint: bool = False
    strict_hazards: bool = False
    occupancy_engine: str = "incremental"
    decision_trace: bool = False

    def __post_init__(self) -> None:
        if self.rf_cap < 0:
            raise ValueError(f"rf_cap must be >= 0, got {self.rf_cap}")
        if self.keep_policy not in ("tf", "size", "fifo"):
            raise ValueError(f"unknown keep_policy {self.keep_policy!r}")
        if self.rf_policy not in ("max_then_keep", "joint"):
            raise ValueError(f"unknown rf_policy {self.rf_policy!r}")
        if self.occupancy_engine not in ("incremental", "naive"):
            raise ValueError(
                f"unknown occupancy_engine {self.occupancy_engine!r}"
            )


class DataSchedulerBase(abc.ABC):
    """Template for the Basic / Data / Complete schedulers."""

    #: Short identifier used in schedules and reports.
    name: str = "base"

    def __init__(self, architecture: Architecture,
                 options: Optional[ScheduleOptions] = None):
        self.architecture = architecture
        self.options = options or ScheduleOptions()
        #: Per-call incremental occupancy engine (None in naive mode or
        #: outside :meth:`schedule`).
        self._engine: Optional[OccupancyEngine] = None
        #: Per-call decision recorder (None unless
        #: ``options.decision_trace`` and inside :meth:`schedule`).
        self._decisions = None

    # -- public API ---------------------------------------------------------

    def schedule(
        self,
        application: Application,
        clustering: Optional[Clustering] = None,
        *,
        dataflow: Optional[DataflowInfo] = None,
    ) -> Schedule:
        """Produce a validated :class:`Schedule`.

        Args:
            application: the application to schedule.
            clustering: cluster partition; defaults to one cluster per
                kernel (callers normally obtain a good partition from
                :class:`~repro.schedule.kernel_scheduler.KernelScheduler`).
            dataflow: optional pre-computed dataflow analysis of this
                exact (application, clustering) pair; callers running
                several schedulers over one workload pass it to avoid
                re-analysing.

        Raises:
            InfeasibleScheduleError: if no legal schedule exists on this
                architecture (e.g. a cluster cannot fit a frame-buffer
                set — the paper's "Basic Scheduler cannot execute MPEG
                if memory size is 1K" case).
        """
        if clustering is None:
            clustering = Clustering.per_kernel(application)
        if dataflow is None:
            dataflow = analyze_dataflow(application, clustering)
        elif (dataflow.application is not application
                or dataflow.clustering is not clustering):
            raise ValueError(
                "dataflow was analysed for a different application or "
                "clustering"
            )
        self._check_static_capacities(dataflow)
        if self.options.decision_trace:
            from repro.obs.events import DecisionTrace

            self._decisions = DecisionTrace()
        else:
            self._decisions = None
        if self.options.occupancy_engine == "incremental":
            self._engine = OccupancyEngine(
                dataflow, self.architecture.fb_set_words
            )
            self._engine.recorder = self._decisions
        else:
            self._engine = None
        try:
            schedule = self._schedule(dataflow)
            if self._decisions is not None:
                # Schedule is frozen; the trace is metadata attached
                # after construction (compare=False, so equality with
                # untraced schedules is unaffected).
                object.__setattr__(schedule, "decisions", self._decisions)
        finally:
            self._engine = None
            self._decisions = None
        if self.options.strict_lint:
            self._self_lint(schedule)
        if self.options.strict_hazards:
            self._self_analyze(schedule)
        return schedule

    def _record(self, kind: str, subject: str = "", **detail) -> None:
        """Record one decision when tracing is on (one check when off)."""
        if self._decisions is not None:
            self._decisions.record(kind, subject, **detail)

    def _rf_probe_hook(self):
        """Probe callback for the naive RF search, or None when off."""
        if self._decisions is None:
            return None
        recorder = self._decisions

        def probe(rf: int, ok: bool) -> None:
            recorder.record("rf.probe", rf=rf, fits=ok)

        return probe

    def _self_lint(self, schedule: Schedule) -> None:
        """Run the schedule-layer lint passes; raise on any error."""
        from repro.errors import LintError
        from repro.lint.runner import lint_schedule

        collector = lint_schedule(schedule)
        if collector.has_errors:
            first = collector.errors[0]
            raise LintError(
                f"strict lint: {len(collector.errors)} error(s) in the "
                f"{self.name} schedule; first: {first}",
                diagnostics=collector.errors,
            )

    def _self_analyze(self, schedule: Schedule) -> None:
        """Run the hazard analyzer over the lowered program; raise on
        any error-severity HAZ finding."""
        from repro.dataflow.analyzer import analyze_schedule, hazard_errors
        from repro.errors import LintError

        _, collector = analyze_schedule(schedule)
        findings = hazard_errors(collector)
        if findings:
            first = findings[0]
            raise LintError(
                f"strict hazards: {len(findings)} HAZ finding(s) in the "
                f"{self.name} schedule's program; first: {first}",
                diagnostics=findings,
            )

    # -- subclass hook --------------------------------------------------------

    @abc.abstractmethod
    def _schedule(self, dataflow: DataflowInfo) -> Schedule:
        """Choose RF and keeps; build and return the schedule."""

    # -- shared machinery -------------------------------------------------

    def _check_static_capacities(self, dataflow: DataflowInfo) -> None:
        """Checks independent of any scheduling decision."""
        arch = self.architecture
        for info in dataflow:
            if info.size > arch.fb_set_words:
                need, capacity = format_words_pair(
                    info.size, arch.fb_set_words
                )
                raise InfeasibleScheduleError(
                    f"object {info.name!r} ({need}) exceeds "
                    f"one frame-buffer set ({capacity})",
                    required=info.size,
                    available=arch.fb_set_words,
                )
        for cluster in dataflow.clustering:
            words = dataflow.clustering.context_words_of(cluster)
            if words > arch.context_block_words:
                raise InfeasibleScheduleError(
                    f"cluster {cluster.name} needs {words} context words; a "
                    f"context-memory block holds {arch.context_block_words}",
                    cluster=cluster.name,
                    required=words,
                    available=arch.context_block_words,
                )

    def _require_cluster_fit(
        self,
        dataflow: DataflowInfo,
        rf: int,
        keeps: Sequence[KeepDecision],
        occupancy_fn,
    ) -> Dict[int, int]:
        """Compute per-cluster occupancy and verify it fits one FB set."""
        fbs = self.architecture.fb_set_words
        occupancy: Dict[int, int] = {}
        for cluster in dataflow.clustering:
            peak = occupancy_fn(cluster.index)
            occupancy[cluster.index] = peak
            if peak > fbs:
                need, capacity = format_words_pair(peak, fbs)
                raise InfeasibleScheduleError(
                    f"{self.name}: cluster {cluster.name} needs "
                    f"{need} (RF={rf}) but one frame-buffer set "
                    f"holds {capacity}",
                    cluster=cluster.name,
                    required=peak,
                    available=fbs,
                )
        return occupancy

    def _raise_rf1_infeasible(self, dataflow: DataflowInfo) -> None:
        """Raise the ``RF = 1 does not fit`` diagnostic with the worst
        cluster named and exact word counts.

        Shared by the Data and Complete Data Schedulers for the
        ``max_common_rf == 0`` case.  The occupancy numbers come from
        whichever engine the scheduler is running (incremental or the
        naive reference sweep), so the message always matches the
        verdict that produced it.
        """
        fbs = self.architecture.fb_set_words
        engine = self._engine

        def occupancy_of(index: int) -> int:
            if engine is not None:
                return engine.occupancy(index, 1, ())
            return cluster_data_size_naive(dataflow, index, 1, ())
        worst = max(dataflow.clustering, key=lambda c: occupancy_of(c.index))
        peak = occupancy_of(worst.index)
        need, capacity = format_words_pair(peak, fbs)
        raise InfeasibleScheduleError(
            f"{self.name}: cluster {worst.name} needs {need} even at RF=1 "
            f"but one frame-buffer set holds {capacity}",
            cluster=worst.name,
            required=peak,
            available=fbs,
        )

    def _build_schedule(
        self,
        dataflow: DataflowInfo,
        rf: int,
        keeps: Sequence[KeepDecision],
        *,
        contexts_per_iteration: bool,
        basic_occupancy: bool = False,
        overlap_transfers: bool = True,
    ) -> Schedule:
        """Derive cluster plans from (RF, keeps) and assemble a Schedule."""
        if basic_occupancy:
            occupancy = self._require_cluster_fit(
                dataflow, rf, keeps,
                lambda index: cluster_footprint(dataflow, index),
            )
        elif self._engine is not None:
            engine = self._engine
            occupancy = self._require_cluster_fit(
                dataflow, rf, keeps,
                lambda index: engine.occupancy(index, rf, keeps),
            )
        else:
            occupancy = self._require_cluster_fit(
                dataflow, rf, keeps,
                lambda index: cluster_data_size_naive(dataflow, index, rf, keeps),
            )
        return assemble_schedule(
            self.name,
            dataflow,
            rf=rf,
            keeps=keeps,
            occupancy=occupancy,
            contexts_per_iteration=contexts_per_iteration,
            fb_set_words=self.architecture.fb_set_words,
            context_block_words=self.architecture.context_block_words,
            overlap_transfers=overlap_transfers,
        )


def derive_cluster_plans(
    dataflow: DataflowInfo,
    keeps: Sequence[KeepDecision],
    occupancy: Dict[int, int],
    *,
    skeleton: Optional[Tuple[Tuple, ...]] = None,
) -> Tuple[ClusterPlan, ...]:
    """Derive per-cluster load/keep/store/retain lists from a decision.

    Shared by the per-case schedulers (via :meth:`DataSchedulerBase.
    _build_schedule`) and the batch compiler's finalizer
    (:mod:`repro.schedule.batch`): both must emit byte-identical plans
    for one ``(keeps, occupancy)`` decision, so there is exactly one
    implementation of the derivation.  ``skeleton`` (from
    :func:`derive_plan_skeleton` on the *same* ``(dataflow, keeps)``)
    skips re-walking the object graph — the batch compiler shares one
    no-keep skeleton across the Basic and DS requests of a workload.
    """
    if skeleton is None:
        skeleton = derive_plan_skeleton(dataflow, keeps)
    return tuple(
        ClusterPlan(
            cluster_index=index,
            fb_set=fb_set,
            loads=loads,
            kept_inputs=kept_inputs,
            stores=stores,
            retained_outputs=retained,
            peak_occupancy=occupancy[index],
        )
        for index, fb_set, loads, kept_inputs, stores, retained in skeleton
    )


def derive_plan_skeleton(
    dataflow: DataflowInfo,
    keeps: Sequence[KeepDecision],
) -> Tuple[Tuple, ...]:
    """The occupancy-independent part of every cluster plan.

    Returns one ``(index, fb_set, loads, kept_inputs, stores,
    retained_outputs)`` tuple per cluster — everything
    :class:`ClusterPlan` holds except ``peak_occupancy``, which is the
    only field that differs between schedulers sharing a ``(dataflow,
    keeps)`` decision.
    """
    kept_data: List[SharedData] = [
        keep for keep in keeps if isinstance(keep, SharedData)
    ]
    kept_results: List[SharedResult] = [
        keep for keep in keeps if isinstance(keep, SharedResult)
    ]
    no_keeps = not keeps
    kept_result_of = {
        (keep.name, keep.producer_cluster): keep for keep in kept_results
    }
    get = dataflow.__getitem__

    rows: List[Tuple] = []
    for cluster in dataflow.clustering:
        index = cluster.index
        loads: List[str] = []
        kept_inputs: List[str] = []
        if no_keeps:
            # Basic/DS common case: every input is loaded.
            loads.extend(dataflow.inputs_of_cluster(index))
        else:
            for obj_name in dataflow.inputs_of_cluster(index):
                keep = _keep_serving(obj_name, cluster, kept_data, kept_results)
                if keep is None:
                    loads.append(obj_name)
                elif isinstance(keep, SharedData) and index == keep.clusters[0]:
                    # The first consuming cluster performs the one load.
                    loads.append(obj_name)
                else:
                    kept_inputs.append(obj_name)

        stores: List[str] = []
        retained: List[str] = []
        for obj_name in dataflow.produced_by_cluster(index):
            info = get(obj_name)
            consumer_clusters = info.consumer_clusters
            keep = None if no_keeps else kept_result_of.get((obj_name, index))
            if keep is not None:
                retained.append(obj_name)
                served = set(keep.consumer_clusters)
                unserved = any(
                    c > index and c not in served
                    for c in consumer_clusters
                )
            else:
                # consumer_clusters is sorted ascending, so "consumed
                # by a later cluster" is a last-element check.
                unserved = (
                    bool(consumer_clusters) and consumer_clusters[-1] > index
                )
            if info.is_final or unserved:
                stores.append(obj_name)

        rows.append((
            index,
            cluster.fb_set,
            tuple(loads),
            tuple(kept_inputs),
            tuple(stores),
            tuple(retained),
        ))
    return tuple(rows)


def assemble_schedule(
    scheduler_name: str,
    dataflow: DataflowInfo,
    *,
    rf: int,
    keeps: Sequence[KeepDecision],
    occupancy: Dict[int, int],
    contexts_per_iteration: bool,
    fb_set_words: int,
    context_block_words: int,
    overlap_transfers: bool = True,
    skeleton: Optional[Tuple[Tuple, ...]] = None,
) -> Schedule:
    """Assemble the final :class:`Schedule` from a validated decision."""
    return Schedule(
        scheduler=scheduler_name,
        application=dataflow.application,
        clustering=dataflow.clustering,
        dataflow=dataflow,
        rf=rf,
        keeps=tuple(keeps),
        cluster_plans=derive_cluster_plans(
            dataflow, keeps, occupancy, skeleton=skeleton
        ),
        contexts_per_iteration=contexts_per_iteration,
        fb_set_words=fb_set_words,
        context_block_words=context_block_words,
        overlap_transfers=overlap_transfers,
    )


def _keep_serving(
    obj_name: str,
    cluster,
    kept_data: Sequence[SharedData],
    kept_results: Sequence[SharedResult],
) -> Optional[KeepDecision]:
    """The keep decision (if any) covering *obj_name* as an input of
    *cluster*.  Candidate construction guarantees consumers are
    reachable (same set on M1, any set on cross-set architectures),
    so membership in the consumer list is the whole check."""
    for keep in kept_data:
        if keep.name == obj_name and cluster.index in keep.clusters:
            return keep
    for keep in kept_results:
        if keep.name == obj_name and cluster.index in keep.consumer_clusters:
            return keep
    return None
