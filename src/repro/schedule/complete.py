"""The Complete Data Scheduler — the paper's contribution (section 4).

On top of the Data Scheduler's within-cluster replacement and loop
fission, the Complete Data Scheduler (CDS):

1. achieves the highest common reuse factor ``RF`` allowed by the
   frame-buffer set size, so contexts are loaded ``n / RF`` times;
2. finds the data (``D_i..j``) and results (``R_i,j..k``) shared among
   clusters of the same FB set;
3. ranks them by the time factor ``TF`` and keeps as many as fit:
   "It starts checking that ``DS(C_c) <= FBS`` for all clusters assigned
   to that FB set for shared data or results with the highest TF.
   Scheduling continues with shared data or results with less TF.  If
   ``DS(C_c) > FBS`` for some shared data or results, these are not
   kept."

The greedy acceptance is exactly the paper's: candidates are considered
in decreasing ``TF`` order; a candidate is accepted iff, together with
the already-accepted keeps, every cluster of its FB set still fits.
Rejected candidates do not stop the scan — smaller candidates later in
the order may still fit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import (
    KeepDecision,
    cluster_data_size_naive,
    total_data_size,
)
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import DataSchedulerBase
from repro.schedule.estimate import estimate_execution_cycles
from repro.schedule.plan import Schedule
from repro.schedule.rf import max_common_rf
from repro.schedule.tf import rank_by_time_factor, retention_candidates

__all__ = ["CompleteDataScheduler"]


class CompleteDataScheduler(DataSchedulerBase):
    """The paper's scheduler: RF maximisation + TF-ranked retention."""

    name = "cds"

    def _schedule(self, dataflow: DataflowInfo) -> Schedule:
        if self.options.rf_policy == "joint":
            rf, keeps = self._choose_jointly(dataflow)
        else:
            rf = self._max_rf(dataflow)
            keeps = self._choose_keeps(dataflow, rf)
        return self._build_schedule(
            dataflow,
            rf=rf,
            keeps=keeps,
            contexts_per_iteration=False,
        )

    # -- RF ------------------------------------------------------------------

    def _max_rf(self, dataflow: DataflowInfo) -> int:
        if self._engine is not None:
            rf = self._engine.max_common_rf(
                keeps=(), max_rf=self.options.rf_cap
            )
        else:
            rf = max_common_rf(
                dataflow,
                self.architecture.fb_set_words,
                keeps=(),
                max_rf=self.options.rf_cap,
                occupancy_fn=cluster_data_size_naive,
                probe=self._rf_probe_hook(),
            )
        self._record(
            "rf.result", rf=rf, rf_cap=self.options.rf_cap,
            total_iterations=dataflow.application.total_iterations,
        )
        if rf == 0:
            self._raise_rf1_infeasible(dataflow)
        return rf

    # -- keep selection ---------------------------------------------------

    def _ranked_candidates(self, dataflow: DataflowInfo) -> List[KeepDecision]:
        cross_set = self.options.cross_set_retention
        if cross_set and not self.architecture.fb_cross_set_access:
            raise InfeasibleScheduleError(
                f"{self.name}: cross_set_retention requires an "
                f"architecture with fb_cross_set_access "
                f"({self.architecture.name} lacks it)"
            )
        candidates = retention_candidates(
            dataflow, include_cross_set=cross_set
        )
        if not candidates:
            return []
        policy = self.options.keep_policy
        tds = total_data_size(dataflow)
        if policy == "tf":
            ranked = rank_by_time_factor(candidates, tds)
        elif policy == "size":
            ranked = sorted(candidates, key=lambda c: (-c.size, c.name))
        else:
            ranked = list(candidates)  # "fifo": discovery order
        if self._decisions is not None:
            for rank, candidate in enumerate(ranked):
                self._record(
                    "tf.rank",
                    candidate.name,
                    rank=rank,
                    keep=candidate.label,
                    policy=policy,
                    tf=candidate.words_avoided / tds,
                    words_avoided=candidate.words_avoided,
                    size=candidate.size,
                    fb_set=candidate.fb_set,
                )
        return ranked

    def _choose_keeps(
        self, dataflow: DataflowInfo, rf: int
    ) -> Tuple[KeepDecision, ...]:
        """Greedy TF-ordered acceptance at a fixed RF.

        The incremental engine keeps per-cluster running ``DS(C_c)``
        totals so each trial touches only the candidate's affected
        clusters; the naive path recomputes the candidate's whole FB
        set per trial with the reference sweep.  Both are exact and
        produce identical keep sets (property-tested).
        """
        if self._engine is not None:
            engine = self._engine
            engine.begin_keep_selection(rf)
            for candidate in self._ranked_candidates(dataflow):
                engine.try_keep(candidate)
            return engine.accepted
        fbs = self.architecture.fb_set_words
        accepted: List[KeepDecision] = []
        for candidate in self._ranked_candidates(dataflow):
            trial = accepted + [candidate]
            fits = self._fits_set(dataflow, candidate.fb_set, rf, trial, fbs)
            if self._decisions is not None:
                occupancies = {
                    cluster.index: cluster_data_size_naive(
                        dataflow, cluster.index, rf, trial
                    )
                    for cluster in dataflow.clustering.on_set(candidate.fb_set)
                }
                self._record(
                    "keep.accept" if fits else "keep.reject",
                    candidate.name,
                    keep=candidate.label,
                    fb_set=candidate.fb_set,
                    rf=rf,
                    size=candidate.size,
                    words_avoided=candidate.words_avoided,
                    occupancies=occupancies,
                    fb_set_words=fbs,
                    reason=(
                        "fits every cluster of the set" if fits
                        else "DS(C_c) > FBS with this keep"
                    ),
                )
            if fits:
                accepted.append(candidate)
        return tuple(accepted)

    @staticmethod
    def _fits_set(
        dataflow: DataflowInfo,
        fb_set: int,
        rf: int,
        keeps: Sequence[KeepDecision],
        fbs: int,
    ) -> bool:
        """``DS(C_c) <= FBS`` for every cluster of one FB set.

        Clusters of the other set are unaffected by a keep on this set,
        so only this set needs re-checking.  (Naive reference path.)
        """
        return all(
            cluster_data_size_naive(dataflow, cluster.index, rf, keeps) <= fbs
            for cluster in dataflow.clustering.on_set(fb_set)
        )

    # -- joint RF/keep exploration (ablation) --------------------------------

    def _choose_jointly(
        self, dataflow: DataflowInfo
    ) -> Tuple[int, Tuple[KeepDecision, ...]]:
        """Sweep RF from its maximum down to 1, choose keeps at each
        level, and pick the (RF, keeps) pair with the smallest estimated
        execution time.  Exposes the trade-off the paper's default
        (RF first) resolves by fiat."""
        rf_max = self._max_rf(dataflow)
        best: Tuple[int, Tuple[KeepDecision, ...]] = (rf_max, ())
        best_cycles = None
        for rf in range(rf_max, 0, -1):
            keeps = self._choose_keeps(dataflow, rf)
            schedule = self._build_schedule(
                dataflow, rf=rf, keeps=keeps, contexts_per_iteration=False
            )
            cycles = estimate_execution_cycles(schedule, self.architecture)
            self._record(
                "rf.joint", rf=rf, estimated_cycles=cycles,
                n_keeps=len(keeps),
            )
            if best_cycles is None or cycles < best_cycles:
                best_cycles = cycles
                best = (rf, keeps)
        self._record("rf.result", rf=best[0], rf_cap=self.options.rf_cap,
                     policy="joint")
        return best
