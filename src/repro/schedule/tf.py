"""Time-factor (TF) ranking of retention candidates.

Section 4 of the paper: "The Complete Data Scheduler chooses the shared
data or results to be kept into FB according to a factor TF (time
factor), which reflects the time saving gained from keeping these
shared data or results:

    TF(D_i..j)   = |D_i..j|   * (N - 1) / TDS
    TF(R_i,j..k) = |R_i,j..k| * (N + 1) / TDS

N: number of clusters that use as input data these shared data or
result.  TDS: total data and result sizes."

Shared data save ``N - 1`` loads (they are loaded once for the first
consumer); shared results save one store plus ``N`` reloads.  ``TDS``
is a constant normaliser, so the *ranking* depends only on
``size * transfers_avoided`` — but the normalised value is exposed
because the paper reports it.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import KeepDecision, total_data_size
from repro.core.reuse import (
    SharedData,
    SharedResult,
    find_shared_data,
    find_shared_results,
)

__all__ = [
    "time_factor",
    "candidate_id",
    "rank_by_time_factor",
    "retention_candidates",
]


def time_factor(candidate: KeepDecision, tds: int) -> float:
    """The paper's ``TF`` for one candidate, normalised by ``TDS``."""
    if tds <= 0:
        raise ValueError(f"TDS must be positive, got {tds}")
    return candidate.words_avoided / tds


def retention_candidates(
    dataflow: DataflowInfo, *, include_cross_set: bool = False
) -> List[KeepDecision]:
    """All shared-data and shared-result candidates of the application.

    ``include_cross_set=True`` additionally offers candidates whose
    consumers sit on the other frame-buffer set (the paper's future-work
    architecture; requires ``Architecture.fb_cross_set_access``).
    """
    candidates: List[KeepDecision] = []
    candidates.extend(
        find_shared_data(dataflow, include_cross_set=include_cross_set)
    )
    candidates.extend(
        find_shared_results(dataflow, include_cross_set=include_cross_set)
    )
    return candidates


def candidate_id(candidate: KeepDecision) -> tuple:
    """A stable, total identifier for one retention candidate.

    Two distinct candidates never share an id: shared data are keyed by
    ``("D", set, name, consumers)`` and shared results by
    ``("R", set, name, producer, consumers)``.  The id depends only on
    the candidate's content — never on discovery order — so it is safe
    as a sort tie-break across serial and parallel candidate
    enumeration.
    """
    if isinstance(candidate, SharedData):
        return ("D", candidate.fb_set, candidate.name, candidate.clusters)
    return (
        "R",
        candidate.fb_set,
        candidate.name,
        candidate.producer_cluster,
        candidate.consumer_clusters,
    )


def rank_by_time_factor(
    candidates: Sequence[KeepDecision],
    tds: int,
) -> List[KeepDecision]:
    """Sort candidates by decreasing ``TF``.

    The ranking compares the integer ``words_avoided`` (``TF`` times the
    constant ``TDS``) rather than the normalised float, so candidates
    whose TF values differ only past float precision still order
    exactly.  Ties are broken deterministically: **larger size first**
    (one big retention fragments the free list less than several small
    ones achieving the same saving), then the stable
    :func:`candidate_id`.  The total order depends only on candidate
    content, never on enumeration order, so serial and parallel runs
    produce identical plans.
    """
    if tds <= 0:
        raise ValueError(f"TDS must be positive, got {tds}")
    return sorted(
        candidates,
        key=lambda c: (-c.words_avoided, -c.size, candidate_id(c)),
    )
