"""The Data Scheduler — baseline [5].

Section 3 of the paper: within-cluster data scheduling that *replaces*
external data and intermediate results that are dead (not used by any
later kernel of the cluster) with new results, minimising the cluster's
peak occupancy ``DS(C_c)``.  The freed space is used to store data for
``RF`` consecutive iterations of the cluster's kernels (loop fission),
so contexts are loaded ``n / RF`` times instead of ``n`` times.

What it does **not** do — and what the Complete Data Scheduler adds —
is keep data or results shared among clusters in the frame buffer:
every cluster still loads all of its inputs and stores all of its
outbound results.
"""

from __future__ import annotations

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import cluster_data_size_naive
from repro.schedule.base import DataSchedulerBase
from repro.schedule.plan import Schedule
from repro.schedule.rf import max_common_rf

__all__ = ["DataScheduler"]


class DataScheduler(DataSchedulerBase):
    """Baseline scheduler [5]: within-cluster replacement + loop fission."""

    name = "ds"

    def _schedule(self, dataflow: DataflowInfo) -> Schedule:
        if self._engine is not None:
            rf = self._engine.max_common_rf(
                keeps=(), max_rf=self.options.rf_cap
            )
        else:
            rf = max_common_rf(
                dataflow,
                self.architecture.fb_set_words,
                keeps=(),
                max_rf=self.options.rf_cap,
                occupancy_fn=cluster_data_size_naive,
                probe=self._rf_probe_hook(),
            )
        self._record(
            "rf.result", rf=rf, rf_cap=self.options.rf_cap,
            total_iterations=dataflow.application.total_iterations,
        )
        if rf == 0:
            self._raise_rf1_infeasible(dataflow)
        return self._build_schedule(
            dataflow,
            rf=rf,
            keeps=(),
            contexts_per_iteration=False,
        )
