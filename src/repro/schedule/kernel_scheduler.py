"""Kernel scheduler [7]: design-space exploration of cluster partitions.

"The kernel scheduler explores the design space to find a sequence of
kernels that minimizes the execution time.  It decides which is the
best sequence of kernels and performs clusters" (paper, section 2).

Given an application (whose kernel order is fixed by data dependences
at this abstraction level), the open decision is the *partition* of the
kernel sequence into contiguous clusters, which alternate between the
two FB sets.  For ``K`` kernels there are ``2^(K-1)`` contiguous
partitions; the explorer enumerates them exhaustively up to a
configurable kernel count and falls back to a beam search above it.
Each candidate partition is scheduled with a supplied data scheduler
and scored with the analytic makespan estimate
(:func:`repro.schedule.estimate.estimate_execution_cycles`); infeasible
partitions are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import DataSchedulerBase
from repro.schedule.estimate import estimate_execution_cycles
from repro.schedule.plan import Schedule

__all__ = ["KernelScheduleResult", "KernelScheduler", "enumerate_partitions"]


def enumerate_partitions(count: int) -> Iterator[Tuple[int, ...]]:
    """Yield every composition of *count* (contiguous group sizes).

    ``enumerate_partitions(3)`` yields ``(3,)``, ``(1, 2)``, ``(2, 1)``,
    ``(1, 1, 1)`` — ordered by number of groups, then lexicographically.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")

    def compositions(remaining: int, groups: int) -> Iterator[Tuple[int, ...]]:
        if groups == 1:
            yield (remaining,)
            return
        for head in range(1, remaining - groups + 2):
            for tail in compositions(remaining - head, groups - 1):
                yield (head,) + tail

    for groups in range(1, count + 1):
        yield from compositions(count, groups)


@dataclass(frozen=True)
class KernelScheduleResult:
    """Outcome of the exploration.

    Attributes:
        clustering: the winning partition.
        schedule: the data schedule produced for it.
        estimated_cycles: the analytic makespan used for ranking.
        candidates_evaluated: partitions that produced a feasible
            schedule.
        candidates_infeasible: partitions rejected as infeasible.
    """

    clustering: Clustering
    schedule: Schedule
    estimated_cycles: int
    candidates_evaluated: int
    candidates_infeasible: int


class KernelScheduler:
    """Explores cluster partitions, minimising estimated execution time.

    Args:
        architecture: the target machine.
        data_scheduler: the scheduler used to evaluate each partition
            (the paper evaluates kernel schedules "through a tentative
            context and data schedules").
        exhaustive_limit: maximum kernel count for exhaustive search
            (``2^(K-1)`` candidates); beyond it a beam search over
            group-size decisions is used.
        beam_width: beam width for the fallback search.
    """

    def __init__(
        self,
        architecture: Architecture,
        data_scheduler: DataSchedulerBase,
        *,
        exhaustive_limit: int = 12,
        beam_width: int = 12,
    ):
        if exhaustive_limit < 1:
            raise ValueError(f"exhaustive_limit must be >= 1, got {exhaustive_limit}")
        if beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        self.architecture = architecture
        self.data_scheduler = data_scheduler
        self.exhaustive_limit = exhaustive_limit
        self.beam_width = beam_width

    # -- public API ----------------------------------------------------------

    def explore(self, application: Application) -> KernelScheduleResult:
        """Find the best contiguous partition for *application*.

        Raises:
            InfeasibleScheduleError: if no partition is feasible.
        """
        count = len(application.kernels)
        if count <= self.exhaustive_limit:
            partitions: Sequence[Tuple[int, ...]] = list(
                enumerate_partitions(count)
            )
        else:
            partitions = self._beam_partitions(application)

        best: Optional[KernelScheduleResult] = None
        evaluated = 0
        infeasible = 0
        for sizes in partitions:
            clustering = Clustering.from_sizes(application, sizes)
            try:
                schedule = self.data_scheduler.schedule(application, clustering)
            except InfeasibleScheduleError:
                infeasible += 1
                continue
            evaluated += 1
            cycles = estimate_execution_cycles(schedule, self.architecture)
            if best is None or cycles < best.estimated_cycles:
                best = KernelScheduleResult(
                    clustering=clustering,
                    schedule=schedule,
                    estimated_cycles=cycles,
                    candidates_evaluated=evaluated,
                    candidates_infeasible=infeasible,
                )
        if best is None:
            raise InfeasibleScheduleError(
                f"no feasible cluster partition of {application.name!r} on "
                f"{self.architecture.name} "
                f"({infeasible} partitions rejected)"
            )
        return KernelScheduleResult(
            clustering=best.clustering,
            schedule=best.schedule,
            estimated_cycles=best.estimated_cycles,
            candidates_evaluated=evaluated,
            candidates_infeasible=infeasible,
        )

    # -- beam search fallback -------------------------------------------------

    def _beam_partitions(self, application: Application) -> List[Tuple[int, ...]]:
        """Candidate group-size vectors from a left-to-right beam search.

        States are partial partitions of the kernel prefix, scored by
        the estimated cycles of the partial application (suffix kernels
        appended as one trailing cluster to keep candidates comparable).
        """
        count = len(application.kernels)
        max_group = min(count, self.exhaustive_limit)
        beam: List[Tuple[int, ...]] = [()]
        for _ in range(count):
            extended: List[Tuple[int, ...]] = []
            for state in beam:
                used = sum(state)
                if used == count:
                    extended.append(state)
                    continue
                for group in range(1, min(max_group, count - used) + 1):
                    extended.append(state + (group,))
            scored = []
            for state in extended:
                used = sum(state)
                sizes = state if used == count else state + (count - used,)
                clustering = Clustering.from_sizes(application, sizes)
                try:
                    schedule = self.data_scheduler.schedule(
                        application, clustering
                    )
                except InfeasibleScheduleError:
                    continue
                cycles = estimate_execution_cycles(schedule, self.architecture)
                scored.append((cycles, state))
            scored.sort(key=lambda pair: (pair[0], pair[1]))
            beam = [state for _, state in scored[: self.beam_width]]
            if not beam:
                return []
            if all(sum(state) == count for state in beam):
                break
        return [state for state in beam if sum(state) == count]
