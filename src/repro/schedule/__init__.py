"""Schedulers: Basic [3], Data Scheduler [5] and the Complete Data Scheduler.

The subpackage also contains the supporting analyses the paper's
framework provides around the data scheduler: reuse-factor computation
(loop fission depth), time-factor ranking of retention candidates, the
context scheduler [4] (DMA ordering) and the kernel scheduler [7]
(cluster-partition exploration).
"""

from repro.schedule.base import DataSchedulerBase, ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import ContextScheduler, DmaPolicy
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.kernel_scheduler import KernelScheduler
from repro.schedule.plan import ClusterPlan, Schedule, TransferSummary
from repro.schedule.rf import max_common_rf
from repro.schedule.tf import rank_by_time_factor, time_factor

__all__ = [
    "BasicScheduler",
    "ClusterPlan",
    "CompleteDataScheduler",
    "ContextScheduler",
    "DataScheduler",
    "DataSchedulerBase",
    "DmaPolicy",
    "KernelScheduler",
    "Schedule",
    "ScheduleOptions",
    "TransferSummary",
    "max_common_rf",
    "rank_by_time_factor",
    "time_factor",
]
