"""Context scheduler [4]: ordering of DMA work inside overlap windows.

MorphoSys has a single DMA channel, so the transfers that overlap one
cluster's computation — the previous visit's result stores, the next
visit's context loads and the next visit's data loads — must be
serialised.  The context scheduler's goal ([4]) is "to minimize the
number of context loads that do not overlap with computation": if the
compute window closes before the next visit's contexts and data are in
place, the RC array stalls.

The policies:

* ``CONTEXTS_FIRST`` (default, following [4]) — the next visit's
  context loads go first (they are small and strictly on the critical
  path of the next launch), then the previous visit's stores, then the
  next visit's data loads.  Stores precede loads so that, on the shared
  FB set, the space freed by departing results is available to the
  arriving data — the ordering that makes the ``DS(C_c) <= FBS``
  feasibility check sufficient.
* ``LOADS_FIRST``  — data loads, then contexts, then stores (ablation;
  loads and not-yet-stored results coexist on the set **without** a
  budget check — an upper bound, not a legal policy).
* ``STORES_FIRST`` — drain stores before anything else (a naive FIFO
  policy; useful as an ablation baseline).
* ``ADAPTIVE``     — contexts first, then loads *before* stores in the
  windows where the frame-buffer set provably has room for the
  departing results and the arriving data simultaneously
  (``stores(v-1) + DS(C_{v+1}) <= FBS``), stores first otherwise.
  Sound like CONTEXTS_FIRST, fast like LOADS_FIRST where the budget
  allows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["DmaPolicy", "DmaWorkItem", "ContextScheduler"]


class DmaPolicy(enum.Enum):
    """Ordering policy for DMA work inside one overlap window."""

    CONTEXTS_FIRST = "contexts_first"
    LOADS_FIRST = "loads_first"
    STORES_FIRST = "stores_first"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class DmaWorkItem:
    """One queued DMA operation, before timing.

    Attributes:
        category: ``"store"`` (previous visit), ``"context"`` or
            ``"load"`` (next visit).
        label: human-readable description for traces.
        words: transfer size in words.
    """

    category: str
    label: str
    words: int

    def __post_init__(self) -> None:
        if self.category not in ("store", "context", "load"):
            raise ValueError(f"unknown DMA category {self.category!r}")
        if self.words <= 0:
            raise ValueError(f"DMA work item {self.label!r} has no words")


_ORDERINGS = {
    DmaPolicy.CONTEXTS_FIRST: ("context", "store", "load"),
    DmaPolicy.LOADS_FIRST: ("load", "context", "store"),
    DmaPolicy.STORES_FIRST: ("store", "context", "load"),
    # ADAPTIVE resolves per window; its static fallback is the sound
    # contexts/stores/loads order.
    DmaPolicy.ADAPTIVE: ("context", "store", "load"),
}


def loads_may_precede_stores(
    schedule, departing_cluster_index: int, arriving_cluster_index: int,
    iterations: int,
) -> bool:
    """Space-soundness test for issuing a visit's loads before the
    previous same-set visit's stores.

    During the overlap the set holds the departing visit's not-yet-
    stored results *and* everything the arriving visit's occupancy
    sweep budgets (its loads, kept residents, results).  The
    conservative bound::

        store_words(departing) * iterations + DS(C_arriving) <= FBS
    """
    departing = schedule.plan_for(departing_cluster_index)
    arriving = schedule.plan_for(arriving_cluster_index)
    outgoing = departing.store_words(schedule.dataflow, iterations)
    return outgoing + arriving.peak_occupancy <= schedule.fb_set_words


class ContextScheduler:
    """Orders the DMA work of one overlap window."""

    def __init__(self, policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST):
        self.policy = policy

    def order_window(
        self, items: Sequence[DmaWorkItem]
    ) -> Tuple[DmaWorkItem, ...]:
        """Return *items* in issue order under the policy.

        Ordering is stable within a category, so callers control
        fine-grained order (e.g. loads sorted by first use) by the
        order they submit items in.
        """
        ordering = _ORDERINGS[self.policy]
        ordered: List[DmaWorkItem] = []
        for category in ordering:
            ordered.extend(item for item in items if item.category == category)
        leftovers = [item for item in items if item.category not in ordering]
        assert not leftovers, leftovers
        return tuple(ordered)
