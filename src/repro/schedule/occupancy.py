"""Incremental ``DS(C_c)`` occupancy engine.

The Complete Data Scheduler's two hot loops both reduce to the same
question — "does every cluster of a frame-buffer set still fit after
this decision?":

* the common-RF search probes ``fits(rf)`` along a gallop + bisection;
* greedy TF-ordered keep acceptance re-checks the candidate's set after
  every trial.

Recomputed from scratch (``cluster_data_size`` per cluster per probe)
that is ``O(candidates * clusters * kernels)``.  The engine exploits
two structural facts instead:

1. ``DS(C_c, rf, keeps)`` splits into a *resident* constant (kept items
   whose span covers the cluster) plus a *sweep peak* that depends on
   the keeps only through the set of kept names local to the cluster
   (:func:`repro.core.metrics.cluster_sweep_peak`).  Sweep peaks are
   memoised on ``(cluster, rf, local-kept-names)``.
2. Accepting a keep only changes the occupancy of clusters inside its
   residency span (same set) or among its cross-set consumers — so a
   trial re-evaluates **O(affected clusters)**, while per-set "unfit"
   bookkeeping answers for all untouched clusters in O(1).

The engine is exact, not approximate: every accept/reject decision and
every reported occupancy equals the naive recomputation bit for bit
(property-tested against :func:`cluster_data_size_naive`-backed
selection in ``tests/schedule/test_occupancy_equivalence.py``).

One engine instance serves one ``DataflowInfo``; ``rf_policy="joint"``
re-enters keep selection once per candidate RF and shares the same
sweep memo across all of them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import (
    KeepDecision,
    cluster_sweep_peak,
    resident_keep_words,
)

__all__ = ["OccupancyEngine"]


class OccupancyEngine:
    """Shared occupancy state for one dataflow at one FB-set capacity."""

    def __init__(self, dataflow: DataflowInfo, fb_set_words: int):
        self.dataflow = dataflow
        self.fb_set_words = fb_set_words
        #: Optional :class:`~repro.obs.events.DecisionTrace`; when set,
        #: RF probes and keep accept/reject verdicts (with the
        #: occupancy numbers behind them) are recorded.  Never changes
        #: a decision.
        self.recorder = None
        self._clusters = list(dataflow.clustering)
        self._sweep_memo: Dict[Tuple[int, int, FrozenSet[str]], int] = {}
        # RF feasibility verdicts per (keep-set fingerprint, rf): the
        # gallop/bisection hand-offs and repeated searches over the same
        # keep set never re-run a full fits() sweep.  One keep per
        # object name, so the name set identifies the keep set.
        self._probe_memo: Dict[Tuple[FrozenSet[str], int], bool] = {}
        #: Full fits() sweeps actually evaluated by :meth:`max_common_rf`
        #: (memo misses).  Tests assert this never exceeds the number of
        #: distinct ``(keep set, rf)`` probes.
        self.probe_evaluations = 0
        # Keep-selection session state (begin_keep_selection resets it).
        self._rf = 0
        self._accepted: List[KeepDecision] = []
        self._resident: Dict[int, int] = {}
        self._local: Dict[int, Set[str]] = {}
        self._occupancy: Dict[int, int] = {}
        self._unfit: Dict[int, Set[int]] = {}

    # -- stateless queries (memoised sweeps) ----------------------------

    def sweep_peak(self, cluster_index: int, rf: int,
                   local_kept: FrozenSet[str]) -> int:
        key = (cluster_index, rf, local_kept)
        found = self._sweep_memo.get(key)
        if found is None:
            found = cluster_sweep_peak(
                self.dataflow, cluster_index, rf, local_kept
            )
            self._sweep_memo[key] = found
        return found

    def occupancy(self, cluster_index: int, rf: int,
                  keeps: Sequence[KeepDecision] = ()) -> int:
        """``DS(C_c, rf, keeps)`` — same contract as
        :func:`repro.core.metrics.cluster_data_size`."""
        if rf < 1:
            raise ValueError(f"rf must be >= 1, got {rf}")
        resident, local = resident_keep_words(
            self.dataflow, cluster_index, rf, keeps
        )
        return resident + self.sweep_peak(cluster_index, rf, frozenset(local))

    def fits(self, rf: int, keeps: Sequence[KeepDecision] = ()) -> bool:
        """True if every cluster's occupancy fits one FB set."""
        return all(
            self.occupancy(cluster.index, rf, keeps) <= self.fb_set_words
            for cluster in self._clusters
        )

    def max_common_rf(self, keeps: Sequence[KeepDecision] = (),
                      max_rf: int = 0) -> int:
        """Highest common reuse factor — the same gallop + bisection as
        :func:`repro.schedule.rf.max_common_rf`, with every cluster
        sweep served from the memo.

        Probe verdicts are memoised per ``(keep set, rf)``: a repeated
        search over the same keep set (the joint-RF sweep re-enters
        here per candidate level) never re-evaluates a bound the gallop
        or an earlier search already proved.  Memo hits record no
        ``rf.probe`` event — the trace lists each actual evaluation
        once, which is what the ``probes`` fuzz oracle asserts.
        """
        fingerprint = frozenset(keep.name for keep in keeps)

        def check(rf: int) -> bool:
            key = (fingerprint, rf)
            ok = self._probe_memo.get(key)
            if ok is None:
                ok = self.fits(rf, keeps)
                self._probe_memo[key] = ok
                self.probe_evaluations += 1
                if self.recorder is not None:
                    self.recorder.record("rf.probe", rf=rf, fits=ok)
            return ok

        cap = (
            max_rf if max_rf > 0
            else self.dataflow.application.total_iterations
        )
        if cap < 1 or not check(1):
            return 0
        low = 1
        high = 1
        while high < cap and check(min(high * 2, cap)):
            high = min(high * 2, cap)
            low = high
        if high >= cap:
            return cap
        # The gallop already judged min(high * 2, cap) infeasible; reuse
        # that verdict instead of re-probing (see repro.schedule.rf).
        high = min(high * 2, cap)
        while high - low > 1:
            mid = (low + high) // 2
            if check(mid):
                low = mid
            else:
                high = mid
        return low

    # -- incremental keep selection -------------------------------------

    def begin_keep_selection(self, rf: int) -> None:
        """Start a greedy acceptance session at a fixed ``rf``.

        Initialises per-cluster running totals (``DS(C_c)`` with no
        keeps) and the per-set unfit bookkeeping.
        """
        if rf < 1:
            raise ValueError(f"rf must be >= 1, got {rf}")
        self._rf = rf
        self._accepted = []
        self._resident = {}
        self._local = {}
        self._occupancy = {}
        self._unfit = {}
        for cluster in self._clusters:
            index = cluster.index
            self._resident[index] = 0
            self._local[index] = set()
            occ = self.sweep_peak(index, rf, frozenset())
            self._occupancy[index] = occ
            self._unfit.setdefault(cluster.fb_set, set())
            if occ > self.fb_set_words:
                self._unfit[cluster.fb_set].add(index)

    @property
    def accepted(self) -> Tuple[KeepDecision, ...]:
        return tuple(self._accepted)

    def try_keep(self, candidate: KeepDecision) -> bool:
        """Trial-accept one candidate; commit and return True iff every
        cluster of its FB set still fits (paper section 4's greedy
        acceptance), touching only the affected clusters."""
        if self._rf < 1:
            raise RuntimeError("begin_keep_selection() must run first")
        rf = self._rf
        fb_set = candidate.fb_set
        invariant = getattr(candidate, "invariant", False)
        added_words = candidate.size if invariant else rf * candidate.size

        trial: List[Tuple[int, int, Set[str], int]] = []
        for cluster in self.dataflow.clustering.on_set(fb_set):
            index = cluster.index
            if not candidate.resident_for(index):
                continue
            resident = self._resident[index] + added_words
            local = self._local[index] | {candidate.name}
            occ = resident + self.sweep_peak(index, rf, frozenset(local))
            trial.append((index, resident, local, occ))

        affected = {index for index, _, _, _ in trial}
        # Untouched clusters keep their occupancy: the set fits iff none
        # of them is currently unfit and every affected cluster fits.
        blocking = sorted(self._unfit.get(fb_set, set()) - affected)
        if blocking:
            self._record_keep(
                "keep.reject", candidate, rf,
                {index: self._occupancy[index] for index in blocking},
                reason="set already unfit without this keep",
            )
            return False
        overflow = {
            index: occ for index, _, _, occ in trial
            if occ > self.fb_set_words
        }
        if overflow:
            self._record_keep(
                "keep.reject", candidate, rf, overflow,
                reason="DS(C_c) > FBS with this keep",
            )
            return False

        for index, resident, local, occ in trial:
            self._resident[index] = resident
            self._local[index] = local
            self._occupancy[index] = occ
            self._unfit[fb_set].discard(index)
        # Cross-set consumers are served without occupying words here,
        # but the kept name leaves their local sweeps.
        consumers = getattr(candidate, "clusters", None)
        if consumers is None:
            consumers = candidate.consumer_clusters
        for index in consumers:
            cluster = self.dataflow.clustering[index]
            if cluster.fb_set == fb_set:
                continue
            self._local[index].add(candidate.name)
            occ = self._resident[index] + self.sweep_peak(
                index, rf, frozenset(self._local[index])
            )
            self._occupancy[index] = occ
            unfit = self._unfit.setdefault(cluster.fb_set, set())
            if occ > self.fb_set_words:
                unfit.add(index)
            else:
                unfit.discard(index)
        self._accepted.append(candidate)
        self._record_keep(
            "keep.accept", candidate, rf,
            {index: occ for index, _, _, occ in trial},
            reason="fits every cluster of the set",
        )
        return True

    def _record_keep(self, kind: str, candidate: KeepDecision, rf: int,
                     occupancies: Dict[int, int], *, reason: str) -> None:
        if self.recorder is None:
            return
        self.recorder.record(
            kind,
            candidate.name,
            keep=candidate.label,
            fb_set=candidate.fb_set,
            rf=rf,
            size=candidate.size,
            words_avoided=candidate.words_avoided,
            occupancies=occupancies,
            fb_set_words=self.fb_set_words,
            reason=reason,
        )
