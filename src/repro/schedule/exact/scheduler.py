"""The exact scheduler: a drop-in ``DataSchedulerBase`` around the
branch-and-bound solver.

Running the solver behind the shared scheduler template buys exact
parity with the greedy schedulers on everything *around* the decision:
static capacity checks, the ``RF = 1 does not fit`` diagnostic (worst
cluster named, word counts through ``format_words_pair``), plan
derivation and capacity validation all come from
:class:`~repro.schedule.base.DataSchedulerBase` — so an infeasible case
renders the same payload from ``exact`` as from ``cds`` up to the
scheduler-name prefix, which is what the ``exactgap`` oracle asserts.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.params import Architecture
from repro.core.dataflow import DataflowInfo
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import DataSchedulerBase, ScheduleOptions
from repro.schedule.exact.solver import (
    DEFAULT_MAX_NODES,
    ExactRetentionSolver,
    ExactSolution,
)
from repro.schedule.occupancy import OccupancyEngine
from repro.schedule.plan import Schedule

__all__ = ["ExactDataScheduler"]


class ExactDataScheduler(DataSchedulerBase):
    """Optimal ``(RF, keeps)`` via branch-and-bound; anytime budgeted.

    With the default (unlimited-enough) budgets the returned schedule
    moves the fewest total words any schedule of the CDS decision space
    can; under a budget it is still never worse than the greedy CDS
    choice, because the search incumbent is seeded with it.  The last
    :class:`~repro.schedule.exact.solver.ExactSolution` (including the
    greedy mirror and the node count) stays readable on
    ``last_solution`` for the gap table and the fuzz oracle.
    """

    name = "exact"

    def __init__(
        self,
        architecture: Architecture,
        options: Optional[ScheduleOptions] = None,
        *,
        max_nodes: int = DEFAULT_MAX_NODES,
        budget_ms: Optional[float] = None,
    ):
        super().__init__(architecture, options)
        self.max_nodes = max_nodes
        self.budget_ms = budget_ms
        #: The solver verdict behind the most recent schedule() call.
        self.last_solution: Optional[ExactSolution] = None

    def _schedule(self, dataflow: DataflowInfo) -> Schedule:
        cross_set = self.options.cross_set_retention
        if cross_set and not self.architecture.fb_cross_set_access:
            raise InfeasibleScheduleError(
                f"{self.name}: cross_set_retention requires an "
                f"architecture with fb_cross_set_access "
                f"({self.architecture.name} lacks it)"
            )
        # The solver needs the memoised sweep decomposition even when
        # the scheduler runs in naive mode; a private engine produces
        # the same verdicts (property-tested equivalence).
        engine = self._engine or OccupancyEngine(
            dataflow, self.architecture.fb_set_words
        )
        solver = ExactRetentionSolver(
            dataflow,
            engine=engine,
            rf_cap=self.options.rf_cap,
            keep_policy=self.options.keep_policy,
            cross_set=cross_set,
            max_nodes=self.max_nodes,
            budget_ms=self.budget_ms,
        )
        solution = solver.solve()
        if solution is None:
            self._raise_rf1_infeasible(dataflow)
        self.last_solution = solution
        self._record(
            "rf.result", rf=solution.rf, rf_cap=self.options.rf_cap,
            total_iterations=dataflow.application.total_iterations,
        )
        self._record(
            "exact.solution",
            rf=solution.rf,
            n_keeps=len(solution.keeps),
            traffic_words=solution.traffic_words,
            greedy_traffic_words=solution.greedy_traffic_words,
            gap_words=solution.gap_words,
            nodes=solution.nodes,
            complete=solution.complete,
        )
        return self._build_schedule(
            dataflow,
            rf=solution.rf,
            keeps=solution.keeps,
            contexts_per_iteration=False,
        )
