"""Branch-and-bound over retention subsets: the exact counterpart of
the Complete Data Scheduler's greedy TF acceptance.

The search space is ``(RF, keep subset)``.  Three structural facts make
it tractable:

* **Feasibility is anti-monotone in the keep set.**  Keeping an object
  charges it as resident for its whole span, which is at least its
  unkept live contribution in every affected cluster, so adding a keep
  never lowers any cluster's ``DS(C_c)``.  A keep set that overflows a
  frame-buffer set stays overflowed in every superset — the include
  branch can be cut the moment one affected cluster stops fitting.
* **Traffic is affine in the keep set**
  (:class:`~repro.schedule.exact.traffic.TrafficModel`), so the best
  possible outcome below a node is ``base - taken - suffix`` with a
  precomputed suffix sum — a one-subtraction bound.
* **Occupancy splits into resident + memoised sweep peak** (the same
  decomposition the incremental :class:`OccupancyEngine` uses), so a
  feasibility trial costs one dict lookup per affected cluster.  The
  solver keeps its own resident/local mirrors on an undo stack —
  ``try_keep`` commits irrevocably, which greedy never needs to undo
  but a backtracking search does — and serves every sweep peak from
  the engine's shared memo.

The incumbent is seeded with the greedy solution (max RF, TF-ordered
acceptance — byte-identical to the Complete Data Scheduler's choice),
so even a budget-truncated search returns a solution at least as good
as greedy: ``exact_traffic <= greedy_traffic`` holds unconditionally,
which is what makes the ``exactgap`` oracle sound under any budget.

Two anytime budgets exist because they serve different masters:
``max_nodes`` is deterministic (same case, same verdict, on any
machine — the fuzz oracle and CI use it) while ``budget_ms`` is
wall-clock (the ``repro gap --budget-ms`` sweep uses it on top).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import KeepDecision, total_data_size
from repro.schedule.exact.traffic import TrafficModel
from repro.schedule.occupancy import OccupancyEngine
from repro.schedule.tf import (
    candidate_id,
    rank_by_time_factor,
    retention_candidates,
)

__all__ = ["ExactSolution", "ExactRetentionSolver", "DEFAULT_MAX_NODES"]

#: Deterministic node budget: far above what generated workloads need
#: (their candidate lists are short), low enough that an adversarial
#: corpus case cannot stall a fuzz campaign.
DEFAULT_MAX_NODES = 200_000

#: Wall-clock budget polling stride (monotonic clock reads are cheap
#: but not free; the bound check dominates anyway).
_CLOCK_STRIDE = 256


@dataclass(frozen=True)
class ExactSolution:
    """The solver's verdict on one dataflow.

    ``traffic_words`` (and the greedy mirror) are model evaluations;
    they equal the materialised schedules' ``TransferSummary`` totals
    — the ``exactgap`` oracle asserts that equality on every case.
    """

    rf: int
    keeps: Tuple[KeepDecision, ...]
    traffic_words: int
    data_words: int
    context_words: int
    greedy_rf: int
    greedy_keeps: Tuple[KeepDecision, ...]
    greedy_traffic_words: int
    nodes: int
    complete: bool

    @property
    def gap_words(self) -> int:
        """Traffic the greedy heuristic left on the table (>= 0)."""
        return self.greedy_traffic_words - self.traffic_words


class ExactRetentionSolver:
    """Exact ``(RF, keeps)`` choice for one dataflow on one FB size."""

    def __init__(
        self,
        dataflow: DataflowInfo,
        *,
        engine: OccupancyEngine,
        rf_cap: int = 0,
        keep_policy: str = "tf",
        cross_set: bool = False,
        max_nodes: int = DEFAULT_MAX_NODES,
        budget_ms: Optional[float] = None,
    ):
        self.dataflow = dataflow
        self.engine = engine
        self.rf_cap = rf_cap
        self.keep_policy = keep_policy
        self.cross_set = cross_set
        self.max_nodes = max_nodes
        self.budget_ms = budget_ms
        self.model = TrafficModel(dataflow)

    # -- greedy seed -------------------------------------------------------

    def _ranked(self, candidates: Sequence[KeepDecision]) -> List[KeepDecision]:
        """The Complete Data Scheduler's candidate order, verbatim."""
        if not candidates:
            return []
        if self.keep_policy == "tf":
            return rank_by_time_factor(
                candidates, total_data_size(self.dataflow)
            )
        if self.keep_policy == "size":
            return sorted(candidates, key=lambda c: (-c.size, c.name))
        return list(candidates)  # "fifo": discovery order

    def _greedy_keeps(
        self, rf: int, ranked: Sequence[KeepDecision]
    ) -> Tuple[KeepDecision, ...]:
        """Greedy TF-ordered acceptance — the CDS choice at this RF."""
        self.engine.begin_keep_selection(rf)
        for candidate in ranked:
            self.engine.try_keep(candidate)
        return self.engine.accepted

    # -- search ------------------------------------------------------------

    def solve(self) -> Optional[ExactSolution]:
        """Minimise total (data + context) traffic over ``(RF, keeps)``.

        Returns ``None`` when not even ``RF = 1`` with no keeps fits —
        the caller raises the same diagnostic the greedy schedulers do.
        """
        engine = self.engine
        rf_max = engine.max_common_rf(keeps=(), max_rf=self.rf_cap)
        if rf_max == 0:
            return None

        candidates = retention_candidates(
            self.dataflow, include_cross_set=self.cross_set
        )
        ranked = self._ranked(candidates)
        greedy_keeps = self._greedy_keeps(rf_max, ranked)
        greedy_traffic = self.model.total_traffic(rf_max, greedy_keeps)

        # Incumbent: (total traffic, rf, keeps in search order).  Seeded
        # with greedy so any truncation still returns exact <= greedy.
        best_traffic = greedy_traffic
        best_rf = rf_max
        best_keeps = tuple(greedy_keeps)

        deadline = (
            time.monotonic() + self.budget_ms / 1000.0
            if self.budget_ms is not None else None
        )
        state = _SearchState(self, deadline)
        for rf in range(rf_max, 0, -1):
            found = state.search_level(rf, candidates, best_traffic)
            if found is not None and found[0] < best_traffic:
                best_traffic, best_rf, best_keeps = found
            if state.exhausted:
                break

        return ExactSolution(
            rf=best_rf,
            keeps=best_keeps,
            traffic_words=best_traffic,
            data_words=best_traffic - self.model.context_traffic(best_rf),
            context_words=self.model.context_traffic(best_rf),
            greedy_rf=rf_max,
            greedy_keeps=tuple(greedy_keeps),
            greedy_traffic_words=greedy_traffic,
            nodes=state.nodes,
            complete=not state.exhausted,
        )


class _SearchState:
    """One solve()'s branch-and-bound bookkeeping across RF levels."""

    def __init__(self, solver: ExactRetentionSolver,
                 deadline: Optional[float]):
        self.solver = solver
        self.deadline = deadline
        self.nodes = 0
        self.exhausted = False

    # -- budget ------------------------------------------------------------

    def _spend_node(self) -> bool:
        """Account one search node; False once any budget is gone."""
        if self.exhausted:
            return False
        self.nodes += 1
        if self.nodes >= self.solver.max_nodes:
            self.exhausted = True
        elif (
            self.deadline is not None
            and self.nodes % _CLOCK_STRIDE == 0
            and time.monotonic() >= self.deadline
        ):
            self.exhausted = True
        return not self.exhausted

    # -- one RF level ------------------------------------------------------

    def search_level(
        self,
        rf: int,
        candidates: Sequence[KeepDecision],
        incumbent_traffic: int,
    ) -> Optional[Tuple[int, int, Tuple[KeepDecision, ...]]]:
        """Best ``(traffic, rf, keeps)`` at one RF, or None if the level
        cannot beat the incumbent (or the budget ran out first)."""
        solver = self.solver
        model = solver.model
        base_total = model.base_data_traffic(rf) + model.context_traffic(rf)
        if not candidates:
            if base_total < incumbent_traffic:
                return (base_total, rf, ())
            return None

        # Savings-descending order finds strong incumbents early; the
        # stable candidate_id tie-break keeps runs deterministic.
        savings = {
            candidate_id(c): model.keep_saving(c, rf) for c in candidates
        }
        ordered = sorted(
            candidates, key=lambda c: (-savings[candidate_id(c)], candidate_id(c))
        )
        gains = [savings[candidate_id(c)] for c in ordered]
        suffix = [0] * (len(ordered) + 1)
        for index in range(len(ordered) - 1, -1, -1):
            suffix[index] = suffix[index + 1] + gains[index]
        if base_total - suffix[0] >= incumbent_traffic:
            return None  # even keeping everything cannot win this level

        clustering = solver.dataflow.clustering
        engine = solver.engine
        fbs = engine.fb_set_words
        # Per-cluster resident words and locally-kept name sets — the
        # same decomposition OccupancyEngine.try_keep maintains, but on
        # an undo stack so the DFS can backtrack.
        resident: Dict[int, int] = {c.index: 0 for c in clustering}
        local: Dict[int, FrozenSet[str]] = {
            c.index: frozenset() for c in clustering
        }

        def try_include(candidate: KeepDecision) -> Optional[List[Tuple]]:
            """Trial one keep; commit and return the undo log, or None
            when an affected cluster overflows (anti-monotone: every
            superset overflows too, so the include branch dies)."""
            invariant = getattr(candidate, "invariant", False)
            added = candidate.size if invariant else rf * candidate.size
            updates: List[Tuple[int, int, FrozenSet[str]]] = []
            for cluster in clustering.on_set(candidate.fb_set):
                index = cluster.index
                if not candidate.resident_for(index):
                    continue
                new_resident = resident[index] + added
                new_local = local[index] | {candidate.name}
                if (
                    new_resident + engine.sweep_peak(index, rf, new_local)
                    > fbs
                ):
                    return None
                updates.append((index, new_resident, new_local))
            consumers = getattr(candidate, "clusters", None)
            if consumers is None:
                consumers = candidate.consumer_clusters
            for index in consumers:
                # Cross-set consumers hold no resident copy; the kept
                # name only leaves their sweep (occupancy can only
                # drop, so no overflow check — mirrors try_keep).
                if clustering[index].fb_set != candidate.fb_set:
                    updates.append((
                        index, resident[index],
                        local[index] | {candidate.name},
                    ))
            undo = [(index, resident[index], local[index])
                    for index, _, _ in updates]
            for index, new_resident, new_local in updates:
                resident[index] = new_resident
                local[index] = new_local
            return undo

        def restore(undo: List[Tuple]) -> None:
            for index, old_resident, old_local in undo:
                resident[index] = old_resident
                local[index] = old_local

        best: Optional[Tuple[int, int, Tuple[KeepDecision, ...]]] = None
        best_traffic = incumbent_traffic
        chosen: List[KeepDecision] = []

        def dfs(index: int, taken: int) -> None:
            nonlocal best, best_traffic
            if not self._spend_node():
                return
            # The current partial set is itself a feasible solution.
            total = base_total - taken
            if total < best_traffic:
                best_traffic = total
                best = (total, rf, tuple(chosen))
            if index == len(ordered):
                return
            if total - suffix[index] >= best_traffic:
                return  # bound: the whole remaining suffix cannot win
            undo = try_include(ordered[index])
            if undo is not None:
                chosen.append(ordered[index])
                dfs(index + 1, taken + gains[index])
                chosen.pop()
                restore(undo)
            dfs(index + 1, taken)

        dfs(0, 0)
        return best
