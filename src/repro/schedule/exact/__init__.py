"""Exact retention/RF solver: the optimality oracle for the greedy CDS.

The paper's Complete Data Scheduler makes two greedy choices — the
common reuse factor is maximised first, then retention candidates are
accepted in TF order.  This package solves the same decision space
exactly (branch-and-bound over retention subsets at every feasible RF,
minimising total traffic words) and exposes it three ways:

* :class:`ExactDataScheduler` — a drop-in scheduler producing the
  optimal schedule (``repro gap`` publishes greedy-vs-exact tables);
* :class:`ExactRetentionSolver` / :class:`ExactSolution` — the raw
  solver for drivers that want the greedy mirror and node counts;
* :class:`TrafficModel` — the closed-form traffic evaluation shared by
  the solver's bound and the ``exactgap`` fuzz oracle's cross-checks.

Any case where greedy "beats" the exact solver is by construction a
bug in one of them; the ``exactgap`` oracle in :mod:`repro.fuzz` turns
that into a continuously-fuzzed assertion.
"""

from repro.schedule.exact.scheduler import ExactDataScheduler
from repro.schedule.exact.solver import (
    DEFAULT_MAX_NODES,
    ExactRetentionSolver,
    ExactSolution,
)
from repro.schedule.exact.traffic import TrafficModel

__all__ = [
    "DEFAULT_MAX_NODES",
    "ExactDataScheduler",
    "ExactRetentionSolver",
    "ExactSolution",
    "TrafficModel",
]
