"""Closed-form traffic model: total words moved as an affine function
of the keep set.

:class:`~repro.schedule.plan.TransferSummary` is the ground truth the
paper's Table 1 reports: it walks every round of the materialised
schedule and sums ``words_for(iterations)`` over each cluster plan's
load and store lists.  For the exact solver that walk is far too slow
to sit inside a branch-and-bound loop, so this module collapses it to
a closed form:

* the **base** traffic (no keeps) charges every load/store slot of the
  no-keep plan skeleton once — ``size * n`` for ordinary objects (one
  instance per iteration) and ``size * rounds(RF)`` for
  iteration-invariant objects (one instance per visit);
* every keep decision removes a fixed set of slots from the skeleton
  (``transfers_avoided`` of them, see :mod:`repro.core.reuse`), and no
  two candidates ever remove the same ``(cluster, object)`` slot — a
  shared datum yields at most one candidate per FB set with disjoint
  consumer lists, and a shared result is a single candidate — so keep
  **savings are additive**;
* context traffic is ``context_per_round * rounds(RF)``,
  keep-independent.

The model is exact, not an estimate: for any ``(RF, keeps)`` decision a
scheduler would accept, :meth:`TrafficModel.total_traffic` equals the
materialised schedule's ``TransferSummary`` totals bit for bit.  The
``exactgap`` fuzz oracle asserts exactly that on both the greedy and
the exact solution of every case, so any divergence between this model
and the plan derivation in :mod:`repro.schedule.base` is a caught bug,
not a silent approximation.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import KeepDecision
from repro.units import ceil_div

__all__ = ["TrafficModel"]


class TrafficModel:
    """Per-run traffic of one dataflow as a function of ``(RF, keeps)``."""

    def __init__(self, dataflow: DataflowInfo):
        from repro.schedule.base import derive_plan_skeleton

        self.dataflow = dataflow
        self.total_iterations = dataflow.application.total_iterations
        self.context_per_round = sum(
            dataflow.clustering.context_words_of(cluster)
            for cluster in dataflow.clustering
        )
        # Base load/store slots from the no-keep skeleton, split by
        # invariance (the only thing that changes how a slot scales).
        per_iteration = 0
        per_round = 0
        for row in derive_plan_skeleton(dataflow, ()):
            _, _, loads, _, stores, _ = row
            for name in loads + stores:
                info = dataflow[name]
                if info.invariant:
                    per_round += info.size
                else:
                    per_iteration += info.size
        self._base_words_per_iteration = per_iteration
        self._base_words_per_round = per_round

    # -- building blocks ---------------------------------------------------

    def rounds(self, rf: int) -> int:
        """``ceil(n / RF)`` — visits per cluster over the whole run."""
        if rf < 1:
            raise ValueError(f"rf must be >= 1, got {rf}")
        return ceil_div(self.total_iterations, rf)

    def context_traffic(self, rf: int) -> int:
        """Context words over the run (one reload per round)."""
        return self.context_per_round * self.rounds(rf)

    def base_data_traffic(self, rf: int) -> int:
        """Data words with no keeps: every slot of the skeleton."""
        return (
            self._base_words_per_iteration * self.total_iterations
            + self._base_words_per_round * self.rounds(rf)
        )

    def keep_saving(self, keep: KeepDecision, rf: int) -> int:
        """Data words one keep removes from the base traffic.

        ``transfers_avoided`` slots disappear from the skeleton; each
        slot moves ``size`` words per iteration, or per round when the
        object is iteration-invariant.  Invariance comes from the
        dataflow record — the same source ``words_for`` uses — not from
        the candidate, which mirrors how the plan accounts transfers.
        """
        info = self.dataflow[keep.name]
        per_slot = info.size * (
            self.rounds(rf) if info.invariant else self.total_iterations
        )
        return keep.transfers_avoided * per_slot

    # -- full evaluations --------------------------------------------------

    def data_traffic(self, rf: int, keeps: Sequence[KeepDecision]) -> int:
        """Data words of the run under ``(rf, keeps)``."""
        return self.base_data_traffic(rf) - sum(
            self.keep_saving(keep, rf) for keep in keeps
        )

    def total_traffic(self, rf: int, keeps: Sequence[KeepDecision]) -> int:
        """Data plus context words — the exact solver's objective."""
        return self.data_traffic(rf, keeps) + self.context_traffic(rf)
