"""Analytic execution-time estimate for a schedule.

The kernel scheduler [7] "explores the design space to find a sequence
of kernels that minimizes the execution time ... estimating data and
contexts transfers".  This module provides that estimator: a closed-form
software-pipeline model of the double-buffered execution, cheap enough
to call inside design-space exploration loops.  The authoritative
numbers come from the event-driven simulator (:mod:`repro.sim`); tests
assert the estimate stays within a tolerance of the simulated makespan.

Model
-----
Execution is a sequence of *visits* (round ``r``, cluster ``c``).  For
visit ``v``:

* ``compute(v)`` — iterations in the round times the sum of the
  cluster's kernel cycles;
* ``dma_before(v)`` — DMA work that must complete before ``v`` computes:
  its data loads (``RF`` instances each) and its context loads;
* ``dma_after(v)`` — its result stores.

With two FB sets and one DMA channel, visit ``v``'s preparation overlaps
visit ``v - 1``'s computation, and visit ``v``'s stores overlap visit
``v + 1``:

    T  =  dma_before(0)
        + sum_v max(compute(v), dma_before(v+1) + dma_after(v-1))
        + dma_after(last)
"""

from __future__ import annotations

from typing import List, Tuple

from repro.arch.params import Architecture
from repro.schedule.plan import Schedule

__all__ = ["estimate_execution_cycles", "visit_windows"]


def visit_windows(
    schedule: Schedule, architecture: Architecture
) -> List[Tuple[int, int, int]]:
    """Per-visit ``(compute, dma_loads, dma_stores)`` cycle triples,
    in visit order (round-major)."""
    timing = architecture.timing
    windows: List[Tuple[int, int, int]] = []
    clustering = schedule.clustering
    for round_index in range(schedule.rounds):
        iterations = schedule.iterations_in_round(round_index)
        for cluster in clustering:
            kernels = clustering.kernels_of(cluster)
            compute = iterations * sum(k.cycles for k in kernels)
            plan = schedule.plan_for(cluster.index)
            dma_loads = sum(
                timing.data_transfer_cycles(
                    schedule.dataflow[name].words_for(iterations)
                )
                for name in plan.loads
            )
            dma_loads += sum(
                timing.context_transfer_cycles(kernel.context_words)
                for kernel in kernels
            )
            dma_stores = sum(
                timing.data_transfer_cycles(
                    schedule.dataflow[name].words_for(iterations)
                )
                for name in plan.stores
            )
            windows.append((compute, dma_loads, dma_stores))
    return windows


def estimate_execution_cycles(
    schedule: Schedule, architecture: Architecture
) -> int:
    """Estimate of the schedule's makespan, in cycles.

    Pipelined schedules (DS/CDS) use the software-pipeline formula from
    the module docstring; serial schedules (the Basic Scheduler, whose
    transfers do not overlap computation) simply sum every window.
    """
    windows = visit_windows(schedule, architecture)
    if not windows:
        return 0
    if not schedule.overlap_transfers:
        return sum(
            compute + loads + stores for compute, loads, stores in windows
        )
    total = windows[0][1]  # prologue: first visit's loads + contexts
    for index, (compute, _loads, _stores) in enumerate(windows):
        next_loads = windows[index + 1][1] if index + 1 < len(windows) else 0
        prev_stores = windows[index - 1][2] if index > 0 else 0
        total += max(compute, next_loads + prev_stores)
    total += windows[-1][2]  # epilogue: last visit's stores
    return total
