"""Lockstep batch evaluation: DS sweeps, RF bisection, keep acceptance.

Every operation here is exact integer arithmetic over the padded
:class:`~repro.schedule.batch.tables.BatchTables` arrays; verdicts and
occupancies equal the reference scheduler's bit for bit (the
equivalence is property-tested in
``tests/schedule/test_batch_equivalence.py``).

The common-RF search is a *lockstep bisection*: instead of the
reference's gallop + bisect per case, all cases probe their midpoints
in the same vectorized sweep until every interval collapses.  Probe
order differs from the reference but the result — the largest feasible
RF — is the same integer, and the fast path never records decision
traces (``decision_trace=True`` falls back to the reference), so no
observable difference remains.

Keep acceptance advances rank-by-rank across the batch: at step ``t``
every case still holding a ``t``-th ranked candidate applies that
candidate's sparse delta to a trial copy of its row, all trial rows are
evaluated in one sweep, and accepting rows commit their trial.  The
reference engine's "set already unfit" rejection can never fire on this
path: RF was chosen so every cluster fits with no keeps, and commits
preserve that invariant, so checking the candidate's whole FB set is
equivalent to the reference's affected-clusters check.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.schedule.batch.tables import BatchTables, KeepDelta
from repro.schedule.tf import candidate_id

__all__ = [
    "batch_occupancies",
    "batch_fits",
    "batch_max_common_rf",
    "batch_select_keeps",
    "rank_candidates_batch",
]


def _peaks(out, rel, invw, var_in, inv_in, res_var, res_inv,
           kmask, cmask, rf):
    """``DS(C_c)`` for every (case, cluster); padding clusters read 0.

    Vectorization of :func:`repro.core.metrics.cluster_sweep_peak`:
    with ``d_k = out_k - rel_k`` the occupancy entering kernel ``k`` is
    ``base + sum_{j<k} (rf * d_j - invw_j)`` and the per-kernel peak
    candidate adds ``out_k + max(0, (rf-1) * d_k)``; the cluster peak
    is the max over ``base`` and all candidates, plus the resident
    keep term ``res_inv + rf * res_var``.
    """
    r = rf[:, None, None]
    d = out - rel
    step = r * d - invw
    pre = np.cumsum(step, axis=2) - step  # exclusive prefix sum
    base = inv_in + rf[:, None] * var_in  # (N, C)
    cand = base[:, :, None] + pre + out + np.maximum(0, (r - 1) * d)
    cand = np.where(kmask, cand, 0)
    peak = np.maximum(base, cand.max(axis=2, initial=0))
    occ = res_inv + rf[:, None] * res_var + peak
    return np.where(cmask, occ, 0)


def batch_occupancies(bt: BatchTables, rf: np.ndarray) -> np.ndarray:
    """Per-cluster occupancy of every case at per-case ``rf``."""
    return _peaks(
        bt.out, bt.rel, bt.invw, bt.var_in, bt.inv_in,
        bt.res_var, bt.res_inv, bt.kmask, bt.cmask, rf,
    )


def batch_fits(bt: BatchTables, rf: np.ndarray) -> np.ndarray:
    """Per-case verdict: every real cluster fits one FB set at ``rf``."""
    occ = batch_occupancies(bt, rf)
    return np.all((occ <= bt.fbs[:, None]) | ~bt.cmask, axis=1)


def batch_max_common_rf(bt: BatchTables) -> np.ndarray:
    """Largest feasible RF per case (0 = infeasible even at RF 1).

    Same contract as :meth:`repro.schedule.occupancy.OccupancyEngine.
    max_common_rf`; occupancy is monotonically non-decreasing in RF, so
    a lockstep bisection over ``[1, cap]`` finds the same maximum the
    reference's gallop + bisect does.
    """
    n = len(bt.fbs)
    rf = np.zeros(n, dtype=np.int64)
    if n == 0:
        return rf
    cap = bt.cap
    one = np.ones(n, dtype=np.int64)
    ok1 = batch_fits(bt, one) & (cap >= 1)
    okcap = batch_fits(bt, np.maximum(cap, one)) & ok1
    rf[okcap] = cap[okcap]
    active = ok1 & ~okcap
    # Invariant per active case: fits(lo) and not fits(hi).
    lo = one.copy()
    hi = np.maximum(cap, one)
    while True:
        gap = active & (hi - lo > 1)
        if not gap.any():
            break
        mid = np.where(gap, (lo + hi) // 2, 1)
        okm = batch_fits(bt, mid)
        lo = np.where(gap & okm, mid, lo)
        hi = np.where(gap & ~okm, mid, hi)
    rf[active] = lo[active]
    return rf


def rank_candidates_batch(
    case_candidates: List[List],
    policy: str,
) -> List[List[int]]:
    """Rank every case's retention candidates in one batched sort.

    Returns, per case, candidate positions (into that case's input
    list) in acceptance order.  Ordering matches the reference
    (:meth:`repro.schedule.complete.CompleteDataScheduler.
    _ranked_candidates`) exactly: ``"tf"`` sorts by ``(-words_avoided,
    -size, candidate_id)``, ``"size"`` by ``(-size, name)``, ``"fifo"``
    keeps discovery order.  The non-numeric tie-breaks are encoded as
    per-case integer ranks so one ``np.lexsort`` orders the whole
    batch.
    """
    if policy == "fifo":
        return [list(range(len(cands))) for cands in case_candidates]

    case_ids: List[int] = []
    words: List[int] = []
    sizes: List[int] = []
    tie: List[int] = []
    positions: List[int] = []
    for case_idx, cands in enumerate(case_candidates):
        if not cands:
            continue
        if policy == "tf":
            keys = [candidate_id(c) for c in cands]
        else:  # "size": tie-break on name
            keys = [c.name for c in cands]
        order = sorted(range(len(cands)), key=keys.__getitem__)
        rank = [0] * len(cands)
        for j, pos in enumerate(order):
            rank[pos] = j
        for pos, cand in enumerate(cands):
            case_ids.append(case_idx)
            words.append(cand.words_avoided)
            sizes.append(cand.size)
            tie.append(rank[pos])
            positions.append(pos)

    ranked: List[List[int]] = [[] for _ in case_candidates]
    if not case_ids:
        return ranked
    case_arr = np.asarray(case_ids, dtype=np.int64)
    size_arr = np.asarray(sizes, dtype=np.int64)
    tie_arr = np.asarray(tie, dtype=np.int64)
    pos_arr = np.asarray(positions, dtype=np.int64)
    if policy == "tf":
        words_arr = np.asarray(words, dtype=np.int64)
        order = np.lexsort((tie_arr, -size_arr, -words_arr, case_arr))
    else:
        order = np.lexsort((tie_arr, -size_arr, case_arr))
    for flat in order:
        ranked[int(case_arr[flat])].append(int(pos_arr[flat]))
    return ranked


def _apply_delta(arrays, row: int, delta: KeepDelta) -> None:
    """Subtract/add one candidate's sparse updates on one row in place."""
    out, rel, invw, var_in, inv_in, res_var, res_inv = arrays
    for c, k, words in delta.d_out:
        out[row, c, k] -= words
    for c, k, words in delta.d_rel:
        rel[row, c, k] -= words
    for c, k, words in delta.d_invw:
        invw[row, c, k] -= words
    for c, words in delta.d_var_in:
        var_in[row, c] -= words
    for c, words in delta.d_inv_in:
        inv_in[row, c] -= words
    for c, words in delta.d_res_var:
        res_var[row, c] += words
    for c, words in delta.d_res_inv:
        res_inv[row, c] += words


def batch_select_keeps(
    bt: BatchTables,
    rf: np.ndarray,
    ranked_deltas: Sequence[Sequence[KeepDelta]],
) -> List[List[int]]:
    """Greedy TF-ordered acceptance, lockstep across the batch.

    ``ranked_deltas[i]`` holds case *i*'s candidates in acceptance
    order; the return value lists, per case, the accepted rank steps in
    order.  Mutates ``bt``'s coefficient arrays in place: after the
    call they describe every case *with* its accepted keeps, so one
    more :func:`batch_occupancies` sweep yields the final per-cluster
    occupancies.
    """
    n = len(bt.fbs)
    accepted: List[List[int]] = [[] for _ in range(n)]
    if n == 0:
        return accepted
    state = (bt.out, bt.rel, bt.invw, bt.var_in, bt.inv_in,
             bt.res_var, bt.res_inv)
    max_steps = max((len(d) for d in ranked_deltas), default=0)
    for step in range(max_steps):
        rows = [i for i in range(n) if len(ranked_deltas[i]) > step]
        if not rows:
            break
        idx = np.asarray(rows, dtype=np.int64)
        trial = tuple(arr[idx].copy() for arr in state)
        cand_sets = np.empty(len(rows), dtype=np.int64)
        for j, i in enumerate(rows):
            delta = ranked_deltas[i][step]
            cand_sets[j] = delta.fb_set
            _apply_delta(trial, j, delta)
        occ = _peaks(*trial, bt.kmask[idx], bt.cmask[idx], rf[idx])
        # Accept iff every real cluster of the candidate's FB set fits.
        # Clusters of the other set are untouched by the delta, and all
        # clusters fit before the trial (RF selection + prior commits),
        # so this is the reference's acceptance verdict exactly.
        in_set = (bt.fb_set[idx] == cand_sets[:, None]) & bt.cmask[idx]
        ok = np.all((occ <= bt.fbs[idx][:, None]) | ~in_set, axis=1)
        for j, i in enumerate(rows):
            if ok[j]:
                for arr, trial_arr in zip(state, trial):
                    arr[i] = trial_arr[j]
                accepted[i].append(step)
    return accepted
