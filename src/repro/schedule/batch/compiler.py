"""Batch compile driver: many scheduling problems, one engine pass.

:meth:`BatchCompiler.compile_many` takes a list of
:class:`CompileRequest` (scheduler name + workload + architecture +
options) and produces one :class:`CompileResult` per request, in order.
Requests whose options the fast path does not model — decision traces,
strict lint/hazard self-checks, the joint RF ablation, cross-set
retention — run the reference per-case scheduler instead
(``CompileResult.engine == 'reference'``); everything else flows
through the structure-of-arrays engine:

1. **Layout** — one :class:`~repro.schedule.batch.tables.CaseTables`
   per distinct dataflow (requests for several schedulers over one
   workload share it).
2. **RF** — distinct ``(workload, capacity, rf_cap)`` problems are
   stacked and bisected in lockstep; a DS and a CDS request over the
   same workload resolve one shared search.
3. **Keeps** — CDS cases rank their retention candidates in one
   batched sort and run the paper's greedy acceptance rank-by-rank
   across the batch.
4. **Finalize** — accepted decisions flow through the same
   :func:`repro.schedule.base.derive_cluster_plans` as the per-case
   schedulers, so batch schedules are byte-identical to the reference.

Infeasible cases never poison their batch neighbors: the case is
re-run on the reference scheduler so its
:class:`~repro.errors.InfeasibleScheduleError` payload (message,
cluster, word counts) is identical by construction, and the error is
captured in that case's :class:`CompileResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import DataflowInfo, analyze_dataflow
from repro.errors import InfeasibleScheduleError
from repro.obs.metrics import inc, time_stage
from repro.schedule.base import (
    DataSchedulerBase,
    ScheduleOptions,
    assemble_schedule,
    derive_plan_skeleton,
)
from repro.schedule.basic import BasicScheduler
from repro.schedule.batch.engine import (
    batch_max_common_rf,
    batch_occupancies,
    batch_select_keeps,
    rank_candidates_batch,
)
from repro.schedule.batch.tables import BatchTables, CaseTables, build_keep_delta
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.plan import Schedule
from repro.schedule.tf import retention_candidates

__all__ = [
    "BatchCompiler",
    "CompileRequest",
    "CompileResult",
    "batch_supported",
    "compile_many",
]

_SCHEDULERS = {
    "basic": BasicScheduler,
    "ds": DataScheduler,
    "cds": CompleteDataScheduler,
}

_SCOPE = "batch"


@dataclass
class CompileRequest:
    """One scheduling problem: which scheduler, on what, under which
    options.  ``clustering`` defaults to one cluster per kernel and
    ``dataflow`` is analyzed on demand — both exactly as
    :meth:`~repro.schedule.base.DataSchedulerBase.schedule` would."""

    scheduler: str
    application: Application
    architecture: Architecture
    clustering: Optional[Clustering] = None
    options: Optional[ScheduleOptions] = None
    dataflow: Optional[DataflowInfo] = None

    def __post_init__(self) -> None:
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {sorted(_SCHEDULERS)}"
            )
        if self.options is None:
            self.options = ScheduleOptions()


@dataclass
class CompileResult:
    """Outcome of one request: a schedule or the infeasibility error.

    ``engine`` records which path produced it: ``'batch'`` (fast path)
    or ``'reference'`` (per-case fallback — unsupported options, or an
    infeasible case re-run for its exact diagnostic).
    """

    schedule: Optional[Schedule]
    error: Optional[InfeasibleScheduleError]
    engine: str

    @property
    def feasible(self) -> bool:
        return self.schedule is not None

    def unwrap(self) -> Schedule:
        """The schedule, raising the captured error when infeasible."""
        if self.error is not None:
            raise self.error
        assert self.schedule is not None
        return self.schedule


def batch_supported(scheduler: str, options: ScheduleOptions) -> bool:
    """True if the fast path models this request exactly.

    The excluded options either observe *how* decisions are reached
    (``decision_trace`` records per-probe events the lockstep search
    does not replay), re-enter the scheduler per candidate RF
    (``rf_policy='joint'``), add post-build self-checks
    (``strict_lint``/``strict_hazards``), or extend retention across
    FB sets (``cross_set_retention``).  All fall back to the reference
    scheduler — correctness first, speed second.
    """
    return (
        scheduler in _SCHEDULERS
        and not options.decision_trace
        and not options.strict_lint
        and not options.strict_hazards
        and not options.cross_set_retention
        and options.rf_policy == "max_then_keep"
    )


class BatchCompiler:
    """Compiles batches of scheduling problems through the SoA engine."""

    def compile_many(
        self, requests: Sequence[CompileRequest]
    ) -> List[CompileResult]:
        """One :class:`CompileResult` per request, in request order."""
        results: List[Optional[CompileResult]] = [None] * len(requests)
        if not requests:
            return []
        inc("batch.requests", len(requests), scope=_SCOPE)
        # No-keep plan skeletons per dataflow: the Basic and DS requests
        # of one workload (and keep-free CDS outcomes) differ only in
        # occupancy, so the load/store derivation runs once.
        self._skeletons: Dict[int, tuple] = {}

        fast: List[Tuple[int, CompileRequest, DataSchedulerBase]] = []
        with time_stage("layout", scope=_SCOPE):
            dataflows: Dict[Tuple[int, int], DataflowInfo] = {}
            # The static checks depend only on (dataflow, fb_set_words,
            # context_block_words) — requests for several schedulers over
            # one workload share a single pass.
            static: Dict[
                Tuple[int, int, int], Optional[InfeasibleScheduleError]
            ] = {}
            for i, request in enumerate(requests):
                self._resolve(request, dataflows)
                if not batch_supported(request.scheduler, request.options):
                    inc("batch.fallback", scope=_SCOPE)
                    results[i] = self._reference(request)
                    continue
                scheduler = _SCHEDULERS[request.scheduler](
                    request.architecture, request.options
                )
                key = (
                    id(request.dataflow),
                    request.architecture.fb_set_words,
                    request.architecture.context_block_words,
                )
                if key not in static:
                    try:
                        scheduler._check_static_capacities(request.dataflow)
                        static[key] = None
                    except InfeasibleScheduleError as exc:
                        static[key] = exc
                error = static[key]
                if error is not None:
                    inc("batch.infeasible", scope=_SCOPE)
                    results[i] = CompileResult(None, error, engine="batch")
                    continue
                fast.append((i, request, scheduler))

            tables: Dict[int, CaseTables] = {}
            for _, request, _ in fast:
                key = id(request.dataflow)
                if key not in tables:
                    tables[key] = CaseTables(request.dataflow)

        basic = [entry for entry in fast if entry[1].scheduler == "basic"]
        fission = [entry for entry in fast if entry[1].scheduler != "basic"]
        for i, request, scheduler in basic:
            results[i] = self._compile_basic(
                request, scheduler, tables[id(request.dataflow)]
            )
        if fission:
            self._compile_fission(fission, tables, results)

        final = [result for result in results if result is not None]
        assert len(final) == len(requests)
        return final

    # -- request plumbing ------------------------------------------------

    @staticmethod
    def _resolve(
        request: CompileRequest,
        dataflows: Dict[Tuple[int, int], DataflowInfo],
    ) -> None:
        """Fill in clustering/dataflow, sharing analyses across the
        batch (requests for several schedulers over one workload pass
        the same objects and resolve to one analysis)."""
        if request.clustering is None:
            request.clustering = Clustering.per_kernel(request.application)
        if request.dataflow is None:
            key = (id(request.application), id(request.clustering))
            dataflow = dataflows.get(key)
            if dataflow is None:
                dataflow = analyze_dataflow(
                    request.application, request.clustering
                )
                dataflows[key] = dataflow
            request.dataflow = dataflow
        elif (request.dataflow.application is not request.application
                or request.dataflow.clustering is not request.clustering):
            raise ValueError(
                "dataflow was analysed for a different application or "
                "clustering"
            )

    def _reference(self, request: CompileRequest) -> CompileResult:
        """Run the per-case scheduler; capture infeasibility."""
        scheduler = _SCHEDULERS[request.scheduler](
            request.architecture, request.options
        )
        try:
            schedule = scheduler.schedule(
                request.application, request.clustering,
                dataflow=request.dataflow,
            )
        except InfeasibleScheduleError as exc:
            return CompileResult(None, exc, engine="reference")
        return CompileResult(schedule, None, engine="reference")

    def _infeasible(self, request: CompileRequest) -> CompileResult:
        """Re-run an infeasible case on the reference scheduler so the
        diagnostic payload is identical by construction."""
        inc("batch.infeasible", scope=_SCOPE)
        result = self._reference(request)
        if result.error is None:
            # The batch engine judged the case infeasible but the
            # reference disagreed — a batch bug.  Surface the (correct)
            # reference schedule and count the divergence; the
            # equivalence suite and the batchcompile oracle turn this
            # counter into a hard failure.
            inc("batch.mismatch", scope=_SCOPE)
        return result

    # -- per-scheduler fast paths ----------------------------------------

    def _compile_basic(
        self,
        request: CompileRequest,
        scheduler: DataSchedulerBase,
        case: CaseTables,
    ) -> CompileResult:
        """Basic Scheduler: RF = 1, no keeps, full-footprint occupancy."""
        fbs = request.architecture.fb_set_words
        if np.any(case.footprint > fbs):
            return self._infeasible(request)
        occupancy = {
            index: int(case.footprint[index])
            for index in range(case.n_clusters)
        }
        return self._finalize(
            request, rf=1, keeps=(), occupancy=occupancy,
            contexts_per_iteration=True, overlap_transfers=False,
        )

    def _compile_fission(
        self,
        entries: List[Tuple[int, CompileRequest, DataSchedulerBase]],
        tables: Dict[int, CaseTables],
        results: List[Optional[CompileResult]],
    ) -> None:
        """DS + CDS requests: shared RF search, then CDS keep selection."""
        # Distinct RF problems: a DS and a CDS request over the same
        # workload/capacity/cap resolve one search.
        problem_rows: Dict[Tuple[int, int, int], int] = {}
        stack_rows: List[Tuple[CaseTables, int, int]] = []
        entry_problem: List[int] = []
        for _, request, _ in entries:
            case = tables[id(request.dataflow)]
            cap = (
                request.options.rf_cap if request.options.rf_cap > 0
                else request.application.total_iterations
            )
            key = (id(case), request.architecture.fb_set_words, cap)
            row = problem_rows.get(key)
            if row is None:
                row = len(stack_rows)
                problem_rows[key] = row
                stack_rows.append(
                    (case, request.architecture.fb_set_words, cap)
                )
            entry_problem.append(row)

        with time_stage("rf", scope=_SCOPE):
            batch = BatchTables.stack(stack_rows)
            rf_by_problem = batch_max_common_rf(batch)
            ds_occ = batch_occupancies(
                batch, np.maximum(rf_by_problem, 1)
            )

        cds_entries: List[Tuple[int, CompileRequest, CaseTables, int]] = []
        for entry_idx, (i, request, _) in enumerate(entries):
            problem = entry_problem[entry_idx]
            rf = int(rf_by_problem[problem])
            if rf == 0:
                results[i] = self._infeasible(request)
                continue
            case = tables[id(request.dataflow)]
            if request.scheduler == "ds":
                occupancy = {
                    index: int(ds_occ[problem, index])
                    for index in range(case.n_clusters)
                }
                results[i] = self._finalize(
                    request, rf=rf, keeps=(), occupancy=occupancy,
                    contexts_per_iteration=False,
                )
            else:
                cds_entries.append((i, request, case, rf))
        if cds_entries:
            self._compile_cds(cds_entries, results)

    def _compile_cds(
        self,
        entries: List[Tuple[int, CompileRequest, CaseTables, int]],
        results: List[Optional[CompileResult]],
    ) -> None:
        """CDS keep selection: batched TF ranking + lockstep acceptance."""
        with time_stage("keeps", scope=_SCOPE):
            case_candidates = [
                retention_candidates(request.dataflow)
                for _, request, _, _ in entries
            ]
            # All fast-path requests share one keep_policy per call
            # site in practice, but rank per-policy groups to be exact.
            orders: List[List[int]] = [[] for _ in entries]
            by_policy: Dict[str, List[int]] = {}
            for row, (_, request, _, _) in enumerate(entries):
                by_policy.setdefault(
                    request.options.keep_policy, []
                ).append(row)
            for policy, rows in by_policy.items():
                ranked = rank_candidates_batch(
                    [case_candidates[row] for row in rows], policy
                )
                for sub, row in enumerate(rows):
                    orders[row] = ranked[sub]

            ranked_candidates = [
                [case_candidates[row][pos] for pos in orders[row]]
                for row in range(len(entries))
            ]
            ranked_deltas = [
                [build_keep_delta(case, cand) for cand in cands]
                for (_, _, case, _), cands in zip(entries, ranked_candidates)
            ]
            state = BatchTables.stack([
                (case, request.architecture.fb_set_words, rf)
                for _, request, case, rf in entries
            ])
            rf_vec = np.asarray(
                [rf for _, _, _, rf in entries], dtype=np.int64
            )
            accepted = batch_select_keeps(state, rf_vec, ranked_deltas)
            inc(
                "batch.keep_trials",
                sum(len(cands) for cands in ranked_candidates),
                scope=_SCOPE,
            )
            final_occ = batch_occupancies(state, rf_vec)

        for row, (i, request, case, rf) in enumerate(entries):
            keeps = tuple(
                ranked_candidates[row][step] for step in accepted[row]
            )
            occupancy = {
                index: int(final_occ[row, index])
                for index in range(case.n_clusters)
            }
            results[i] = self._finalize(
                request, rf=rf, keeps=keeps, occupancy=occupancy,
                contexts_per_iteration=False,
            )

    # -- finalize ---------------------------------------------------------

    def _finalize(
        self,
        request: CompileRequest,
        *,
        rf: int,
        keeps: tuple,
        occupancy: Dict[int, int],
        contexts_per_iteration: bool,
        overlap_transfers: bool = True,
    ) -> CompileResult:
        with time_stage("finalize", scope=_SCOPE):
            if keeps:
                skeleton = derive_plan_skeleton(request.dataflow, keeps)
            else:
                key = id(request.dataflow)
                skeleton = self._skeletons.get(key)
                if skeleton is None:
                    skeleton = derive_plan_skeleton(request.dataflow, ())
                    self._skeletons[key] = skeleton
            schedule = assemble_schedule(
                request.scheduler,
                request.dataflow,
                rf=rf,
                keeps=keeps,
                occupancy=occupancy,
                contexts_per_iteration=contexts_per_iteration,
                fb_set_words=request.architecture.fb_set_words,
                context_block_words=request.architecture.context_block_words,
                overlap_transfers=overlap_transfers,
                skeleton=skeleton,
            )
        inc("batch.fastpath", scope=_SCOPE)
        return CompileResult(schedule, None, engine="batch")


def compile_many(
    requests: Sequence[CompileRequest],
    *,
    engine: str = "batch",
) -> List[CompileResult]:
    """Compile a batch under the chosen engine.

    ``engine='batch'`` runs the structure-of-arrays fast path;
    ``engine='reference'`` runs every request through the per-case
    scheduler — the equivalence oracle's other half.
    """
    if engine not in ("batch", "reference"):
        raise ValueError(f"unknown engine {engine!r}")
    compiler = BatchCompiler()
    if engine == "reference":
        dataflows: Dict[Tuple[int, int], DataflowInfo] = {}
        out: List[CompileResult] = []
        for request in requests:
            compiler._resolve(request, dataflows)
            out.append(compiler._reference(request))
        return out
    return compiler.compile_many(requests)
