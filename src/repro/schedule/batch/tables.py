"""Structure-of-arrays occupancy tables for batch scheduling.

:func:`repro.core.metrics.cluster_sweep_peak` evaluates ``DS(C_c)`` in
``O(kernels)`` because the occupancy trace is affine in the iteration
index within each kernel's ``RF`` consecutive executions.  The whole
sweep therefore reduces to four integer coefficients per kernel slot
and two per cluster::

    out[c, k]   words of (non-kept) outputs kernel k allocates
    rel[c, k]   words released after kernel k's peak check (dead
                non-invariant inputs + intermediates dying here)
    invw[c, k]  invariant-input words released on the final iteration
    var_in[c]   non-kept, non-invariant input words (scale with RF)
    inv_in[c]   non-kept invariant input words (one copy)

With exclusive prefix sums ``P_k = sum_{j<k} (out_j - rel_j)`` and
``I_k = sum_{j<k} invw_j`` the occupancy entering kernel ``k`` is
``inv_in - I_k + rf * (var_in + P_k)`` and the per-kernel peak
candidate adds ``out_k + max(0, (rf-1) * (out_k - rel_k))`` — all of
which vectorizes over (case, cluster, kernel) once the per-case tables
are padded to a common shape (:class:`BatchTables`).  Keep decisions
become sparse integer *deltas* against these coefficients plus a
resident term ``res_inv + rf * res_var``, so trial acceptance never
re-walks the object graph.

Everything is int64: occupancies are exact word counts and must match
the reference scheduler bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dataflow import DataflowInfo, ObjectClass

__all__ = ["CaseTables", "BatchTables", "KeepDelta"]


class CaseTables:
    """Occupancy coefficients of one analyzed (application, clustering).

    Arrays are shaped ``(n_clusters, max_kernels_per_cluster)`` /
    ``(n_clusters,)``; kernel slots beyond a cluster's length are zero
    (and masked out by ``kmask``).  The auxiliary position maps are
    kept so :class:`KeepDelta` construction can translate a retention
    candidate into coefficient updates without re-deriving liveness.
    """

    def __init__(self, dataflow: DataflowInfo):
        self.dataflow = dataflow
        clustering = dataflow.clustering
        n_clusters = len(clustering)
        widths = [len(cluster.kernel_names) for cluster in clustering]
        max_k = max(widths) if widths else 1

        self.n_clusters = n_clusters
        self.max_kernels = max_k
        #: Per cluster: kernel name -> slot index.
        self.position: List[Dict[str, int]] = []
        #: Per cluster: input object name -> slot of its last local use.
        self.last_use_pos: List[Dict[str, int]] = []
        #: Per cluster: produced object name -> slot of its producer.
        self.producer_pos: List[Dict[str, int]] = []

        # Rows are accumulated as plain Python lists (scalar indexing
        # into ndarrays dominates construction otherwise) and converted
        # to int64 arrays once at the end.
        out_rows: List[List[int]] = []
        rel_rows: List[List[int]] = []
        invw_rows: List[List[int]] = []
        var_in_row: List[int] = []
        inv_in_row: List[int] = []
        foot_row: List[int] = []
        set_row: List[int] = []

        get = dataflow.__getitem__
        kernel_of = dataflow.application.kernel
        intermediate = ObjectClass.INTERMEDIATE_RESULT
        for cluster in clustering:
            kernel_names = cluster.kernel_names
            position = {name: idx for idx, name in enumerate(kernel_names)}
            self.position.append(position)
            set_row.append(cluster.fb_set)

            var_in = inv_in = footprint = 0
            out_row = [0] * max_k
            rel_row = [0] * max_k
            invw_row = [0] * max_k

            # One pass over the cluster's kernels in execution order:
            # producers precede consumers, so an operand not yet
            # produced locally is an external input, and overwriting
            # its slot leaves the *last* local use.
            producer_pos: Dict[str, int] = {}
            last_use: Dict[str, int] = {}
            last_local: Dict[str, int] = {}
            for k_idx, kernel_name in enumerate(kernel_names):
                kernel = kernel_of(kernel_name)
                for in_name in kernel.inputs:
                    if in_name in producer_pos:
                        last_local[in_name] = k_idx
                    else:
                        last_use[in_name] = k_idx
                for out_name in kernel.outputs:
                    producer_pos[out_name] = k_idx
            self.last_use_pos.append(last_use)
            self.producer_pos.append(producer_pos)

            for obj_name, last_pos in last_use.items():
                info = get(obj_name)
                size = info.size
                footprint += size
                if info.invariant:
                    inv_in += size
                    invw_row[last_pos] += size
                else:
                    var_in += size
                    rel_row[last_pos] += size

            for out_name, k_idx in producer_pos.items():
                info = get(out_name)
                size = info.size
                footprint += size
                out_row[k_idx] += size
                if info.object_class is intermediate:
                    rel_row[last_local[out_name]] += size

            out_rows.append(out_row)
            rel_rows.append(rel_row)
            invw_rows.append(invw_row)
            var_in_row.append(var_in)
            inv_in_row.append(inv_in)
            foot_row.append(footprint)

        self.out = np.asarray(out_rows, dtype=np.int64)
        self.rel = np.asarray(rel_rows, dtype=np.int64)
        self.invw = np.asarray(invw_rows, dtype=np.int64)
        self.var_in = np.asarray(var_in_row, dtype=np.int64)
        self.inv_in = np.asarray(inv_in_row, dtype=np.int64)
        self.footprint = np.asarray(foot_row, dtype=np.int64)
        self.fb_set = np.asarray(set_row, dtype=np.int64)
        self.kmask = np.zeros((n_clusters, max_k), dtype=bool)
        for index, width in enumerate(widths):
            self.kmask[index, :width] = True


@dataclass(frozen=True)
class KeepDelta:
    """One retention candidate as sparse coefficient updates.

    Applying the delta (subtracting the per-kernel entries, adjusting
    input bases, adding the resident term) turns the no-keep tables of
    the affected clusters into the tables *with* this item kept.
    Deltas of distinct accepted candidates commute and never overlap —
    two keeps can never cover the same (object, cluster) pair — so the
    committed state equals the reference's set-based ``local_kept``
    bookkeeping exactly.
    """

    fb_set: int
    #: ``(cluster, kernel, words)`` subtracted from ``out``.
    d_out: Tuple[Tuple[int, int, int], ...] = ()
    #: ``(cluster, kernel, words)`` subtracted from ``rel``.
    d_rel: Tuple[Tuple[int, int, int], ...] = ()
    #: ``(cluster, kernel, words)`` subtracted from ``invw``.
    d_invw: Tuple[Tuple[int, int, int], ...] = ()
    #: ``(cluster, words)`` subtracted from ``var_in``.
    d_var_in: Tuple[Tuple[int, int], ...] = ()
    #: ``(cluster, words)`` subtracted from ``inv_in``.
    d_inv_in: Tuple[Tuple[int, int], ...] = ()
    #: ``(cluster, words)`` added to the RF-scaled resident term.
    d_res_var: Tuple[Tuple[int, int], ...] = ()
    #: ``(cluster, words)`` added to the constant resident term.
    d_res_inv: Tuple[Tuple[int, int], ...] = ()


def build_keep_delta(tables: CaseTables, candidate) -> KeepDelta:
    """Translate one retention candidate into a :class:`KeepDelta`.

    Mirrors :func:`repro.core.metrics._resident_keep_words` plus the
    ``local_kept`` exclusions inside ``cluster_sweep_peak``: consumers
    drop the object from their input base and its release slot, a
    shared-result producer drops it from the producing kernel's output
    words, and every same-set cluster inside the residency span gains
    the resident words (``size`` if invariant else ``rf * size``).
    Only same-set candidates are supported — cross-set retention takes
    the reference fallback path.
    """
    dataflow = tables.dataflow
    size = candidate.size
    invariant = bool(getattr(candidate, "invariant", False))
    fb_set = candidate.fb_set

    d_out: List[Tuple[int, int, int]] = []
    d_rel: List[Tuple[int, int, int]] = []
    d_invw: List[Tuple[int, int, int]] = []
    d_var_in: List[Tuple[int, int]] = []
    d_inv_in: List[Tuple[int, int]] = []
    d_res_var: List[Tuple[int, int]] = []
    d_res_inv: List[Tuple[int, int]] = []

    consumers = getattr(candidate, "clusters", None)
    if consumers is None:
        consumers = candidate.consumer_clusters
        producer = candidate.producer_cluster
        prod_pos = tables.producer_pos[producer][candidate.name]
        d_out.append((producer, prod_pos, size))
    for cluster_index in consumers:
        last_pos = tables.last_use_pos[cluster_index][candidate.name]
        if invariant:
            d_inv_in.append((cluster_index, size))
            d_invw.append((cluster_index, last_pos, size))
        else:
            d_var_in.append((cluster_index, size))
            d_rel.append((cluster_index, last_pos, size))

    first, last = candidate.span
    for cluster_index in range(first, last + 1):
        if tables.fb_set[cluster_index] != fb_set:
            continue
        if invariant:
            d_res_inv.append((cluster_index, size))
        else:
            d_res_var.append((cluster_index, size))

    return KeepDelta(
        fb_set=fb_set,
        d_out=tuple(d_out),
        d_rel=tuple(d_rel),
        d_invw=tuple(d_invw),
        d_var_in=tuple(d_var_in),
        d_inv_in=tuple(d_inv_in),
        d_res_var=tuple(d_res_var),
        d_res_inv=tuple(d_res_inv),
    )


@dataclass
class BatchTables:
    """Per-case tables stacked and padded to one batch shape.

    Row *i* holds case *i*'s coefficients in the leading
    ``(n_clusters, n_kernels)`` corner; ``cmask``/``kmask`` mark the
    real slots.  ``fbs`` and ``cap`` carry each case's frame-buffer-set
    capacity and RF search cap, so one batch can mix architectures
    (the FB-size sweep driver does exactly that).
    """

    out: np.ndarray          # (N, C, K) int64
    rel: np.ndarray          # (N, C, K) int64
    invw: np.ndarray         # (N, C, K) int64
    var_in: np.ndarray       # (N, C) int64
    inv_in: np.ndarray       # (N, C) int64
    res_var: np.ndarray      # (N, C) int64
    res_inv: np.ndarray      # (N, C) int64
    fb_set: np.ndarray       # (N, C) int64 (padding rows: -1)
    kmask: np.ndarray        # (N, C, K) bool
    cmask: np.ndarray        # (N, C) bool
    fbs: np.ndarray          # (N,) int64
    cap: np.ndarray          # (N,) int64
    cases: List[CaseTables] = field(default_factory=list)

    @classmethod
    def stack(
        cls,
        rows: List[Tuple[CaseTables, int, int]],
    ) -> "BatchTables":
        """Stack ``(tables, fb_set_words, rf_cap)`` rows into one batch."""
        n = len(rows)
        max_c = max(case.n_clusters for case, _, _ in rows)
        max_k = max(case.max_kernels for case, _, _ in rows)
        shape3 = (n, max_c, max_k)
        shape2 = (n, max_c)
        batch = cls(
            out=np.zeros(shape3, dtype=np.int64),
            rel=np.zeros(shape3, dtype=np.int64),
            invw=np.zeros(shape3, dtype=np.int64),
            var_in=np.zeros(shape2, dtype=np.int64),
            inv_in=np.zeros(shape2, dtype=np.int64),
            res_var=np.zeros(shape2, dtype=np.int64),
            res_inv=np.zeros(shape2, dtype=np.int64),
            fb_set=np.full(shape2, -1, dtype=np.int64),
            kmask=np.zeros(shape3, dtype=bool),
            cmask=np.zeros(shape2, dtype=bool),
            fbs=np.zeros(n, dtype=np.int64),
            cap=np.zeros(n, dtype=np.int64),
            cases=[case for case, _, _ in rows],
        )
        for i, (case, fbs, cap) in enumerate(rows):
            c, k = case.n_clusters, case.max_kernels
            batch.out[i, :c, :k] = case.out
            batch.rel[i, :c, :k] = case.rel
            batch.invw[i, :c, :k] = case.invw
            batch.var_in[i, :c] = case.var_in
            batch.inv_in[i, :c] = case.inv_in
            batch.fb_set[i, :c] = case.fb_set
            batch.kmask[i, :c, :k] = case.kmask
            batch.cmask[i, :c] = True
            batch.fbs[i] = fbs
            batch.cap[i] = cap
        return batch
