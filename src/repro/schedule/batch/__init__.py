"""Structure-of-arrays batch compile engine.

One :class:`BatchCompiler` call schedules *many* cases at once: the
per-cluster/per-kernel occupancy coefficients of every case are laid
out as padded NumPy integer tables (:mod:`~repro.schedule.batch.tables`),
the common-RF search runs as one lockstep bisection over the whole
batch, TF ranking is a single ``lexsort`` over all candidates, and the
paper's greedy keep acceptance advances rank-by-rank across all cases
simultaneously (:mod:`~repro.schedule.batch.engine`).  Accepted plans
are finalized through the same plan-derivation code as the per-case
schedulers (:func:`repro.schedule.base.derive_cluster_plans`), so
``engine='batch'`` schedules are byte-identical to the reference —
the same oracle pattern as ``occupancy_engine='naive'`` and the
vectorized simulator.
"""

from repro.schedule.batch.compiler import (
    BatchCompiler,
    CompileRequest,
    CompileResult,
    batch_supported,
    compile_many,
)

__all__ = [
    "BatchCompiler",
    "CompileRequest",
    "CompileResult",
    "batch_supported",
    "compile_many",
]
