"""Reuse-factor (loop fission depth) computation.

Section 3 of the paper: "The number of consecutive executions of one
kernel RF (Context Reuse Factor) is limited by the internal memory
size. ... In this case their contexts are only loaded n/RF times, so
reducing context reloading and minimizing execution time."

Section 4: the Complete Data Scheduler "achieves the highest common RF
value, to all clusters, allowed by the internal memory size".

:func:`max_common_rf` returns the largest ``RF`` such that the peak
occupancy ``DS(C_c, RF)`` of **every** cluster fits in one frame-buffer
set, capped at the application's total iteration count.  Occupancy is
monotonically non-decreasing in ``RF`` (each extra concurrent iteration
adds instances), so a galloping + binary search is used.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.dataflow import DataflowInfo
from repro.core.metrics import KeepDecision, cluster_data_size

__all__ = ["fits", "max_common_rf"]

OccupancyFn = Callable[[DataflowInfo, int, int, Sequence[KeepDecision]], int]


def fits(
    dataflow: DataflowInfo,
    rf: int,
    fb_set_words: int,
    keeps: Sequence[KeepDecision] = (),
    occupancy_fn: OccupancyFn = cluster_data_size,
) -> bool:
    """True if every cluster's ``DS(C_c, rf, keeps)`` fits one FB set.

    ``occupancy_fn`` defaults to the closed-form
    :func:`~repro.core.metrics.cluster_data_size`; the naive-mode
    schedulers pass :func:`~repro.core.metrics.cluster_data_size_naive`
    to keep a fully independent reference path.
    """
    return all(
        occupancy_fn(dataflow, cluster.index, rf, keeps) <= fb_set_words
        for cluster in dataflow.clustering
    )


def max_common_rf(
    dataflow: DataflowInfo,
    fb_set_words: int,
    keeps: Sequence[KeepDecision] = (),
    max_rf: int = 0,
    occupancy_fn: OccupancyFn = cluster_data_size,
    probe: Optional[Callable[[int, bool], None]] = None,
) -> int:
    """Highest common reuse factor fitting every cluster in ``fb_set_words``.

    Args:
        dataflow: dataflow analysis of the clustered application.
        fb_set_words: capacity of one frame-buffer set, in words.
        keeps: retention decisions already in effect (they consume space
            and hence can lower the achievable ``RF``).
        max_rf: optional cap; defaults to the application's
            ``total_iterations`` (fissioning deeper than the iteration
            count is pointless).
        probe: optional observer called as ``probe(rf, fits)`` after
            every feasibility check (the decision trace's ``rf.probe``
            events); never changes the search.

    Returns:
        The largest feasible ``RF >= 1``, or ``0`` if even ``RF = 1``
        does not fit (the schedule is infeasible at this capacity).
    """

    def check(rf: int) -> bool:
        ok = fits(dataflow, rf, fb_set_words, keeps, occupancy_fn)
        if probe is not None:
            probe(rf, ok)
        return ok

    cap = max_rf if max_rf > 0 else dataflow.application.total_iterations
    if cap < 1 or not check(1):
        return 0
    # Gallop to an infeasible upper bound.
    low = 1
    high = 1
    while high < cap and check(min(high * 2, cap)):
        high = min(high * 2, cap)
        low = high
    if high >= cap:
        return cap
    # The loop exited on a failed check of min(high * 2, cap), so that
    # value is already known infeasible — re-probing it would waste an
    # occupancy sweep and emit a duplicate rf.probe trace event.
    high = min(high * 2, cap)
    # Invariant: fits(low), not fits(high).
    while high - low > 1:
        mid = (low + high) // 2
        if check(mid):
            low = mid
        else:
            high = mid
    return low

