"""Schedule data structures: the output contract of every scheduler.

A :class:`Schedule` says, for each cluster, which objects are loaded
from external memory, which results are stored back, which inputs are
satisfied from the frame buffer (kept items), how deep the loop fission
is (``RF``), and how often contexts are reloaded.  The code generator
lowers a schedule to an op-level program; :class:`TransferSummary`
derives the traffic numbers reported in the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import DataflowInfo
from repro.core.metrics import KeepDecision
from repro.errors import ReproError
from repro.units import ceil_div, format_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.events import DecisionTrace

__all__ = ["ClusterPlan", "Schedule", "TransferSummary"]


@dataclass(frozen=True)
class ClusterPlan:
    """The per-cluster part of a schedule.

    All object lists name **one iteration instance**; a visit moves
    ``RF`` instances of each listed object (except context loads, which
    are per visit).

    Attributes:
        cluster_index: which cluster this plan is for.
        fb_set: the frame-buffer set the cluster executes from.
        loads: objects loaded from external memory before the cluster
            computes (external data plus imported, non-kept results,
            plus kept shared data for which this is the first consuming
            cluster).
        kept_inputs: inputs satisfied from the frame buffer — no load.
        stores: results stored to external memory after the cluster
            computes (final outputs plus non-kept shared results).
        retained_outputs: results produced here and left in the frame
            buffer for later clusters (kept shared results).
        peak_occupancy: ``DS(C_c)`` under this plan, in words.
    """

    cluster_index: int
    fb_set: int
    loads: Tuple[str, ...]
    kept_inputs: Tuple[str, ...]
    stores: Tuple[str, ...]
    retained_outputs: Tuple[str, ...]
    peak_occupancy: int

    def load_words(self, dataflow: DataflowInfo, iterations: int = 1) -> int:
        """Words loaded for one visit spanning *iterations* iterations
        (iteration-invariant objects are loaded once per visit)."""
        return sum(
            dataflow[name].words_for(iterations) for name in self.loads
        )

    def store_words(self, dataflow: DataflowInfo, iterations: int = 1) -> int:
        """Words stored for one visit spanning *iterations* iterations."""
        return sum(
            dataflow[name].words_for(iterations) for name in self.stores
        )


@dataclass(frozen=True)
class Schedule:
    """A complete data schedule for one application on one architecture.

    Attributes:
        scheduler: human-readable scheduler name (``"basic"``, ``"ds"``,
            ``"cds"``).
        application: the scheduled application.
        clustering: the cluster partition used.
        dataflow: the dataflow analysis the plan was derived from.
        rf: reuse (loop fission) factor common to all clusters.
        keeps: accepted inter-cluster retention decisions.
        cluster_plans: one :class:`ClusterPlan` per cluster, in order.
        contexts_per_iteration: True if kernel contexts are reloaded for
            every iteration (Basic Scheduler); False if once per round
            of ``RF`` iterations (loop fission applied).
        fb_set_words: capacity of one frame-buffer set the schedule was
            validated against.
        context_block_words: capacity of one context-memory block the
            schedule was validated against (0 when unknown).
        overlap_transfers: True when the schedule exploits the dual-set
            frame buffer to overlap a visit's transfers with the
            previous visit's computation (the Data and Complete Data
            Schedulers).  The Basic Scheduler's tentative per-kernel
            data schedule does not prefetch across visits, so its
            transfers serialise with computation — which is why the
            paper's DS column shows gains even at ``RF = 1`` for some
            kernel schedules and exactly 0% for single-kernel clusters.
        decisions: the scheduler's decision trace
            (:class:`~repro.obs.events.DecisionTrace`) when the
            schedule was built with
            ``ScheduleOptions(decision_trace=True)``; ``None``
            otherwise.  Excluded from equality/repr so traced and
            untraced schedules of one problem compare equal.
    """

    scheduler: str
    application: Application
    clustering: Clustering
    dataflow: DataflowInfo
    rf: int
    keeps: Tuple[KeepDecision, ...]
    cluster_plans: Tuple[ClusterPlan, ...]
    contexts_per_iteration: bool
    fb_set_words: int
    context_block_words: int = 0
    overlap_transfers: bool = True
    decisions: Optional["DecisionTrace"] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.rf < 1:
            raise ReproError(f"schedule rf must be >= 1, got {self.rf}")
        if len(self.cluster_plans) != len(self.clustering):
            raise ReproError(
                f"{len(self.cluster_plans)} cluster plans for "
                f"{len(self.clustering)} clusters"
            )

    # -- derived quantities ------------------------------------------------

    @property
    def rounds(self) -> int:
        """Number of rounds: ``ceil(total_iterations / RF)``."""
        return ceil_div(self.application.total_iterations, self.rf)

    def iterations_in_round(self, round_index: int) -> int:
        """Iterations processed in a round (the last may be partial)."""
        total = self.application.total_iterations
        if round_index < 0 or round_index >= self.rounds:
            raise IndexError(f"round {round_index} out of range")
        if round_index < self.rounds - 1:
            return self.rf
        return total - self.rf * (self.rounds - 1)

    def plan_for(self, cluster_index: int) -> ClusterPlan:
        """The plan of one cluster."""
        return self.cluster_plans[cluster_index]

    def keep_names(self) -> Tuple[str, ...]:
        """Names of all kept objects."""
        return tuple(keep.name for keep in self.keeps)

    def without_decisions(self) -> "Schedule":
        """A copy with the decision trace dropped (``self`` when there
        is none).

        The trace is process-local observability data excluded from
        equality (``compare=False``); callers shipping schedules across
        pickling boundaries — worker pools, the persistent cache — use
        this to avoid serializing megabytes that the receiving side
        never reads.
        """
        if self.decisions is None:
            return self
        return replace(self, decisions=None)

    def summary(self) -> "TransferSummary":
        """Aggregate traffic/feasibility numbers for reporting."""
        return TransferSummary.from_schedule(self)

    def context_words_per_visit(self, cluster_index: int) -> int:
        """Context words loaded ahead of one visit of a cluster."""
        cluster = self.clustering[cluster_index]
        return self.clustering.context_words_of(cluster)

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"schedule[{self.scheduler}] of {self.application.name!r}: "
            f"RF={self.rf}, rounds={self.rounds}, "
            f"FBS={format_size(self.fb_set_words)}"
        ]
        if self.keeps:
            kept = ", ".join(
                f"{keep.label}({keep.name}, {format_size(keep.size)})"
                for keep in self.keeps
            )
            lines.append(f"  keeps: {kept}")
        for plan in self.cluster_plans:
            cluster = self.clustering[plan.cluster_index]
            lines.append(
                f"  {cluster.name} set{plan.fb_set} "
                f"DS={format_size(plan.peak_occupancy)} "
                f"loads={list(plan.loads)} kept={list(plan.kept_inputs)} "
                f"stores={list(plan.stores)} "
                f"retains={list(plan.retained_outputs)}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class TransferSummary:
    """Traffic accounting for a schedule (the paper's Table 1 inputs).

    Totals cover the whole application run; the ``*_per_iteration``
    properties divide by the iteration count so schedules with
    different ``RF`` can be compared.
    """

    scheduler: str
    rf: int
    rounds: int
    total_iterations: int
    total_data_loaded_words: int
    total_data_stored_words: int
    total_context_words: int
    max_peak_occupancy: int

    @property
    def total_data_words(self) -> int:
        """All data traffic, loads plus stores."""
        return self.total_data_loaded_words + self.total_data_stored_words

    @property
    def data_words_per_iteration(self) -> float:
        """Data traffic per application iteration."""
        return self.total_data_words / self.total_iterations

    @property
    def context_words_per_iteration(self) -> float:
        """Context traffic per application iteration."""
        return self.total_context_words / self.total_iterations

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "TransferSummary":
        dataflow = schedule.dataflow
        loaded = 0
        stored = 0
        for round_index in range(schedule.rounds):
            iterations = schedule.iterations_in_round(round_index)
            for plan in schedule.cluster_plans:
                loaded += plan.load_words(dataflow, iterations)
                stored += plan.store_words(dataflow, iterations)
        context_per_round = sum(
            schedule.context_words_per_visit(plan.cluster_index)
            for plan in schedule.cluster_plans
        )
        total_iterations = schedule.application.total_iterations
        if schedule.contexts_per_iteration:
            total_context = context_per_round * total_iterations
        else:
            total_context = context_per_round * schedule.rounds
        return cls(
            scheduler=schedule.scheduler,
            rf=schedule.rf,
            rounds=schedule.rounds,
            total_iterations=total_iterations,
            total_data_loaded_words=loaded,
            total_data_stored_words=stored,
            total_context_words=total_context,
            max_peak_occupancy=max(
                plan.peak_occupancy for plan in schedule.cluster_plans
            ),
        )

    def data_transfers_avoided_per_iteration(
        self, baseline: "TransferSummary"
    ) -> float:
        """Words of data traffic avoided per iteration relative to a
        baseline summary (the paper's ``DT`` column)."""
        return (
            baseline.data_words_per_iteration - self.data_words_per_iteration
        )
