"""The Basic Scheduler — baseline [3].

Kernel scheduling with a tentative data schedule and no data-level
optimisation:

* no replacement: every input and every result of a cluster is
  simultaneously resident (feasibility is checked against the full
  :func:`~repro.core.metrics.cluster_footprint`);
* no loop fission: ``RF = 1``, so kernel contexts are reloaded for every
  one of the application's ``n`` iterations;
* no inter-cluster retention: data shared among clusters are reloaded by
  every consumer, results consumed later are stored and reloaded;
* no transfer/compute overlap: the Basic Scheduler's data schedule is
  only tentative (per kernel, on demand), so a visit's loads and the
  previous visit's stores serialise with computation instead of hiding
  behind it.  This is what makes the paper's DS column non-zero even
  for ``RF = 1`` schedules (ATR-SLD: 15%) and exactly 0% when clusters
  hold a single kernel (ATR-SLD*: nothing to prefetch behind).

This is the reference the paper's Figure 6 / Table 1 improvements are
measured against.
"""

from __future__ import annotations

from repro.core.dataflow import DataflowInfo
from repro.schedule.base import DataSchedulerBase
from repro.schedule.plan import Schedule

__all__ = ["BasicScheduler"]


class BasicScheduler(DataSchedulerBase):
    """Baseline scheduler [3]: no reuse of any kind."""

    name = "basic"

    def _schedule(self, dataflow: DataflowInfo) -> Schedule:
        return self._build_schedule(
            dataflow,
            rf=1,
            keeps=(),
            contexts_per_iteration=True,
            basic_occupancy=True,
            overlap_transfers=False,
        )
