"""Timeline export: SimulationReport -> Chrome ``trace_event`` JSON.

:func:`chrome_trace` turns a traced simulation run (per-visit compute
windows plus the per-transfer DMA trace) into the Chrome/Perfetto
``trace_event`` format, so ``repro trace --format chrome`` output opens
directly in ``chrome://tracing`` or https://ui.perfetto.dev.

Mapping (documented in ``docs/observability.md``):

* one process (``pid`` 0) named after the run;
* thread 0 — "RC array": a complete event (``ph: "X"``) per visit,
  spanning ``compute_start .. compute_end``;
* thread 1 — "DMA channel": a complete event per transfer, category
  ``data_load`` / ``data_store`` / ``context_load``;
* thread 2 — "scheduler decisions" (only when a decision trace is
  supplied): one instant event (``ph: "i"``) per decision, ordered by
  sequence number.

One machine cycle is exported as one microsecond (``ts``/``dur`` are
µs in the trace_event spec); the scale is recorded in ``otherData``.

:func:`validate_chrome_trace` checks a payload against this schema —
the CLI validates every export before writing it, and the tests use it
as the conformance oracle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.report import SimulationReport

__all__ = [
    "chrome_trace",
    "validate_chrome_trace",
    "report_to_dict",
    "render_text_timeline",
]

#: pid/tid layout of the exported trace.
TRACE_PID = 0
TID_COMPUTE = 0
TID_DMA = 1
TID_DECISIONS = 2

_PHASES_WITH_DURATION = ("X",)


def _meta(name: str, tid: Optional[int], value: str) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "ph": "M",
        "pid": TRACE_PID,
        "name": name,
        "args": {"name": value},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def chrome_trace(
    report: SimulationReport,
    *,
    decisions=None,
) -> Dict[str, Any]:
    """Export *report* (and optionally a decision trace) as a Chrome
    ``trace_event`` payload (JSON-ready dict).

    Args:
        report: a simulation report.  The DMA thread is populated from
            ``report.transfers`` — run the simulator with ``trace=True``
            for a complete timeline (with tracing off the DMA thread is
            empty, which the payload flags in ``otherData``).
        decisions: optional
            :class:`~repro.obs.events.DecisionTrace`; rendered as
            instant events on their own thread.
    """
    events: List[Dict[str, Any]] = [
        _meta(
            "process_name", None,
            f"repro {report.scheduler} on {report.application}",
        ),
        _meta("thread_name", TID_COMPUTE, "RC array"),
        _meta("thread_name", TID_DMA, "DMA channel"),
    ]
    for timing in report.visits:
        events.append({
            "ph": "X",
            "pid": TRACE_PID,
            "tid": TID_COMPUTE,
            "name": f"visit {timing.index} Cl{timing.cluster_index + 1}",
            "cat": "compute",
            "ts": timing.compute_start,
            "dur": timing.compute_cycles,
            "args": {
                "round": timing.round_index,
                "cluster": timing.cluster_index,
                "fb_set": timing.fb_set,
                "prep_finish": timing.prep_finish,
            },
        })
    for transfer in report.transfers:
        events.append({
            "ph": "X",
            "pid": TRACE_PID,
            "tid": TID_DMA,
            "name": transfer.label or transfer.kind.value,
            "cat": transfer.kind.value,
            "ts": transfer.start,
            "dur": transfer.cycles,
            "args": {"words": transfer.words},
        })
    if decisions is not None and len(decisions):
        events.append(_meta("thread_name", TID_DECISIONS,
                            "scheduler decisions"))
        for decision in decisions:
            events.append({
                "ph": "i",
                "pid": TRACE_PID,
                "tid": TID_DECISIONS,
                "name": f"{decision.kind} {decision.subject}".strip(),
                "cat": decision.kind.split(".", 1)[0],
                "ts": decision.seq,
                "s": "t",
                "args": dict(decision.detail),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scheduler": report.scheduler,
            "application": report.application,
            "total_cycles": report.total_cycles,
            "cycles_per_us": 1,
            "dma_trace_recorded": bool(report.transfers),
        },
    }


def validate_chrome_trace(payload: Any) -> None:
    """Raise ``ValueError`` unless *payload* conforms to the exporter's
    documented trace_event schema."""

    def fail(message: str) -> None:
        raise ValueError(f"invalid chrome trace: {message}")

    if not isinstance(payload, dict):
        fail("payload is not an object")
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            fail(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in ("M", "X", "i"):
            fail(f"{where}: unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            fail(f"{where}: pid must be an integer")
        if phase == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                fail(f"{where}: metadata event without args.name")
            continue
        if not isinstance(event.get("tid"), int):
            fail(f"{where}: tid must be an integer")
        timestamp = event.get("ts")
        if not isinstance(timestamp, int) or timestamp < 0:
            fail(f"{where}: ts must be a non-negative integer")
        if phase in _PHASES_WITH_DURATION:
            duration = event.get("dur")
            if not isinstance(duration, int) or duration < 0:
                fail(f"{where}: dur must be a non-negative integer")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            fail(f"{where}: instant event scope must be t/p/g")


def report_to_dict(report: SimulationReport) -> Dict[str, Any]:
    """JSON-ready dump of a report (``repro trace --format json``)."""
    return {
        "scheduler": report.scheduler,
        "application": report.application,
        "total_cycles": report.total_cycles,
        "compute_cycles": report.compute_cycles,
        "rc_stall_cycles": report.rc_stall_cycles,
        "dma_busy_cycles": report.dma_busy_cycles,
        "data_load_words": report.data_load_words,
        "data_store_words": report.data_store_words,
        "context_words": report.context_words,
        "data_load_count": report.data_load_count,
        "data_store_count": report.data_store_count,
        "context_load_count": report.context_load_count,
        "functional_verified": report.functional_verified,
        "visits": [
            {
                "index": timing.index,
                "round": timing.round_index,
                "cluster": timing.cluster_index,
                "fb_set": timing.fb_set,
                "prep_finish": timing.prep_finish,
                "compute_start": timing.compute_start,
                "compute_end": timing.compute_end,
            }
            for timing in report.visits
        ],
        "transfers": [
            {
                "kind": transfer.kind.value,
                "label": transfer.label,
                "words": transfer.words,
                "start": transfer.start,
                "finish": transfer.finish,
            }
            for transfer in report.transfers
        ],
    }


def render_text_timeline(report: SimulationReport, *, width: int = 72) -> str:
    """Gantt chart plus a per-transfer table (``--format text``)."""
    lines = [report.gantt(width=width)]
    if report.transfers:
        lines.append("")
        lines.append(f"{'kind':<14} {'start':>8} {'finish':>8} "
                     f"{'words':>7}  label")
        for transfer in report.transfers:
            lines.append(
                f"{transfer.kind.value:<14} {transfer.start:>8} "
                f"{transfer.finish:>8} {transfer.words:>7}  {transfer.label}"
            )
    return "\n".join(lines)
