"""Observability: decision traces, timeline export, metrics.

The schedulers are compile-time optimisers — their value is only
legible through what they *decided* (TF ranking, keep accept/reject,
RF search) and what the simulated machine then *did* (DMA timeline,
stalls).  This package makes both first-class:

* :mod:`repro.obs.events` — a structured decision trace recorded by the
  schedulers and the frame-buffer allocator, attached to
  :class:`~repro.schedule.plan.Schedule` and queryable
  (``schedule.decisions.why("obj_name")``);
* :mod:`repro.obs.trace` — exports a
  :class:`~repro.sim.report.SimulationReport` as Chrome ``trace_event``
  JSON (``repro trace --format chrome``) so runs open in Perfetto or
  ``chrome://tracing``;
* :mod:`repro.obs.metrics` — a lightweight counters/timers registry
  with labelled scopes and a ``time_stage()`` context manager, wired
  through the pipeline stages and the parallel analysis drivers.

Every hook is default-off or O(1): with observability disabled,
schedules, allocations, and simulation reports are byte-identical to
the uninstrumented pipeline.
"""

from repro.obs.events import Decision, DecisionTrace
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    metrics_active,
    recording_registry,
    request_scope,
    set_metrics_active,
    time_stage,
)
from repro.obs.trace import (
    chrome_trace,
    render_text_timeline,
    report_to_dict,
    validate_chrome_trace,
)

__all__ = [
    "Decision",
    "DecisionTrace",
    "MetricsRegistry",
    "get_registry",
    "metrics_active",
    "recording_registry",
    "request_scope",
    "set_metrics_active",
    "time_stage",
    "chrome_trace",
    "render_text_timeline",
    "report_to_dict",
    "validate_chrome_trace",
]
