"""Lightweight metrics registry: labelled counters and stage timers.

The pipeline stages (:func:`repro.analysis.compare.run_scheduler`), the
parallel analysis drivers (:func:`repro.analysis.parallel.parallel_map`,
with per-worker rollup), the CLI entry points (``repro bench``,
``repro run --profile``), and the scheduler service
(:mod:`repro.service`) report into :class:`MetricsRegistry` instances.

Collection is **off by default**: the module-level :func:`time_stage`
and :func:`inc` are O(1) no-ops until :func:`set_metrics_active` turns
the process-global registry on, so instrumented hot paths pay one flag
check.  Worker processes each collect into their own registry;
snapshots travel back through :func:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.merge` (plain dicts, picklable).

**Request scoping.**  One process-global registry is wrong for a
long-lived concurrent server: two requests whose stages interleave in
one process would attribute time to each other.  :func:`request_scope`
installs a per-request registry in a :class:`contextvars.ContextVar`
— the scope follows the task/thread context, so concurrent requests
record into disjoint registries — and merges the request's samples
into the global registry on exit (when global collection is on).
While a scope is active, :func:`time_stage`/:func:`inc` record into it
regardless of the global flag; with no scope and collection off they
remain allocation-free no-ops.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, Optional
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "metrics_active",
    "recording_registry",
    "request_scope",
    "set_metrics_active",
    "time_stage",
    "inc",
]


def _key(name: str, scope: Optional[str]) -> str:
    return f"{scope}/{name}" if scope else name


class MetricsRegistry:
    """Counters and timers keyed by ``scope/name`` labels.

    Thread-safe: a registry may be the merge target of several worker
    threads (the service's global rollup), so every mutating and
    reading method holds an internal lock.  The lock is uncontended in
    the historical single-threaded drivers and costs nothing while
    collection is off (the module-level fast path never reaches it).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        self._lock = threading.RLock()

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: int = 1, *,
            scope: Optional[str] = None) -> None:
        """Add *value* to a counter."""
        key = _key(name, scope)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def observe(self, name: str, seconds: float, *,
                scope: Optional[str] = None) -> None:
        """Record one timed sample of a stage."""
        key = _key(name, scope)
        with self._lock:
            timer = self._timers.get(key)
            if timer is None:
                timer = {"total_s": 0.0, "count": 0, "max_s": 0.0}
                self._timers[key] = timer
            timer["total_s"] += seconds
            timer["count"] += 1
            if seconds > timer["max_s"]:
                timer["max_s"] = seconds

    @contextmanager
    def time_stage(self, name: str, *,
                   scope: Optional[str] = None) -> Iterator[None]:
        """Time a ``with`` block as one sample of stage *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, scope=scope)

    def counter(self, name: str, *, scope: Optional[str] = None) -> int:
        """Current value of one counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(_key(name, scope), 0)

    # -- aggregation ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    key: dict(value) for key, value in self._timers.items()
                },
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used for the per-worker rollup: each
        :func:`~repro.analysis.parallel.parallel_map` worker returns its
        snapshot and the driver merges them into the parent registry.
        The service merges each request's scoped snapshot the same way.
        """
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, sample in snapshot.get("timers", {}).items():
                timer = self._timers.get(key)
                if timer is None:
                    self._timers[key] = dict(sample)
                    continue
                timer["total_s"] += sample["total_s"]
                timer["count"] += sample["count"]
                if sample["max_s"] > timer["max_s"]:
                    timer["max_s"] = sample["max_s"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    # -- reporting ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {key: dict(value) for key, value in self._timers.items()}

    def render(self) -> str:
        """Human-readable rollup (``repro run --profile`` output)."""
        counters = self.counters
        timers = self.timers
        if not counters and not timers:
            return "(no metrics recorded)"
        lines = []
        if timers:
            lines.append("timers (total / calls / max):")
            for key in sorted(timers):
                timer = timers[key]
                lines.append(
                    f"  {key:<32} {timer['total_s'] * 1000.0:10.3f} ms"
                    f" / {timer['count']:>5}"
                    f" / {timer['max_s'] * 1000.0:8.3f} ms"
                )
        if counters:
            lines.append("counters:")
            for key in sorted(counters):
                lines.append(f"  {key:<32} {counters[key]}")
        return "\n".join(lines)


# -- process-global registry ---------------------------------------------

_REGISTRY = MetricsRegistry()
_ACTIVE = False

#: Per-request registry installed by :func:`request_scope`.  A
#: ContextVar so the scope follows asyncio tasks and ``Context.run``
#: boundaries instead of leaking across interleaved requests.
_SCOPED: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_metrics_scoped", default=None
)


def get_registry() -> MetricsRegistry:
    """The process-global registry (collects only while active)."""
    return _REGISTRY


def metrics_active() -> bool:
    """True while anything is collecting (global flag or a scope)."""
    return _ACTIVE or _SCOPED.get() is not None


def recording_registry() -> Optional[MetricsRegistry]:
    """The registry samples currently land in, or ``None``.

    The active :func:`request_scope` registry when one is installed,
    else the global registry while global collection is on.  Drivers
    that merge worker snapshots (``parallel_map``) target this, so a
    scoped caller's fan-out rolls up into its own scope.
    """
    scoped = _SCOPED.get()
    if scoped is not None:
        return scoped
    return _REGISTRY if _ACTIVE else None


def set_metrics_active(active: bool) -> bool:
    """Turn global collection on or off; returns the previous state."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = bool(active)
    return previous


@contextmanager
def request_scope(
    registry: Optional[MetricsRegistry] = None,
    *,
    merge_into_global: bool = True,
) -> Iterator[MetricsRegistry]:
    """Collect this context's samples into a private registry.

    Concurrent requests in one process each install their own scope, so
    interleaved stages can no longer attribute time to the wrong
    request — the process-global-registry concurrency bug the scheduler
    service surfaced.  On exit the scope's samples are merged into the
    global registry when global collection is on (and
    *merge_into_global* is left set), keeping process-wide totals
    intact; the yielded registry holds the request's own samples either
    way.
    """
    registry = registry if registry is not None else MetricsRegistry()
    token = _SCOPED.set(registry)
    try:
        yield registry
    finally:
        _SCOPED.reset(token)
        if merge_into_global and _ACTIVE:
            _REGISTRY.merge(registry.snapshot())


class _NullTimer:
    """Reusable no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def time_stage(name: str, *, scope: Optional[str] = None):
    """Time a ``with`` block into the recording registry.

    Records into the active :func:`request_scope` registry when one is
    installed, else into the global registry while collection is on.  A
    shared no-op context manager is returned otherwise, so
    instrumentation points cost one ContextVar read, one flag check and
    no allocation.
    """
    target = _SCOPED.get()
    if target is None:
        if not _ACTIVE:
            return _NULL_TIMER
        target = _REGISTRY
    return target.time_stage(name, scope=scope)


def inc(name: str, value: int = 1, *, scope: Optional[str] = None) -> None:
    """Bump a counter (no-op while nothing is collecting)."""
    target = _SCOPED.get()
    if target is None:
        if not _ACTIVE:
            return
        target = _REGISTRY
    target.inc(name, value, scope=scope)
