"""Lightweight metrics registry: labelled counters and stage timers.

The pipeline stages (:func:`repro.analysis.compare.run_scheduler`), the
parallel analysis drivers (:func:`repro.analysis.parallel.parallel_map`,
with per-worker rollup), and the CLI entry points (``repro bench``,
``repro run --profile``) report into one process-global
:class:`MetricsRegistry`.

Collection is **off by default**: the module-level :func:`time_stage`
and :func:`inc` are O(1) no-ops until :func:`set_metrics_active` turns
the registry on, so instrumented hot paths pay one flag check.  Worker
processes each collect into their own registry; snapshots travel back
through :func:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge`
(plain dicts, picklable).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, Optional
from contextlib import contextmanager

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "metrics_active",
    "set_metrics_active",
    "time_stage",
    "inc",
]


def _key(name: str, scope: Optional[str]) -> str:
    return f"{scope}/{name}" if scope else name


class MetricsRegistry:
    """Counters and timers keyed by ``scope/name`` labels."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # -- recording ------------------------------------------------------

    def inc(self, name: str, value: int = 1, *,
            scope: Optional[str] = None) -> None:
        """Add *value* to a counter."""
        key = _key(name, scope)
        self._counters[key] = self._counters.get(key, 0) + value

    def observe(self, name: str, seconds: float, *,
                scope: Optional[str] = None) -> None:
        """Record one timed sample of a stage."""
        key = _key(name, scope)
        timer = self._timers.get(key)
        if timer is None:
            timer = {"total_s": 0.0, "count": 0, "max_s": 0.0}
            self._timers[key] = timer
        timer["total_s"] += seconds
        timer["count"] += 1
        if seconds > timer["max_s"]:
            timer["max_s"] = seconds

    @contextmanager
    def time_stage(self, name: str, *,
                   scope: Optional[str] = None) -> Iterator[None]:
        """Time a ``with`` block as one sample of stage *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, scope=scope)

    def counter(self, name: str, *, scope: Optional[str] = None) -> int:
        """Current value of one counter (0 if never bumped)."""
        return self._counters.get(_key(name, scope), 0)

    # -- aggregation ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable copy of everything recorded so far."""
        return {
            "counters": dict(self._counters),
            "timers": {key: dict(value) for key, value in self._timers.items()},
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used for the per-worker rollup: each
        :func:`~repro.analysis.parallel.parallel_map` worker returns its
        snapshot and the driver merges them into the parent registry.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, sample in snapshot.get("timers", {}).items():
            timer = self._timers.get(key)
            if timer is None:
                self._timers[key] = dict(sample)
                continue
            timer["total_s"] += sample["total_s"]
            timer["count"] += sample["count"]
            if sample["max_s"] > timer["max_s"]:
                timer["max_s"] = sample["max_s"]

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()

    # -- reporting ------------------------------------------------------

    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        return {key: dict(value) for key, value in self._timers.items()}

    def render(self) -> str:
        """Human-readable rollup (``repro run --profile`` output)."""
        if not self._counters and not self._timers:
            return "(no metrics recorded)"
        lines = []
        if self._timers:
            lines.append("timers (total / calls / max):")
            for key in sorted(self._timers):
                timer = self._timers[key]
                lines.append(
                    f"  {key:<32} {timer['total_s'] * 1000.0:10.3f} ms"
                    f" / {timer['count']:>5}"
                    f" / {timer['max_s'] * 1000.0:8.3f} ms"
                )
        if self._counters:
            lines.append("counters:")
            for key in sorted(self._counters):
                lines.append(f"  {key:<32} {self._counters[key]}")
        return "\n".join(lines)


# -- process-global registry ---------------------------------------------

_REGISTRY = MetricsRegistry()
_ACTIVE = False


def get_registry() -> MetricsRegistry:
    """The process-global registry (collects only while active)."""
    return _REGISTRY


def metrics_active() -> bool:
    """True while the global registry is collecting."""
    return _ACTIVE


def set_metrics_active(active: bool) -> bool:
    """Turn global collection on or off; returns the previous state."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = bool(active)
    return previous


class _NullTimer:
    """Reusable no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


def time_stage(name: str, *, scope: Optional[str] = None):
    """Time a ``with`` block into the global registry.

    A shared no-op context manager is returned while collection is off,
    so instrumentation points cost one flag check and no allocation.
    """
    if not _ACTIVE:
        return _NULL_TIMER
    return _REGISTRY.time_stage(name, scope=scope)


def inc(name: str, value: int = 1, *, scope: Optional[str] = None) -> None:
    """Bump a global counter (no-op while collection is off)."""
    if _ACTIVE:
        _REGISTRY.inc(name, value, scope=scope)
