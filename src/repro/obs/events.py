"""Structured decision traces for the schedulers and the allocator.

A :class:`DecisionTrace` is an append-only log of :class:`Decision`
records.  Producers (the data schedulers, the occupancy engine, the
frame-buffer allocator) record *why* they did what they did — every
TF-ranked retention candidate with its accept/reject verdict and the
occupancy numbers behind it, every RF search probe, every placement and
fallback of the allocator.  Consumers query it:

    >>> schedule.decisions.why("R1")          # doctest: +SKIP
    [tf.rank R1 ..., keep.accept R1 ...]
    >>> schedule.decisions.explain("R1")      # doctest: +SKIP
    'keep.accept R1: fits every cluster of set0 ...'

Recording is opt-in (``ScheduleOptions(decision_trace=True)``,
``FrameBufferAllocator(decisions=...)``); with no trace attached the
producers pay a single ``is None`` check per decision point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["Decision", "DecisionTrace", "DECISION_KINDS"]

#: Every decision kind a conforming producer may record.  The schema is
#: documented in ``docs/observability.md``; tests assert producers stay
#: inside it.
DECISION_KINDS = (
    # Complete Data Scheduler keep selection
    "tf.rank",        # candidate ranked by time factor
    "keep.accept",    # candidate kept (DS(C_c) <= FBS everywhere)
    "keep.reject",    # candidate dropped, with the violating clusters
    # reuse-factor search (all schedulers that fission)
    "rf.probe",       # one fits(rf) feasibility probe
    "rf.result",      # the chosen common RF
    "rf.joint",       # one (rf, estimated cycles) point of rf_policy="joint"
    # frame-buffer allocator (paper Figure 4)
    "alloc.place",    # an instance placed (extents, direction, regularity)
    "alloc.fallback", # iteration-adjacent placement failed, fell back
    "alloc.split",    # no single free block fitted; split placement
    "alloc.free",     # an instance released back to the free list
)


@dataclass(frozen=True)
class Decision:
    """One recorded decision.

    Attributes:
        seq: position in the trace (0-based, gap-free).
        kind: one of :data:`DECISION_KINDS`.
        subject: the object/cluster the decision is about (``""`` for
            global decisions such as RF probes).
        detail: the numbers behind the decision — occupancies, sizes,
            limits, reasons.  Plain JSON-serialisable values only.
    """

    seq: int
    kind: str
    subject: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Single-line human-readable rendering."""
        parts = [f"[{self.seq}] {self.kind}"]
        if self.subject:
            parts.append(self.subject)
        if self.detail:
            inner = ", ".join(
                f"{key}={value!r}" for key, value in self.detail.items()
            )
            parts.append(f"({inner})")
        return " ".join(parts)


class DecisionTrace:
    """Append-only decision log with name-indexed queries."""

    def __init__(self) -> None:
        self._events: List[Decision] = []
        self._by_subject: Dict[str, List[Decision]] = {}

    # -- recording ------------------------------------------------------

    def record(self, kind: str, subject: str = "", **detail: Any) -> Decision:
        """Append one decision and return it."""
        if kind not in DECISION_KINDS:
            raise ValueError(f"unknown decision kind {kind!r}")
        decision = Decision(
            seq=len(self._events), kind=kind, subject=subject, detail=detail
        )
        self._events.append(decision)
        if subject:
            self._by_subject.setdefault(subject, []).append(decision)
        return decision

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[Decision, ...]:
        return tuple(self._events)

    def of_kind(self, *kinds: str) -> List[Decision]:
        """All decisions of the given kind(s), in order."""
        return [event for event in self._events if event.kind in kinds]

    def why(self, subject: str) -> List[Decision]:
        """Every decision about one object, in order.

        The primary query: "why is (or isn't) this object kept, and
        where did it land?" — TF rank, accept/reject with occupancy
        numbers, allocator placements.
        """
        return list(self._by_subject.get(subject, ()))

    def explain(self, subject: str) -> str:
        """The :meth:`why` answer as a readable multi-line string."""
        decisions = self.why(subject)
        if not decisions:
            return f"no recorded decision mentions {subject!r}"
        return "\n".join(decision.describe() for decision in decisions)

    def accepted_keeps(self) -> List[Decision]:
        """The keep.accept decisions, in acceptance order."""
        return self.of_kind("keep.accept")

    def rejected_keeps(self) -> List[Decision]:
        """The keep.reject decisions, in consideration order."""
        return self.of_kind("keep.reject")

    def render(self, kinds: Optional[Iterable[str]] = None) -> str:
        """The whole trace (or a kind-filtered view) as text."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            event.describe()
            for event in self._events
            if wanted is None or event.kind in wanted
        ]
        return "\n".join(lines) if lines else "(empty decision trace)"

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready form of the whole trace."""
        return [
            {
                "seq": event.seq,
                "kind": event.kind,
                "subject": event.subject,
                "detail": dict(event.detail),
            }
            for event in self._events
        ]
