"""Batch driver behind ``repro analyze``.

Runs the hazard analyzer over named workloads — the bundled paper
experiments (plus the wavelet codec) and the pinned corpus reproducers
under ``tests/corpus/`` — for one or more schedulers and DMA policies,
and renders the combined result as text or JSON.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.schedule.context_scheduler import DmaPolicy

__all__ = [
    "AnalysisResult",
    "analyze_targets",
    "corpus_cases",
    "render_analysis_json",
    "render_analysis_text",
]

#: Scheduler names accepted by ``repro analyze --scheduler``.
SCHEDULER_NAMES = ("basic", "ds", "cds")


@dataclasses.dataclass
class AnalysisResult:
    """One (workload, scheduler, policy) analysis outcome.

    ``collector`` is ``None`` when the workload was skipped — the
    scheduler found it infeasible (``reason`` says why).
    """

    target: str
    scheduler: str
    policy: DmaPolicy
    collector: Optional[object] = None
    reason: str = ""

    @property
    def skipped(self) -> bool:
        return self.collector is None

    @property
    def has_errors(self) -> bool:
        return self.collector is not None and self.collector.has_errors


def _scheduler_class(name: str):
    from repro.schedule.basic import BasicScheduler
    from repro.schedule.complete import CompleteDataScheduler
    from repro.schedule.data_scheduler import DataScheduler

    return {
        "basic": BasicScheduler,
        "ds": DataScheduler,
        "cds": CompleteDataScheduler,
    }[name]


def corpus_cases(corpus_dir) -> List[Tuple[str, object]]:
    """Load every pinned reproducer under *corpus_dir* (sorted)."""
    from repro.fuzz.case import FuzzCase

    directory = Path(corpus_dir)
    cases: List[Tuple[str, object]] = []
    for path in sorted(directory.glob("*.json")):
        cases.append((path.stem, FuzzCase.load(path)))
    return cases


def _workloads(target: str, corpus_dir) -> List[Tuple[str, object, object, object]]:
    """Resolve *target* to ``(label, application, clustering, architecture)``."""
    from repro.arch.params import Architecture
    from repro.lint.runner import lint_targets, resolve_target

    if target.lower() == "corpus":
        workloads = []
        for label, case in corpus_cases(corpus_dir):
            application, clustering = case.build()
            workloads.append(
                (label, application, clustering, case.architecture())
            )
        return workloads
    if target.lower() == "all":
        targets = list(lint_targets())
    else:
        targets = [resolve_target(target)]
    workloads = []
    for entry in targets:
        application, clustering = entry.build()
        workloads.append(
            (entry.id, application, clustering, Architecture.m1(entry.fb))
        )
    return workloads


def analyze_targets(
    target: str,
    *,
    schedulers: Sequence[str] = ("cds",),
    policies: Sequence[DmaPolicy] = (DmaPolicy.CONTEXTS_FIRST,),
    corpus_dir="tests/corpus",
) -> List[AnalysisResult]:
    """Analyze *target* for every scheduler x policy combination.

    Args:
        target: an experiment id, ``"WAVELET"``, ``"all"`` (every
            bundled workload), or ``"corpus"`` (the pinned reproducers).
        schedulers: scheduler short names (subset of ``basic/ds/cds``).
        policies: DMA policies to build the happens-before graph for.
        corpus_dir: where ``"corpus"`` reproducers live.
    """
    from repro.dataflow.analyzer import analyze_program

    results: List[AnalysisResult] = []
    for label, application, clustering, architecture in _workloads(
        target, corpus_dir
    ):
        for scheduler in schedulers:
            try:
                schedule = _scheduler_class(scheduler)(
                    architecture
                ).schedule(application, clustering)
            except ReproError as exc:
                for policy in policies:
                    results.append(AnalysisResult(
                        target=label, scheduler=scheduler, policy=policy,
                        reason=f"infeasible: {exc}",
                    ))
                continue
            from repro.codegen.generator import generate_program

            try:
                program = generate_program(schedule)
            except ReproError as exc:
                for policy in policies:
                    results.append(AnalysisResult(
                        target=label, scheduler=scheduler, policy=policy,
                        reason=f"codegen failed: {exc}",
                    ))
                continue
            for policy in policies:
                collector = analyze_program(program, policy=policy)
                results.append(AnalysisResult(
                    target=label, scheduler=scheduler, policy=policy,
                    collector=collector,
                ))
    return results


def render_analysis_text(
    results: Iterable[AnalysisResult], *, verbose: bool = False
) -> str:
    """Human-readable multi-result report."""
    from repro.lint.reporters import render_text

    lines: List[str] = []
    clean = 0
    skipped = 0
    noisy = []
    for result in results:
        tag = f"{result.target} ({result.scheduler}, {result.policy.name.lower()})"
        if result.skipped:
            skipped += 1
            lines.append(f"{tag}: skipped — {result.reason}")
            continue
        collector = result.collector
        if not collector.diagnostics and not verbose:
            clean += 1
            continue
        if collector.diagnostics:
            noisy.append(tag)
        lines.append(render_text(collector, title=tag, verbose=verbose))
        lines.append("")
    summary = (
        f"{clean} clean, {len(noisy)} with findings, {skipped} skipped"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_analysis_json(results: Iterable[AnalysisResult]) -> dict:
    """Machine-readable multi-result report (the CI artifact)."""
    reports = []
    errors = 0
    hazards = 0
    for result in results:
        entry = {
            "target": result.target,
            "scheduler": result.scheduler,
            "policy": result.policy.name.lower(),
        }
        if result.skipped:
            entry["skipped"] = True
            entry["reason"] = result.reason
        else:
            payload = result.collector.to_json()
            entry.update(payload)
            entry["clean"] = not result.collector.has_errors
            errors += payload["summary"]["errors"]
            hazards += sum(
                1 for diagnostic in payload["diagnostics"]
                if diagnostic["code"].startswith("HAZ")
            )
        reports.append(entry)
    return {
        "reports": reports,
        "totals": {
            "targets": len(reports),
            "errors": errors,
            "hazard_findings": hazards,
        },
    }
