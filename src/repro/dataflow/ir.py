"""Lowering a compiled :class:`Program` into a def-use IR.

Every leaf op of every visit becomes one :class:`IRNode` carrying its
memory *effects*: which frame-buffer words (when an allocation map is
available) or context-memory words it reads and writes.  A verifier
style replay threads values through the nodes, producing one
:class:`ValueLifetime` per resident instance — its defining node, every
consuming node, the visit at whose end it leaves the set, and the
node-order position at which the allocator returns its words to the
free list.

The IR is purely *program-order*: it says what the program means, not
when the DMA channel moves the words.  The timing dimension is added
separately by :class:`repro.dataflow.hazards.HappensBefore`; the hazard
passes (:mod:`repro.dataflow.passes`) then check that the timing order
can never contradict the program order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.arch.frame_buffer import Extent
from repro.codegen.ops import VisitOps
from repro.codegen.program import Program

__all__ = [
    "CONTEXT_LOAD",
    "DATA_LOAD",
    "COMPUTE",
    "STORE",
    "Access",
    "IRNode",
    "ValueLifetime",
    "VisitNodes",
    "ProgramIR",
    "lower_program",
]

#: Node kinds, one per leaf op class.
CONTEXT_LOAD = "context_load"
DATA_LOAD = "data_load"
COMPUTE = "compute"
STORE = "store"


@dataclass(frozen=True)
class Access:
    """One read or write of a word range by a node.

    Attributes:
        space: ``"fb"`` (a frame-buffer set) or ``"cm"`` (a context
            memory block).
        index: the set index or block index within the space.
        extents: the word ranges touched.
        write: True for a write, False for a read.
        value_id: the :class:`ValueLifetime` involved (FB accesses of
            known values only; ``None`` for CM accesses and for
            accesses whose placement is unknown).
    """

    space: str
    index: int
    extents: Tuple[Extent, ...]
    write: bool
    value_id: Optional[int] = None


@dataclass(frozen=True)
class IRNode:
    """One leaf op with its memory effects.

    ``node_id`` doubles as the node's program-order position: ids are
    assigned sequentially in replay order (context loads, data loads,
    compute, stores — visit by visit).
    """

    node_id: int
    kind: str
    visit_index: int
    op: object
    accesses: Tuple[Access, ...]

    def describe(self) -> str:
        """Short human-readable label, e.g. ``"load x#3"``."""
        op = self.op
        if self.kind == CONTEXT_LOAD:
            return f"ctx {op.kernel}"
        if self.kind == DATA_LOAD:
            return f"load {op.name}#{op.iteration}"
        if self.kind == STORE:
            return f"store {op.name}#{op.iteration}"
        return f"run {op.kernel}#{op.iteration}"


@dataclass
class ValueLifetime:
    """One resident instance of one object in one FB set.

    Positions (``def_pos`` / ``release_pos``) live on a doubled node-id
    scale so an end-of-node release (``2 * node + 1``) sorts strictly
    between the node itself and its successor.  ``release_pos`` mirrors
    the allocator's free rules: stored/kept/outbound values hold their
    words until the end of the visit that drains them; plain inputs and
    intermediates return their words right after their last use.
    """

    value_id: int
    name: str
    instance: int
    fb_set: int
    words: int
    def_node: int
    def_visit: int
    def_kind: str
    extents: Tuple[Extent, ...] = ()
    uses: List[int] = field(default_factory=list)
    store_nodes: List[int] = field(default_factory=list)
    kept: bool = False
    survived_drain: bool = False
    end_visit: int = -1
    release_pos: int = -1

    @property
    def def_pos(self) -> int:
        return 2 * self.def_node

    @property
    def dead(self) -> bool:
        """Loaded (or produced) but never read by any kernel."""
        return not self.uses

    @property
    def last_use_node(self) -> Optional[int]:
        candidates = list(self.uses) + list(self.store_nodes)
        return max(candidates) if candidates else None


@dataclass(frozen=True)
class VisitNodes:
    """The node-id groups of one visit, in program order."""

    visit_index: int
    context_loads: Tuple[int, ...]
    data_loads: Tuple[int, ...]
    compute: Tuple[int, ...]
    stores: Tuple[int, ...]

    @property
    def first(self) -> int:
        for group in (self.context_loads, self.data_loads, self.compute,
                      self.stores):
            if group:
                return group[0]
        raise ValueError("empty visit")

    @property
    def last(self) -> int:
        for group in (self.stores, self.compute, self.data_loads,
                      self.context_loads):
            if group:
                return group[-1]
        raise ValueError("empty visit")


@dataclass
class ProgramIR:
    """The lowered def-use IR of one program."""

    program: Program
    nodes: List[IRNode]
    visit_nodes: List[VisitNodes]
    values: List[ValueLifetime]
    has_placement: bool
    fb_capacity: int
    cm_block_capacity: int

    def node(self, node_id: int) -> IRNode:
        return self.nodes[node_id]

    def describe(self, node_id: int) -> str:
        node = self.nodes[node_id]
        return f"{node.describe()} (visit {node.visit_index})"


def _placement_index(
    allocations: Optional[Sequence[object]],
) -> Optional[Tuple[Dict[Tuple[str, int], Dict[int, Tuple[Extent, ...]]], ...]]:
    """Per-set ``(name, instance-in-round) -> {cluster -> extents}`` tables.

    An object consumed by several clusters of the same set gets one
    record *per consuming cluster* (each visit re-loads it into whatever
    words are free then), so the cluster index is part of the key.
    """
    if not allocations:
        return None
    tables: List[Dict[Tuple[str, int], Dict[int, Tuple[Extent, ...]]]] = []
    for alloc_map in allocations:
        table: Dict[Tuple[str, int], Dict[int, Tuple[Extent, ...]]] = {}
        for record in alloc_map.records:
            table.setdefault((record.name, record.instance), {})[
                record.cluster_index
            ] = record.extents
        tables.append(table)
    return tuple(tables)


def lower_program(
    program: Program,
    allocations: Optional[Sequence[object]] = None,
) -> ProgramIR:
    """Lower *program* into a :class:`ProgramIR`.

    Args:
        program: the compiled program.
        allocations: the ``(set0, set1)`` :class:`AllocationMap` pair
            from :class:`~repro.alloc.allocator.FrameBufferAllocator`.
            When omitted, FB accesses carry no extents and the word
            level passes degrade to what sizes alone can prove.

    The replay mirrors :func:`repro.codegen.verifier.iter_program_violations`
    exactly — survivor filtering per visit, full drain of both sets at
    round end, cross-set reads of kept operands — so it tolerates the
    same broken programs the verifier reports on (a missing operand
    becomes a value-less read, not a crash).
    """
    schedule = program.schedule
    application = schedule.application
    dataflow = schedule.dataflow
    clustering = schedule.clustering
    keeps_by_name = {keep.name: keep for keep in schedule.keeps}
    placement = _placement_index(allocations)

    nodes: List[IRNode] = []
    visit_nodes: List[VisitNodes] = []
    values: List[ValueLifetime] = []
    # Survivor sets are per (cluster, FB set), not per visit: memoize
    # them like the verifier does instead of re-scanning the keep list
    # once per visit.
    survivors_memo: Dict[Tuple[int, int], Set[str]] = {}
    # Live values per set, keyed (name, instance).
    live: List[Dict[Tuple[str, int], ValueLifetime]] = [{}, {}]
    # Kernel -> CM extent per block, rebuilt at each refill.
    cm_regions: List[Dict[str, Extent]] = [{}, {}]

    kernel_inputs: Dict[str, Tuple[Tuple[str, bool], ...]] = {
        kernel.name: tuple(
            (in_name, dataflow[in_name].invariant)
            for in_name in kernel.inputs
        )
        for kernel in application.kernels
    }
    kernel_by_name = {kernel.name: kernel for kernel in application.kernels}

    def extents_for(fb_set: int, name: str, instance: int,
                    round_start: int, cluster_index: int) -> Tuple[Extent, ...]:
        if placement is None:
            return ()
        info = dataflow[name] if name in dataflow else None
        if info is not None and info.invariant:
            in_round = 0
        else:
            in_round = instance - round_start
        by_cluster = placement[fb_set].get((name, in_round))
        if not by_cluster:
            return ()
        extents = by_cluster.get(cluster_index)
        if extents is not None:
            return extents
        if len(by_cluster) == 1:
            return next(iter(by_cluster.values()))
        return ()

    def new_node(kind: str, visit_index: int, op: object,
                 accesses: Sequence[Access]) -> int:
        node_id = len(nodes)
        nodes.append(IRNode(node_id, kind, visit_index, op, tuple(accesses)))
        return node_id

    def close_value(value: ValueLifetime, end_visit: int,
                    end_node: int) -> None:
        value.end_visit = end_visit
        if value.kept or value.store_nodes:
            # Freed when the draining visit's finish phase completes
            # (stores issued / keep span ended): end of that visit.
            value.release_pos = 2 * end_node + 1
        else:
            last_use = value.last_use_node
            if last_use is None:
                value.release_pos = 2 * end_node + 1
            else:
                value.release_pos = 2 * last_use + 1

    for pos, ops in enumerate(program.visits):
        visit = ops.visit
        fb_set = visit.fb_set
        block = visit.cm_block
        round_start = visit.iterations[0]
        in_set = live[fb_set]

        ctx_ids: List[int] = []
        if ops.context_loads:
            cm_regions[block] = {}
            offset = 0
            for load in ops.context_loads:
                extent = Extent(offset, load.words)
                offset += load.words
                cm_regions[block][load.kernel] = extent
                ctx_ids.append(new_node(
                    CONTEXT_LOAD, visit.index, load,
                    [Access("cm", block, (extent,), True)],
                ))

        load_ids: List[int] = []
        for load in ops.data_loads:
            key = (load.name, load.iteration)
            previous = in_set.get(key)
            extents = extents_for(fb_set, load.name, load.iteration,
                                  round_start, visit.cluster_index)
            value = ValueLifetime(
                value_id=len(values),
                name=load.name,
                instance=load.iteration,
                fb_set=fb_set,
                words=load.words,
                def_node=len(nodes),
                def_visit=visit.index,
                def_kind=DATA_LOAD,
                extents=extents,
                kept=load.name in keeps_by_name
                and keeps_by_name[load.name].fb_set == fb_set,
            )
            node_id = new_node(
                DATA_LOAD, visit.index, load,
                [Access("fb", fb_set, extents, True, value.value_id)]
                if extents else [],
            )
            if previous is not None:
                # Redundant load (PROG005): the old value is clobbered.
                close_value(previous, visit.index, node_id)
            values.append(value)
            in_set[key] = value
            load_ids.append(node_id)

        compute_ids: List[int] = []
        for run in ops.compute:
            kernel = kernel_by_name[run.kernel]
            accesses: List[Access] = []
            region = cm_regions[block].get(run.kernel)
            if region is not None:
                accesses.append(Access("cm", block, (region,), False))
            node_id = len(nodes)
            for in_name, invariant in kernel_inputs[run.kernel]:
                instance = 0 if invariant else run.iteration
                value = in_set.get((in_name, instance))
                if value is None:
                    keep = keeps_by_name.get(in_name)
                    if keep is not None and keep.fb_set != fb_set:
                        value = live[keep.fb_set].get((in_name, instance))
                if value is None:
                    continue  # use-before-load: PROG001's territory
                value.uses.append(node_id)
                if value.extents:
                    accesses.append(Access(
                        "fb", value.fb_set, value.extents, False,
                        value.value_id,
                    ))
            for out_name in kernel.outputs:
                extents = extents_for(fb_set, out_name, run.iteration,
                                      round_start, visit.cluster_index)
                value = ValueLifetime(
                    value_id=len(values),
                    name=out_name,
                    instance=run.iteration,
                    fb_set=fb_set,
                    words=dataflow[out_name].size
                    if out_name in dataflow else 0,
                    def_node=node_id,
                    def_visit=visit.index,
                    def_kind=COMPUTE,
                    extents=extents,
                    kept=out_name in keeps_by_name
                    and keeps_by_name[out_name].fb_set == fb_set,
                )
                previous = in_set.get((out_name, run.iteration))
                if previous is not None:
                    close_value(previous, visit.index, node_id)
                values.append(value)
                in_set[(out_name, run.iteration)] = value
                if extents:
                    accesses.append(Access(
                        "fb", fb_set, extents, True, value.value_id,
                    ))
            compute_ids.append(new_node(COMPUTE, visit.index, run, accesses))

        store_ids: List[int] = []
        for store in ops.stores:
            value = in_set.get((store.name, store.iteration))
            accesses = []
            node_id = len(nodes)
            if value is not None:
                value.store_nodes.append(node_id)
                if value.extents:
                    accesses.append(Access(
                        "fb", fb_set, value.extents, False, value.value_id,
                    ))
            store_ids.append(new_node(STORE, visit.index, store, accesses))

        visit_nodes.append(VisitNodes(
            visit_index=visit.index,
            context_loads=tuple(ctx_ids),
            data_loads=tuple(load_ids),
            compute=tuple(compute_ids),
            stores=tuple(store_ids),
        ))

        # Visit end: drain non-survivors from the visit's set.
        group = visit_nodes[-1]
        if (group.stores or group.compute or group.data_loads
                or group.context_loads):
            end_node = group.last
        else:
            end_node = max(len(nodes) - 1, 0)
        survivors_key = (visit.cluster_index, fb_set)
        survivors = survivors_memo.get(survivors_key)
        if survivors is None:
            survivors = _survivors(schedule, visit.cluster_index, fb_set)
            survivors_memo[survivors_key] = survivors
        drained = {
            key: value for key, value in in_set.items()
            if key[0] not in survivors
        }
        for key, value in drained.items():
            close_value(value, visit.index, end_node)
            del in_set[key]
        for value in in_set.values():
            value.survived_drain = True
        # Round end on the last cluster: both sets drain completely.
        if visit.cluster_index == len(clustering) - 1:
            for other_set in (0, 1):
                for value in live[other_set].values():
                    close_value(value, visit.index, end_node)
                live[other_set].clear()

    # A well-formed program drains everything; close leftovers anyway so
    # broken programs still produce a complete IR.
    last_node = len(nodes) - 1
    last_visit = program.visits[-1].visit.index if program.visits else -1
    for fb_set in (0, 1):
        for value in live[fb_set].values():
            close_value(value, last_visit, max(last_node, 0))
        live[fb_set] = {}

    return ProgramIR(
        program=program,
        nodes=nodes,
        visit_nodes=visit_nodes,
        values=values,
        has_placement=placement is not None,
        fb_capacity=schedule.fb_set_words,
        cm_block_capacity=schedule.context_block_words
        or _derived_block_capacity(program.visits),
    )


def _survivors(schedule, cluster_index: int, fb_set: int) -> Set[str]:
    """Kept names still resident in *fb_set* after the cluster's visit
    (the verifier's survivor rule)."""
    survivors: Set[str] = set()
    for keep in schedule.keeps:
        if keep.fb_set != fb_set:
            continue
        first, last = keep.span
        if first <= cluster_index < last:
            survivors.add(keep.name)
    return survivors


def _derived_block_capacity(visits: Sequence[VisitOps]) -> int:
    """The verifier's fallback CM capacity when the schedule has none."""
    return max((ops.context_words for ops in visits), default=0) or 1
