"""The happens-before graph between DMA transfers and kernel runs.

:meth:`HappensBefore.build` replays the *issue order* of the reference
engine (:meth:`repro.sim.engine.Simulator._execute`) for one DMA
serialization policy, without computing a single cycle:

* every transfer gets a **channel position** — the single DMA channel
  serialises transfers in issue order, and completions are monotone in
  that order (``done(p) <= start(p+1)``), so position compare alone
  orders any two transfers;
* every transfer records the **visit whose compute end directly gates
  it** (the ``earliest`` / ``set_free`` argument the engine passes to
  ``dma.request``): stores of visit ``v`` wait for ``compute_end(v)``,
  the preparation of visit ``w`` issued in the pipelined window waits
  for ``compute_end(w - 2)`` (its loads additionally for the previous
  same-set visit's compute), serial-mode preparation for
  ``compute_end(w - 1)``;
* kernel runs are totally ordered (one RC array), and a visit's compute
  starts only after its preparation finished.

From those facts two prefix maxima answer every mixed query in O(1):

* ``maxprep[v]`` — the highest channel position among preparation
  transfers of visits ``<= v``; any transfer at a position ``<=``
  that completed before visit ``v``'s compute started;
* ``maxrel[p]`` — the highest gating visit among transfers at
  positions ``<= p``; any compute of a visit ``<=`` that ended before
  the transfer at position ``p`` started.

The graph is *guaranteed* ordering only: ``happens_before(a, b)`` is
True when every legal execution finishes ``a`` before ``b`` starts —
exactly the relation the race pass needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dataflow.ir import ProgramIR
from repro.schedule.context_scheduler import DmaPolicy, loads_may_precede_stores

__all__ = ["HappensBefore"]


@dataclass
class HappensBefore:
    """O(1)-query happens-before relation over one program's IR nodes.

    Attributes:
        policy: the DMA policy the issue order was built for.
        serial: True when the schedule does not overlap transfers
            (Basic Scheduler) — everything serialises per visit.
        channel_pos: transfer node id -> DMA channel position.
        rel: per channel position, the visit whose compute end directly
            gates the transfer (-1 when none).
        maxrel: prefix maximum of ``rel``.
        compute_seq: compute node id -> global RC-array sequence.
        compute_visit: compute node id -> visit index.
        lastprep: per visit, the highest channel position among its
            preparation transfers (-1 when it has none).
        maxprep: prefix maximum of ``lastprep``.
        loads_first_windows: pipelined window indices (the loop index
            ``i``: departing visit ``i - 1``, arriving visit ``i + 1``)
            where the policy issued the arriving loads *before* the
            departing stores.
    """

    policy: DmaPolicy
    serial: bool
    channel_pos: Dict[int, int]
    rel: List[int]
    maxrel: List[int]
    compute_seq: Dict[int, int]
    compute_visit: Dict[int, int]
    lastprep: List[int]
    maxprep: List[int]
    loads_first_windows: Tuple[int, ...]

    @classmethod
    def build(
        cls,
        ir: ProgramIR,
        policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
    ) -> "HappensBefore":
        """Mirror the reference engine's issue order for *policy*."""
        program = ir.program
        schedule = program.schedule
        visits = program.visits
        count = len(visits)
        groups = ir.visit_nodes

        channel_pos: Dict[int, int] = {}
        rel: List[int] = []
        compute_seq: Dict[int, int] = {}
        compute_visit: Dict[int, int] = {}
        lastprep = [-1] * count
        stores_issued = [False] * count
        loads_first_windows: List[int] = []

        fb_of = [ops.visit.fb_set for ops in visits]

        def prev_same(index: int) -> int:
            fb_set = fb_of[index]
            for prev in range(index - 1, -1, -1):
                if fb_of[prev] == fb_set:
                    return prev
            return -1

        def emit(node_id: int, gate: int) -> None:
            channel_pos[node_id] = len(rel)
            rel.append(gate)

        loads_before_contexts = policy is DmaPolicy.LOADS_FIRST

        def emit_prep(index: int, ctx_gate: int, load_gate: int) -> None:
            ctx = [(node, ctx_gate) for node in groups[index].context_loads]
            loads = [(node, load_gate) for node in groups[index].data_loads]
            ordered = loads + ctx if loads_before_contexts else ctx + loads
            for node, gate in ordered:
                emit(node, gate)
            if ordered:
                lastprep[index] = max(lastprep[index],
                                      channel_pos[ordered[-1][0]])

        def emit_stores(index: int) -> None:
            if index < 0 or stores_issued[index]:
                return
            stores_issued[index] = True
            for node in groups[index].stores:
                emit(node, index)

        pipelined = schedule.overlap_transfers
        if pipelined and count:
            emit_prep(0, -1, prev_same(0))
        seq = 0
        for index in range(count):
            if not pipelined:
                emit_stores(index - 1)
                emit_prep(index, index - 1,
                          max(index - 1, prev_same(index)))
            for node in groups[index].compute:
                compute_seq[node] = seq
                compute_visit[node] = index
                seq += 1
            if not pipelined:
                continue
            if index + 1 < count:
                same_set_next = fb_of[index + 1] == fb_of[index]
                loads_first = policy is DmaPolicy.LOADS_FIRST
                if policy is DmaPolicy.ADAPTIVE and index > 0:
                    loads_first = loads_may_precede_stores(
                        schedule,
                        visits[index - 1].visit.cluster_index,
                        visits[index + 1].visit.cluster_index,
                        len(visits[index - 1].visit.iterations),
                    )
                if same_set_next:
                    emit_stores(index - 1)
                    emit_stores(index)
                    emit_prep(index + 1, index, index)
                elif not loads_first:
                    emit_stores(index - 1)
                    emit_prep(index + 1, index - 1,
                              max(index - 1, prev_same(index + 1)))
                else:
                    if index > 0:
                        loads_first_windows.append(index)
                    emit_prep(index + 1, index - 1,
                              max(index - 1, prev_same(index + 1)))
                    emit_stores(index - 1)
            else:
                emit_stores(index - 1)
        if count:
            emit_stores(count - 1)

        maxrel: List[int] = []
        best = -1
        for gate in rel:
            best = max(best, gate)
            maxrel.append(best)
        maxprep: List[int] = []
        best = -1
        for pos in lastprep:
            best = max(best, pos)
            maxprep.append(best)

        return cls(
            policy=policy,
            serial=not pipelined,
            channel_pos=channel_pos,
            rel=rel,
            maxrel=maxrel,
            compute_seq=compute_seq,
            compute_visit=compute_visit,
            lastprep=lastprep,
            maxprep=maxprep,
            loads_first_windows=tuple(loads_first_windows),
        )

    # -- queries -----------------------------------------------------------

    def is_transfer(self, node_id: int) -> bool:
        return node_id in self.channel_pos

    def happens_before(self, a: int, b: int) -> bool:
        """True when every legal execution finishes *a* before *b* starts."""
        ta = a in self.channel_pos
        tb = b in self.channel_pos
        if ta and tb:
            return self.channel_pos[a] < self.channel_pos[b]
        if not ta and not tb:
            return self.compute_seq[a] < self.compute_seq[b]
        if ta:
            return self.channel_pos[a] <= self.maxprep[self.compute_visit[b]]
        return self.compute_visit[a] <= self.maxrel[self.channel_pos[b]]

    def ordered(self, a: int, b: int) -> bool:
        """True when the two nodes are ordered either way."""
        return self.happens_before(a, b) or self.happens_before(b, a)
