"""Timing-aware static analysis of generated programs.

The package closes the gap between the functional program verifier
(:mod:`repro.codegen.verifier`) and the timing behaviour the simulator
only samples dynamically:

* :mod:`repro.dataflow.ir` lowers a :class:`~repro.codegen.program.Program`
  into a def-use IR — one node per leaf op with its FB/CM word effects,
  one :class:`~repro.dataflow.ir.ValueLifetime` per resident instance;
* :mod:`repro.dataflow.hazards` builds the happens-before graph between
  DMA transfers and kernel runs under a DMA serialization policy,
  mirroring the reference engine's issue order;
* :mod:`repro.dataflow.passes` runs the five hazard passes (race
  detection, live-range interference, dead transfers, retention
  liveness, capacity over time);
* :mod:`repro.dataflow.analyzer` drives it all and reports through the
  lint framework's rule codes (``HAZ001``-``HAZ003``, ``DFA001``-
  ``DFA002``) and reporters; ``repro analyze`` is the CLI front end.
"""

from repro.dataflow.analyzer import (
    analyze_program,
    analyze_schedule,
    build_ir,
    hazard_errors,
    parse_policy,
)
from repro.dataflow.hazards import HappensBefore
from repro.dataflow.ir import (
    Access,
    IRNode,
    ProgramIR,
    ValueLifetime,
    VisitNodes,
    lower_program,
)
from repro.dataflow.passes import HAZARD_RULES, run_hazard_passes

__all__ = [
    "Access",
    "HAZARD_RULES",
    "HappensBefore",
    "IRNode",
    "ProgramIR",
    "ValueLifetime",
    "VisitNodes",
    "analyze_program",
    "analyze_schedule",
    "build_ir",
    "hazard_errors",
    "lower_program",
    "parse_policy",
    "run_hazard_passes",
]
