"""The hazard passes over the def-use IR.

Five checks, each emitting through a lint-style ``emit(code, message,
location=..., cost_words=..., **details)`` callable:

* ``HAZ001`` **race detection** — program order says access *A*
  precedes access *B* on overlapping words, but the happens-before
  graph cannot prove the DMA/RC-array timing preserves that order.
  Covers the classic overlap-window clobber: arriving loads issued
  ahead of the departing visit's stores, landing in words the pending
  stores still have to read.
* ``HAZ002`` **live-range interference** — two values whose program
  order lifetimes overlap occupy overlapping FB words.  An end-to-end
  cross-check of :class:`~repro.alloc.allocator.FrameBufferAllocator`
  from the *program's* perspective.
* ``HAZ003`` **capacity over time** — CM block refills within budget,
  FB residency along the program order within the set capacity, and
  every loads-before-stores overlap window within the ``DS(C) <= FBS``
  budget the adaptive policy's soundness argument relies on.
* ``DFA001`` **dead transfers** — values defined by a data load and
  never read by any kernel: pure wasted traffic, priced in words.
* ``DFA002`` **retention liveness** — keep decisions whose retained
  values survive a drain but are never read afterwards: the retention
  buys none of its claimed traffic savings.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dataflow.hazards import HappensBefore
from repro.dataflow.ir import COMPUTE, DATA_LOAD, ProgramIR, ValueLifetime

__all__ = [
    "HAZARD_RULES",
    "check_races",
    "check_interference",
    "check_dead_transfers",
    "check_retention_liveness",
    "check_capacity",
    "run_hazard_passes",
]

#: Every rule code the hazard passes can emit.
HAZARD_RULES: Tuple[str, ...] = (
    "HAZ001", "HAZ002", "HAZ003", "DFA001", "DFA002",
)

Emit = Callable[..., object]


class _IntervalMap:
    """Last-accessor state per word over one address space.

    Segments are disjoint, sorted ``[start, end)`` ranges, each holding
    the last writing node and the reading nodes since that write.
    """

    __slots__ = ("_segments",)

    def __init__(self) -> None:
        # (start, end, writer, readers)
        self._segments: List[Tuple[int, int, Optional[int], Tuple[int, ...]]] = []

    def access(
        self, start: int, end: int, node: int, write: bool
    ) -> Dict[int, int]:
        """Record an access; return predecessor nodes -> words shared."""
        preds: Dict[int, int] = {}
        kept: List[Tuple[int, int, Optional[int], Tuple[int, ...]]] = []
        for seg_start, seg_end, writer, readers in self._segments:
            lo = max(start, seg_start)
            hi = min(end, seg_end)
            if lo >= hi:
                kept.append((seg_start, seg_end, writer, readers))
                continue
            words = hi - lo
            if writer is not None and writer != node:
                preds[writer] = preds.get(writer, 0) + words
            if write:
                for reader in readers:
                    if reader != node:
                        preds[reader] = preds.get(reader, 0) + words
            # Non-overlapping remnants keep their old state.
            if seg_start < lo:
                kept.append((seg_start, lo, writer, readers))
            if hi < seg_end:
                kept.append((hi, seg_end, writer, readers))
            if not write:
                kept.append((lo, hi, writer, readers + (node,)))
        if write:
            kept.append((start, end, node, ()))
        else:
            # Reads over previously untouched words.
            covered = sorted(
                (max(start, s), min(end, e))
                for s, e, _, _ in self._segments
                if max(start, s) < min(end, e)
            )
            cursor = start
            for lo, hi in covered:
                if cursor < lo:
                    kept.append((cursor, lo, None, (node,)))
                cursor = max(cursor, hi)
            if cursor < end:
                kept.append((cursor, end, None, (node,)))
        kept.sort(key=lambda seg: seg[0])
        self._segments = kept
        return preds


def check_races(ir: ProgramIR, hb: HappensBefore, emit: Emit) -> None:
    """HAZ001: program order vs. happens-before over shared words."""
    maps: Dict[Tuple[str, int], _IntervalMap] = {}
    conflicts: Dict[Tuple[int, int], Dict[str, object]] = {}
    for node in ir.nodes:
        for access in node.accesses:
            space = maps.setdefault(
                (access.space, access.index), _IntervalMap()
            )
            for extent in access.extents:
                preds = space.access(
                    extent.start, extent.end, node.node_id, access.write
                )
                for pred, words in preds.items():
                    pred_node = ir.nodes[pred]
                    if pred_node.kind == COMPUTE and node.kind == COMPUTE:
                        continue  # one RC array: always ordered
                    if hb.happens_before(pred, node.node_id):
                        continue
                    key = (pred, node.node_id)
                    entry = conflicts.setdefault(key, {
                        "space": access.space,
                        "index": access.index,
                        "words": 0,
                        "reversed": hb.happens_before(node.node_id, pred),
                    })
                    entry["words"] = int(entry["words"]) + words
    for (pred, succ), entry in sorted(conflicts.items()):
        succ_node = ir.nodes[succ]
        space = "CM block" if entry["space"] == "cm" else "FB set"
        how = (
            "is overtaken by" if entry["reversed"]
            else "is unordered against"
        )
        emit(
            "HAZ001",
            f"{ir.describe(pred)} {how} {ir.describe(succ)} on "
            f"{entry['words']} shared word(s) of {space} {entry['index']} "
            f"under policy {hb.policy.name}",
            location=f"visit {succ_node.visit_index}",
            cost_words=int(entry["words"]),
            policy=hb.policy.name,
            first=ir.describe(pred),
            second=ir.describe(succ),
            space=f"{entry['space']}{entry['index']}",
            reversed_order=bool(entry["reversed"]),
        )


def check_interference(ir: ProgramIR, emit: Emit) -> None:
    """HAZ002: simultaneously-live values never share FB words."""
    if not ir.has_placement:
        return
    for fb_set in (0, 1):
        placed = [
            value for value in ir.values
            if value.fb_set == fb_set and value.extents
        ]
        placed.sort(key=lambda value: value.def_pos)
        active: List[ValueLifetime] = []
        for value in placed:
            active = [
                other for other in active
                if other.release_pos > value.def_pos
            ]
            for other in active:
                overlap = sum(
                    min(a.end, b.end) - max(a.start, b.start)
                    for a in value.extents
                    for b in other.extents
                    if a.overlaps(b)
                )
                if overlap:
                    emit(
                        "HAZ002",
                        f"{value.name}#{value.instance} and "
                        f"{other.name}#{other.instance} are live "
                        f"simultaneously on {overlap} shared word(s) of "
                        f"FB set {fb_set}",
                        location=f"visit {value.def_visit}",
                        cost_words=overlap,
                        first=f"{other.name}#{other.instance}",
                        second=f"{value.name}#{value.instance}",
                        fb_set=fb_set,
                    )
            active.append(value)


def check_dead_transfers(ir: ProgramIR, emit: Emit) -> None:
    """DFA001: loaded-but-never-read values are wasted traffic."""
    for value in ir.values:
        if value.def_kind != DATA_LOAD or value.uses:
            continue
        emit(
            "DFA001",
            f"load of {value.name}#{value.instance} into FB set "
            f"{value.fb_set} is never read by any kernel "
            f"({value.words} wasted word(s))",
            location=f"visit {value.def_visit}",
            cost_words=value.words,
            object=value.name,
            instance=value.instance,
            fb_set=value.fb_set,
        )


def check_retention_liveness(ir: ProgramIR, emit: Emit) -> None:
    """DFA002: retained values must be reused before eviction."""
    schedule = ir.program.schedule
    if not schedule.keeps:
        return
    by_keep: Dict[str, List[ValueLifetime]] = {}
    for value in ir.values:
        if value.kept:
            by_keep.setdefault(value.name, []).append(value)
    node_visit = {node.node_id: node.visit_index for node in ir.nodes}
    total_iterations = schedule.application.total_iterations
    for keep in schedule.keeps:
        values = by_keep.get(keep.name, ())
        survivors = [value for value in values if value.survived_drain]
        if not survivors:
            continue
        reused = any(
            node_visit[use] > value.def_visit
            for value in survivors
            for use in value.uses
        )
        if reused:
            continue
        invariant = bool(getattr(keep, "invariant", False))
        claimed = keep.words_avoided * (
            schedule.rounds if invariant else total_iterations
        )
        emit(
            "DFA002",
            f"keep {keep.label}({keep.name}) retains values across visits "
            f"but none is ever read after surviving a drain; the claimed "
            f"saving of {claimed} word(s) of traffic is never realised",
            location=f"keep {keep.label}",
            cost_words=claimed,
            object=keep.name,
            fb_set=keep.fb_set,
            span=list(keep.span),
        )


def check_capacity(ir: ProgramIR, hb: HappensBefore, emit: Emit) -> None:
    """HAZ003: CM/FB residency within capacity at every HB point."""
    program = ir.program
    schedule = program.schedule

    # Context-memory blocks: a refill must fit the block.
    for group in ir.visit_nodes:
        if not group.context_loads:
            continue
        words = sum(
            ir.nodes[node].op.words for node in group.context_loads
        )
        if words > ir.cm_block_capacity:
            visit = program.visits[group.visit_index].visit
            emit(
                "HAZ003",
                f"CM block {visit.cm_block} refill needs {words} words, "
                f"capacity is {ir.cm_block_capacity}",
                location=f"visit {group.visit_index}",
                cost_words=words - ir.cm_block_capacity,
                cm_block=visit.cm_block,
            )

    # Frame-buffer residency along the program order.
    for fb_set in (0, 1):
        events: List[Tuple[int, int, int]] = []
        for value in ir.values:
            if value.fb_set != fb_set or value.words <= 0:
                continue
            events.append((value.def_pos, 1, value.words))
            events.append((value.release_pos, 0, -value.words))
        events.sort()
        current = 0
        peak = 0
        peak_pos = 0
        for pos, _, delta in events:
            current += delta
            if current > peak:
                peak = current
                peak_pos = pos
        if peak > ir.fb_capacity:
            visit_index = _visit_at(ir, peak_pos)
            emit(
                "HAZ003",
                f"FB set {fb_set} residency reaches {peak} words, "
                f"capacity is {ir.fb_capacity}",
                location=f"visit {visit_index}",
                cost_words=peak - ir.fb_capacity,
                fb_set=fb_set,
            )

    # Overlap windows where arriving loads overtake departing stores:
    # the set briefly holds both; the adaptive policy's own soundness
    # bound (departing stores + arriving DS(C) <= FBS) must hold.
    visits = program.visits
    dataflow = schedule.dataflow
    for window in hb.loads_first_windows:
        departing = visits[window - 1]
        arriving = visits[window + 1]
        if departing.visit.fb_set != arriving.visit.fb_set:
            continue
        plan = schedule.plan_for(arriving.visit.cluster_index)
        outgoing = schedule.plan_for(
            departing.visit.cluster_index
        ).store_words(dataflow, len(departing.visit.iterations))
        need = outgoing + plan.peak_occupancy
        if need > schedule.fb_set_words:
            emit(
                "HAZ003",
                f"overlap window at visit {window}: arriving loads of "
                f"visit {window + 1} overtake departing stores of visit "
                f"{window - 1}; worst-case residency {need} words exceeds "
                f"the {schedule.fb_set_words}-word set "
                f"(policy {hb.policy.name})",
                location=f"visit {window}",
                cost_words=need - schedule.fb_set_words,
                fb_set=arriving.visit.fb_set,
                policy=hb.policy.name,
            )


def _visit_at(ir: ProgramIR, pos: int) -> int:
    """Visit index owning doubled node position *pos*."""
    node_id = min(pos // 2, len(ir.nodes) - 1)
    if node_id < 0:
        return 0
    return ir.nodes[node_id].visit_index


def run_hazard_passes(ir: ProgramIR, hb: HappensBefore, emit: Emit) -> None:
    """Run all five hazard passes."""
    check_races(ir, hb, emit)
    check_interference(ir, emit)
    check_dead_transfers(ir, emit)
    check_retention_liveness(ir, emit)
    check_capacity(ir, hb, emit)
