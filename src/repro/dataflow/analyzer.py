"""Driving the hazard passes over programs and schedules.

:func:`analyze_program` is the one-stop entry point: lower the program
to the def-use IR, build the happens-before graph for the requested DMA
policy, run all five hazard passes, and return the findings in a
standard :class:`~repro.lint.diagnostics.DiagnosticCollector` so the
lint reporters (text and JSON) render them unchanged.

The lint imports happen lazily inside the functions: the lint package
itself imports :mod:`repro.lint.hazard_passes`, which imports this
package, and module-level imports in the other direction would cycle.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.codegen.program import Program
from repro.dataflow.hazards import HappensBefore
from repro.dataflow.ir import ProgramIR, lower_program
from repro.dataflow.passes import HAZARD_RULES, run_hazard_passes
from repro.schedule.context_scheduler import DmaPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.diagnostics import DiagnosticCollector
    from repro.schedule.plan import Schedule

__all__ = [
    "analyze_program",
    "analyze_schedule",
    "build_ir",
    "hazard_errors",
    "parse_policy",
]

_POLICY_NAMES = {policy.name.lower(): policy for policy in DmaPolicy}


class _ProgramAnalysis:
    """Memoized default-allocation IR and happens-before graphs for one
    program object.

    Analyzing one program under several DMA policies (``repro analyze
    --policy sound``, the ``hazards`` fuzz oracle) used to rebuild the
    allocation maps and the whole def-use IR per policy; the IR is
    policy-independent, and the happens-before closure only depends on
    (program, policy).  Entries are keyed by program identity and
    evicted by a weak-reference finalizer — a ``Program`` is not
    hashable, but its lowering is pure, so identity is the right key.
    """

    __slots__ = ("ref", "allocations", "ir", "hb_by_policy")

    def __init__(self) -> None:
        self.ref: Optional[weakref.ref] = None
        self.allocations: Optional[Sequence[object]] = None
        self.ir: Optional[ProgramIR] = None
        self.hb_by_policy: Dict[DmaPolicy, HappensBefore] = {}


_ANALYSIS_MEMO: Dict[int, _ProgramAnalysis] = {}


def _analysis_for(program: Program) -> _ProgramAnalysis:
    key = id(program)
    entry = _ANALYSIS_MEMO.get(key)
    if entry is not None and entry.ref is not None and entry.ref() is program:
        return entry
    entry = _ProgramAnalysis()

    def _evict(_ref: object, key: int = key, entry: _ProgramAnalysis = entry) -> None:
        if _ANALYSIS_MEMO.get(key) is entry:
            del _ANALYSIS_MEMO[key]

    entry.ref = weakref.ref(program, _evict)
    _ANALYSIS_MEMO[key] = entry
    return entry


def _ir_for(program: Program) -> ProgramIR:
    """The default-allocation IR of *program*, memoized per program."""
    entry = _analysis_for(program)
    if entry.ir is None:
        from repro.alloc.allocator import FrameBufferAllocator

        entry.allocations = FrameBufferAllocator(program.schedule).allocate()
        entry.ir = lower_program(program, allocations=entry.allocations)
    return entry.ir


def _happens_before_for(program: Program, ir: ProgramIR,
                        policy: DmaPolicy) -> HappensBefore:
    """The happens-before closure for (program, policy), memoized."""
    entry = _analysis_for(program)
    hb = entry.hb_by_policy.get(policy)
    if hb is None:
        hb = entry.hb_by_policy[policy] = HappensBefore.build(ir, policy=policy)
    return hb


def parse_policy(text: str) -> DmaPolicy:
    """Parse a DMA policy name (case-insensitive)."""
    try:
        return _POLICY_NAMES[text.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_POLICY_NAMES))
        raise ValueError(
            f"unknown DMA policy {text!r}; expected one of: {known}"
        ) from None


def analyze_program(
    program: Program,
    *,
    allocations: Optional[Sequence[object]] = None,
    policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
    collector: Optional["DiagnosticCollector"] = None,
) -> "DiagnosticCollector":
    """Run the hazard passes over one compiled program.

    Args:
        program: the program to analyze.
        allocations: ``(set0, set1)`` allocation maps; computed with the
            default :class:`~repro.alloc.allocator.FrameBufferAllocator`
            when omitted.
        policy: the DMA serialization policy to build the happens-before
            graph for.
        collector: collector to accumulate into (fresh when omitted);
            carries severity overrides and suppressions.
    """
    import repro.lint  # noqa: F401  (registers the HAZ/DFA rules)
    from repro.lint.diagnostics import Diagnostic, DiagnosticCollector
    from repro.lint.registry import RULES

    if allocations is None:
        # Default-allocation analysis: share the IR and the per-policy
        # happens-before graphs across calls on the same program.
        ir = _ir_for(program)
        hb = _happens_before_for(program, ir, policy)
    else:
        ir = lower_program(program, allocations=allocations)
        hb = HappensBefore.build(ir, policy=policy)
    if collector is None:
        collector = DiagnosticCollector()
    for code in HAZARD_RULES:
        collector.mark_checked(code)

    def emit(code: str, message: str, *, location: str = "",
             cost_words: int = 0, **details: object):
        rule = RULES[code]
        return collector.add(Diagnostic(
            code=code,
            severity=rule.severity,
            layer=rule.layer,
            location=location,
            message=message,
            cost_words=cost_words,
            details=details,
        ))

    run_hazard_passes(ir, hb, emit)
    return collector


def analyze_schedule(
    schedule: "Schedule",
    *,
    policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
    collector: Optional["DiagnosticCollector"] = None,
) -> Tuple[Program, "DiagnosticCollector"]:
    """Lower *schedule* and analyze the generated program."""
    from repro.codegen.generator import generate_program

    program = generate_program(schedule)
    return program, analyze_program(
        program, policy=policy, collector=collector
    )


def hazard_errors(collector: "DiagnosticCollector") -> Tuple[object, ...]:
    """The error-severity HAZ findings in *collector* (the CI gate)."""
    return tuple(
        diagnostic for diagnostic in collector.errors
        if diagnostic.code.startswith("HAZ")
    )


def build_ir(
    program: Program,
    *,
    allocations: Optional[Sequence[object]] = None,
) -> ProgramIR:
    """Convenience wrapper: allocations + lowering in one call."""
    if allocations is None:
        return _ir_for(program)
    return lower_program(program, allocations=allocations)
