"""Application transforms.

Currently: intra-kernel tiling (:mod:`repro.transform.tiling`), a
reduced form of the paper's first future-work item, "data management
within a kernel".
"""

from repro.transform.tiling import tile_kernel, tiled_names

__all__ = ["tile_kernel", "tiled_names"]
