"""Intra-kernel tiling: data management *within* a kernel.

The paper's section 7 names "data management within a kernel" as future
work: the data scheduler treats a kernel's inputs and outputs as
monolithic blocks, so a kernel whose working set exceeds one
frame-buffer set can never be scheduled, however large ``RF`` head-room
the rest of the application has.

:func:`tile_kernel` implements the standard remedy at the scheduler's
abstraction level: the kernel is split into ``factor`` sub-kernels,
each processing one tile of the data.

* An input consumed **only** by the tiled kernel is split into tiles;
  sub-kernel ``t`` consumes only tile ``t`` — this is where the
  footprint shrinks.
* An input shared with other kernels stays whole (every sub-kernel
  consumes it): splitting it would change the rest of the dataflow.
* Outputs are split into tiles; every downstream consumer of the
  original output consumes all tiles (same total volume, finer grain),
  and final outputs propagate the final flag to each tile.
* Sub-kernel 0 carries the kernel's full context words; later tiles
  only pay a small reconfiguration cost (address-register updates),
  reflecting that the RC-array configuration is reused across tiles.
* Cycles divide evenly across tiles (with the remainder on tile 0).

The transform preserves application validity by construction and is
tested to make otherwise-infeasible applications schedulable.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.application import Application
from repro.core.kernel import Kernel
from repro.errors import WorkloadError
from repro.units import ceil_div

__all__ = ["tile_kernel", "tiled_names"]


def tiled_names(name: str, factor: int) -> Tuple[str, ...]:
    """The names the tiles of *name* get: ``name@0 .. name@{factor-1}``."""
    return tuple(f"{name}@{tile}" for tile in range(factor))


def _split_words(words: int, factor: int) -> List[int]:
    """Split *words* into *factor* positive parts, remainder up front."""
    base = words // factor
    remainder = words - base * factor
    parts = [base + (1 if tile < remainder else 0) for tile in range(factor)]
    if any(part <= 0 for part in parts):
        raise WorkloadError(
            f"cannot split {words} words into {factor} tiles"
        )
    return parts


def tile_kernel(
    application: Application,
    kernel_name: str,
    factor: int,
    *,
    reconfig_context_words: int = 8,
) -> Application:
    """Return a new application with *kernel_name* split into *factor*
    tile sub-kernels (``kernel@0`` ... ``kernel@{factor-1}``).

    Args:
        application: the source application (unchanged).
        kernel_name: kernel to tile.
        factor: number of tiles, >= 2.
        reconfig_context_words: context words charged to tiles after the
            first (address-register updates; the RC configuration
            itself is reused).

    Raises:
        WorkloadError: if the factor is invalid, the kernel is unknown,
            or some private input/output is too small to split.
    """
    if factor < 2:
        raise WorkloadError(f"tiling factor must be >= 2, got {factor}")
    target = application.kernel(kernel_name)  # KeyError if unknown

    # Which inputs are private to the tiled kernel?
    private_inputs = {
        name for name in target.inputs
        if not application.object(name).invariant
        and all(
            kernel.name == kernel_name or not kernel.reads(name)
            for kernel in application.kernels
        )
    }

    builder = Application.build(
        application.name + f"+tiled({kernel_name}x{factor})",
        total_iterations=application.total_iterations,
    )

    # Declare external objects (tiles for private external inputs).
    produced = {
        name for kernel in application.kernels for name in kernel.outputs
    }
    tile_sizes: Dict[str, List[int]] = {}
    for name, obj in application.objects.items():
        split = (
            (name in private_inputs and name not in produced)
            or name in target.outputs
        )
        if split:
            tile_sizes[name] = _split_words(obj.size, factor)
        if name in produced or name in target.outputs:
            continue  # results are declared with their producer kernel
        if split:
            for tile, words in zip(tiled_names(name, factor),
                                   tile_sizes[name]):
                builder.data(tile, words, invariant=obj.invariant)
        else:
            builder.data(name, obj.size, invariant=obj.invariant)

    def mapped_inputs(kernel: Kernel) -> List[str]:
        names: List[str] = []
        for name in kernel.inputs:
            if name in tile_sizes and (
                name in private_inputs or name in target.outputs
            ):
                names.extend(tiled_names(name, factor))
            else:
                names.append(name)
        return names

    finals: List[str] = []
    for kernel in application.kernels:
        if kernel.name != kernel_name:
            outputs = list(kernel.outputs)
            result_sizes = {
                name: application.object(name).size for name in outputs
            }
            builder.kernel(
                kernel.name,
                context_words=kernel.context_words,
                cycles=kernel.cycles,
                inputs=mapped_inputs(kernel),
                outputs=outputs,
                result_sizes=result_sizes,
                library_op=kernel.library_op,
            )
            finals.extend(
                name for name in outputs
                if name in application.final_outputs
            )
            continue
        # Emit the tile sub-kernels.
        cycle_parts = _split_words(kernel.cycles, factor)
        for tile in range(factor):
            inputs: List[str] = []
            for name in kernel.inputs:
                if name in private_inputs and name in tile_sizes:
                    inputs.append(tiled_names(name, factor)[tile])
                else:
                    inputs.append(name)
            outputs = []
            result_sizes = {}
            for name in kernel.outputs:
                tile_name = tiled_names(name, factor)[tile]
                outputs.append(tile_name)
                result_sizes[tile_name] = tile_sizes[name][tile]
                if name in application.final_outputs:
                    finals.append(tile_name)
            builder.kernel(
                f"{kernel_name}@{tile}",
                context_words=(
                    kernel.context_words if tile == 0
                    else max(1, reconfig_context_words)
                ),
                cycles=max(1, cycle_parts[tile]),
                inputs=inputs,
                outputs=outputs,
                result_sizes=result_sizes,
            )
    builder.final(*finals)
    return builder.finish()
