"""Load generator for the scheduler service.

Drives thousands of concurrent keep-alive HTTP clients against a
:class:`~repro.service.server.SchedulerService` — a running one
(``--url``-style host/port) or a self-hosted
:class:`~repro.service.server.ServerThread` spun up for the run.

The request mix models a real compile-service population: a corpus of
``distinct`` generated workloads (seeded
:func:`~repro.workloads.random_gen.random_application`, serialised
through :class:`~repro.fuzz.case.FuzzCase`) sampled with a
**zipf-skewed** repeat distribution — a few hot workloads dominate,
a long tail appears once or twice — which is exactly the shape that
makes the shared cache and single-flight dedup earn their keep.
Everything is seeded: the same ``(clients, requests_per_client,
distinct, skew, seed)`` tuple replays the same request schedule.

The run's verdict comes from the service's own metrics (fetched over
``/v1/metrics`` before and after): cache hits/misses, single-flight
leader/follower counts, and a derived ``hit_rate`` — the fraction of
requests served without compiling (cache hits plus coalesced
followers).  :func:`check_loadgen` turns the payload into pass/fail
findings for ``repro loadgen --check`` and the ``make serve-smoke``
gate.
"""

from __future__ import annotations

import asyncio
import bisect
import itertools
import json
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.service.protocol import encode_json, percentile

__all__ = [
    "build_corpus",
    "zipf_indices",
    "run_loadgen",
    "check_loadgen",
    "render_loadgen",
]


# -- request corpus ------------------------------------------------------


def build_corpus(
    distinct: int,
    *,
    seed: int = 0,
    fb_words: int = 4096,
    scheduler: str = "cds",
) -> List[Dict[str, Any]]:
    """*distinct* schedule-request bodies over generated workloads.

    Traces are off: the loadgen measures scheduling throughput, and the
    per-transfer DMA trace only bloats response payloads.
    """
    from repro.fuzz.case import FuzzCase
    from repro.workloads.random_gen import random_application

    bodies = []
    for index in range(distinct):
        application, clustering = random_application(seed + index)
        case = FuzzCase.from_workload(
            application, clustering, fb_words,
            name=f"loadgen-{seed + index}",
        )
        bodies.append(
            {
                "workload": case.to_dict(),
                "scheduler": scheduler,
                "trace": False,
            }
        )
    return bodies


def zipf_indices(
    count: int, n_items: int, *, skew: float = 1.1, seed: int = 0
) -> List[int]:
    """*count* draws from ``{0..n_items-1}`` with zipf weight
    ``1/rank^skew`` (rank 0 hottest); deterministic per *seed*."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    weights = [1.0 / (rank ** skew) for rank in range(1, n_items + 1)]
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    rng = random.Random(seed)
    return [
        min(
            n_items - 1,
            bisect.bisect_left(cumulative, rng.random() * total),
        )
        for _ in range(count)
    ]


def _raise_fd_limit(wanted: int) -> None:
    """Best-effort bump of the open-files rlimit (thousands of client
    sockets plus their server-side peers live in this process)."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < wanted:
            resource.setrlimit(
                resource.RLIMIT_NOFILE,
                (min(wanted, hard) if hard > 0 else wanted, hard),
            )
    except (ImportError, ValueError, OSError):
        pass


# -- minimal HTTP client -------------------------------------------------


def _post_bytes(path: str, body: bytes) -> bytes:
    return (
        (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: loadgen\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1")
        + body
    )


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed connection")
    parts = line.decode("latin-1").split(maxsplit=2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"malformed status line: {line!r}")
    status = int(parts[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n"):
            break
        if not header:
            raise ConnectionError("connection closed inside headers")
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _fetch(
    host: str, port: int, path: str, *, method: str = "GET",
    body: bytes = b"",
) -> Tuple[int, Dict[str, Any]]:
    """One-shot request on its own connection (healthz/metrics)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        if method == "GET":
            writer.write(
                (
                    f"GET {path} HTTP/1.1\r\nHost: loadgen\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
            )
        else:
            writer.write(_post_bytes(path, body))
        await writer.drain()
        status, payload = await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return status, json.loads(payload.decode("utf-8"))


async def _client(
    host: str,
    port: int,
    requests: List[bytes],
    latencies: List[float],
    errors: List[str],
    start_gate: "asyncio.Event",
) -> None:
    """One keep-alive client working through its request schedule."""
    await start_gate.wait()
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        errors.append(f"connect: {exc!r}")
        return
    try:
        for request in requests:
            started = time.perf_counter()
            writer.write(request)
            await writer.drain()
            status, body = await _read_response(reader)
            latencies.append(time.perf_counter() - started)
            if status != 200:
                errors.append(f"status {status}: {body[:120]!r}")
            else:
                payload = json.loads(body.decode("utf-8"))
                if payload.get("ok") is not True:
                    errors.append(f"not ok: {body[:120]!r}")
    except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
        errors.append(f"io: {exc!r}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- drivers -------------------------------------------------------------


def _counters_from_metrics(payload: Dict[str, Any]) -> Dict[str, int]:
    return dict(payload.get("metrics", {}).get("counters", {}))


def _counter_delta(
    after: Dict[str, int], before: Dict[str, int], key: str
) -> int:
    return after.get(key, 0) - before.get(key, 0)


async def _drive(
    host: str,
    port: int,
    schedules: List[List[bytes]],
) -> Tuple[List[float], List[str], float, Dict, Dict, bool]:
    _, before_metrics = await _fetch(host, port, "/v1/metrics")
    latencies: List[float] = []
    errors: List[str] = []
    start_gate = asyncio.Event()
    tasks = [
        asyncio.ensure_future(
            _client(host, port, requests, latencies, errors, start_gate)
        )
        for requests in schedules
    ]
    # Release every client at once so concurrency really is the client
    # count, not a ramp shaped by task-creation order.
    await asyncio.sleep(0)
    started = time.perf_counter()
    start_gate.set()
    await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - started
    healthz_status, healthz = await _fetch(host, port, "/v1/healthz")
    _, after_metrics = await _fetch(host, port, "/v1/metrics")
    healthz_ok = healthz_status == 200 and healthz.get("ok") is True
    return (
        latencies, errors, elapsed, before_metrics, after_metrics,
        healthz_ok,
    )


def run_loadgen(
    *,
    clients: int = 1000,
    requests_per_client: int = 3,
    distinct: int = 32,
    skew: float = 1.1,
    seed: int = 0,
    host: Optional[str] = None,
    port: Optional[int] = None,
    scheduler: str = "cds",
    fb_words: int = 4096,
    cache_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    mode: str = "thread",
) -> Dict[str, Any]:
    """Run one load campaign; returns the measured payload.

    With *host*/*port* unset the service is self-hosted for the run
    (worker *mode*/*jobs*, shared cache at *cache_dir*) and torn down
    after; otherwise the campaign targets the running server and the
    cache/pool arguments are ignored.
    """
    if clients <= 0 or requests_per_client <= 0:
        raise ValueError("clients and requests_per_client must be positive")
    bodies = build_corpus(
        distinct, seed=seed, fb_words=fb_words, scheduler=scheduler
    )
    encoded = [_post_bytes("/v1/schedule", encode_json(body))
               for body in bodies]
    total_requests = clients * requests_per_client
    draws = zipf_indices(total_requests, distinct, skew=skew, seed=seed)
    schedules = [
        [
            encoded[draws[client * requests_per_client + position]]
            for position in range(requests_per_client)
        ]
        for client in range(clients)
    ]
    _raise_fd_limit(2 * clients + 256)

    server_thread = None
    if host is None:
        from repro.service.server import ServerThread

        server_thread = ServerThread(
            cache_dir=cache_dir, jobs=jobs, mode=mode
        )
        host, port = server_thread.start()
    elif port is None:
        raise ValueError("port is required when host is given")

    try:
        (latencies, errors, elapsed, before, after, healthz_ok) = (
            asyncio.run(_drive(host, port, schedules))
        )
    finally:
        if server_thread is not None:
            server_thread.stop()

    before_counters = _counters_from_metrics(before)
    after_counters = _counters_from_metrics(after)
    hits = _counter_delta(after_counters, before_counters, "cache/cache.hit")
    misses = _counter_delta(
        after_counters, before_counters, "cache/cache.miss"
    )
    puts = _counter_delta(after_counters, before_counters, "cache/cache.put")
    leaders = _counter_delta(
        after_counters, before_counters, "service/singleflight.leader"
    )
    followers = _counter_delta(
        after_counters, before_counters, "service/singleflight.follower"
    )
    return {
        "schema": 1,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "requests": total_requests,
        "completed": len(latencies),
        "distinct_workloads": distinct,
        "zipf_skew": skew,
        "seed": seed,
        "scheduler": scheduler,
        "errors": len(errors),
        "error_samples": errors[:5],
        "elapsed_s": elapsed,
        "throughput_rps": (
            len(latencies) / elapsed if elapsed > 0 else 0.0
        ),
        "latency": {
            "count": len(latencies),
            "mean_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "p50_s": percentile(latencies, 0.50),
            "p99_s": percentile(latencies, 0.99),
            "max_s": max(latencies) if latencies else 0.0,
        },
        "cache": {"hits": hits, "misses": misses, "puts": puts},
        "singleflight": {"leaders": leaders, "followers": followers},
        "hit_rate": (
            (hits + followers) / total_requests if total_requests else 0.0
        ),
        "healthz_ok": healthz_ok,
    }


def check_loadgen(
    payload: Dict[str, Any],
    *,
    min_hit_rate: float = 0.5,
) -> List[str]:
    """Findings that fail the smoke gate (empty = pass)."""
    findings = []
    if not payload.get("healthz_ok"):
        findings.append("healthz did not answer ok")
    if payload.get("errors"):
        samples = "; ".join(payload.get("error_samples", []))
        findings.append(
            f"{payload['errors']} request error(s): {samples}"
        )
    if payload.get("completed") != payload.get("requests"):
        findings.append(
            f"only {payload.get('completed')} of "
            f"{payload.get('requests')} requests completed"
        )
    hit_rate = payload.get("hit_rate", 0.0)
    if hit_rate <= min_hit_rate:
        findings.append(
            f"hit_rate {hit_rate:.3f} <= required {min_hit_rate:.3f}"
        )
    if payload.get("cache", {}).get("hits", 0) < 1:
        findings.append("no cached replay was observed")
    return findings


def render_loadgen(payload: Dict[str, Any]) -> str:
    """Human-readable summary of one loadgen payload."""
    latency = payload.get("latency", {})
    cache = payload.get("cache", {})
    flight = payload.get("singleflight", {})
    return "\n".join(
        [
            (
                f"loadgen: {payload['clients']} clients x "
                f"{payload['requests_per_client']} requests "
                f"({payload['distinct_workloads']} distinct workloads, "
                f"zipf skew {payload['zipf_skew']}, seed "
                f"{payload['seed']})"
            ),
            (
                f"  completed {payload['completed']}/"
                f"{payload['requests']} with {payload['errors']} "
                f"error(s) in {payload['elapsed_s']:.3f}s "
                f"({payload['throughput_rps']:.1f} req/s)"
            ),
            (
                f"  latency p50 {latency.get('p50_s', 0.0) * 1000:.3f} ms, "
                f"p99 {latency.get('p99_s', 0.0) * 1000:.3f} ms, "
                f"max {latency.get('max_s', 0.0) * 1000:.3f} ms"
            ),
            (
                f"  cache hits {cache.get('hits', 0)} / misses "
                f"{cache.get('misses', 0)}; single-flight leaders "
                f"{flight.get('leaders', 0)} / followers "
                f"{flight.get('followers', 0)}; hit_rate "
                f"{payload.get('hit_rate', 0.0):.3f}"
            ),
            f"  healthz ok: {payload.get('healthz_ok')}",
        ]
    )
