"""Asyncio HTTP/JSON front-end of the scheduler service.

A deliberately small, dependency-free HTTP/1.1 server (the container
has no web framework): one :func:`asyncio.start_server` accept loop,
keep-alive request framing via ``Content-Length``, and four routes:

* ``POST /v1/schedule`` — one workload through one scheduler.
* ``POST /v1/batch``    — many cases through
  :func:`~repro.analysis.compare.run_pipeline_batch` /
  ``schedule.batch.compile_many``.
* ``GET  /v1/metrics``  — the service's merged metrics registry plus
  latency percentiles and single-flight counters.
* ``GET  /v1/healthz``  — liveness.

Compute never runs on the event loop: parsed requests are dispatched
into a :class:`~repro.analysis.parallel.WorkerPool` (thread or process
mode) running :func:`~repro.service.protocol.execute_request`, and the
per-request metrics snapshot each worker returns is merged into the
service-global registry.

**Single-flight.**  Concurrent identical requests (same endpoint +
canonical body, :func:`~repro.service.protocol.request_key`) coalesce
onto one in-flight computation: the first becomes the *leader* and
executes; the rest are *followers* that await the leader's future and
share its response payload.  Combined with the shared
:class:`~repro.cache.CacheStore` (content-fingerprint keys, so hits
survive across requests, processes and restarts), N concurrent
identical requests compile exactly once — asserted down to the metrics
counters in ``tests/service/test_service.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.parallel import WorkerPool
from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import (
    encode_json,
    error_payload,
    execute_request,
    percentile,
    request_key,
)

__all__ = ["SchedulerService", "ServerThread"]

_MAX_BODY_BYTES = 32 * 1024 * 1024
_MAX_RECORDED_LATENCIES = 200_000

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}


class _ProtocolError(Exception):
    """Unparseable HTTP framing; the connection is dropped."""


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """One framed request, or ``None`` on a clean EOF between requests."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise _ProtocolError(f"malformed request line: {line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n"):
            break
        if not header:
            raise _ProtocolError("connection closed inside headers")
        name, separator, value = header.decode("latin-1").partition(":")
        if not separator:
            raise _ProtocolError(f"malformed header: {header!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _ProtocolError("malformed Content-Length") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _ProtocolError(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _response_bytes(status: int, body: bytes, *, keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


class SchedulerService:
    """The scheduler-as-a-service server: routes, pool, single-flight.

    Args:
        host/port: bind address; ``port=0`` picks an ephemeral port
            (read ``self.port`` after :meth:`start`).
        cache_dir: :class:`~repro.cache.CacheStore` root shared by all
            requests; ``None`` disables the cross-request cache.
        jobs: worker-pool size (``None``/0 for the CPU-count default).
        mode: ``"thread"`` or ``"process"`` worker pool.  Thread mode
            keeps workers in-process (tests can monkeypatch scheduler
            internals; no pickling); process mode buys real
            parallelism for CPU-bound fleets.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[str] = None,
        jobs: Optional[int] = None,
        mode: str = "thread",
    ) -> None:
        self.host = host
        self.port = port
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.registry = MetricsRegistry()
        self._pool = WorkerPool(jobs=jobs, mode=mode)
        self._mode = mode
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._latencies: List[float] = []
        self._started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves ``self.port``."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, backlog=2048
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.aclose()

    # -- connection handling -------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                status, payload = await self._dispatch(method, path, body)
                self._record_latency(time.perf_counter() - started)
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                )
                writer.write(
                    _response_bytes(
                        status, encode_json(payload), keep_alive=keep_alive
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            _ProtocolError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _record_latency(self, seconds: float) -> None:
        self.registry.inc("requests", scope="service")
        if len(self._latencies) < _MAX_RECORDED_LATENCIES:
            self._latencies.append(seconds)

    # -- routing -------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        self.registry.inc(f"http.{method} {path}", scope="service")
        if path == "/v1/healthz":
            if method != "GET":
                return 405, error_payload("MethodNotAllowed", "use GET")
            return 200, self._healthz_payload()
        if path == "/v1/metrics":
            if method != "GET":
                return 405, error_payload("MethodNotAllowed", "use GET")
            return 200, self._metrics_payload()
        if path in ("/v1/schedule", "/v1/batch"):
            if method != "POST":
                return 405, error_payload("MethodNotAllowed", "use POST")
            try:
                parsed = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return 400, error_payload(
                    "BadRequest", "request body is not valid JSON"
                )
            if not isinstance(parsed, dict):
                return 400, error_payload(
                    "BadRequest", "request body must be a JSON object"
                )
            endpoint = path.rsplit("/", 1)[1]
            return await self._singleflight(endpoint, parsed)
        return 404, error_payload("NotFound", f"no route for {path}")

    # -- single-flight dispatch ----------------------------------------

    async def _singleflight(
        self, endpoint: str, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Coalesce concurrent identical requests onto one execution."""
        key = request_key(endpoint, body)
        existing = self._inflight.get(key)
        if existing is not None:
            self.registry.inc("singleflight.follower", scope="service")
            return await asyncio.shield(existing)
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        self.registry.inc("singleflight.leader", scope="service")
        try:
            status, payload, snapshot = await loop.run_in_executor(
                self._pool.executor,
                execute_request,
                endpoint,
                body,
                self.cache_dir,
            )
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Mark retrieved so a follower-less failure does not
                # log "exception was never retrieved"; awaiting
                # followers still see it raised.
                future.exception()
            raise
        self._inflight.pop(key, None)
        self.registry.merge(snapshot)
        result = (status, payload)
        if not future.done():
            future.set_result(result)
        return result

    # -- introspection payloads ----------------------------------------

    def _healthz_payload(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "status": "ok",
            "uptime_s": round(time.monotonic() - self._started, 6),
            "requests": self.registry.counter("requests", scope="service"),
            "workers": {"mode": self._mode, "jobs": self._pool.jobs},
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        latencies = list(self._latencies)
        return {
            "ok": True,
            "service": {
                "requests": self.registry.counter(
                    "requests", scope="service"
                ),
                "inflight": len(self._inflight),
                "workers": {"mode": self._mode, "jobs": self._pool.jobs},
                "latency": {
                    "count": len(latencies),
                    "mean_s": (
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    "p50_s": percentile(latencies, 0.50),
                    "p99_s": percentile(latencies, 0.99),
                    "max_s": max(latencies) if latencies else 0.0,
                },
            },
            "metrics": self.registry.snapshot(),
        }


async def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8753,
    cache_dir: Optional[str] = None,
    jobs: Optional[int] = None,
    mode: str = "process",
    ready=None,
) -> None:
    """Start a service and serve until cancelled (the CLI entry)."""
    service = SchedulerService(
        host=host, port=port, cache_dir=cache_dir, jobs=jobs, mode=mode
    )
    await service.start()
    if ready is not None:
        ready(service)
    await service.serve_forever()


class ServerThread:
    """A service running on its own event loop in a daemon thread.

    The self-hosting harness used by the loadgen driver, the service
    bench and the test suite: :meth:`start` returns ``(host, port)``
    once the socket is bound, :meth:`stop` tears the loop and worker
    pool down.  ``service`` stays accessible for in-process assertions
    (metrics counters, single-flight state).
    """

    def __init__(self, **service_kwargs: Any) -> None:
        self.service = SchedulerService(**service_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error!r}"
            )
        return self.service.host, self.service.port

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.service.aclose())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
