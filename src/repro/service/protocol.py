"""Wire protocol of the scheduler service: parse, execute, encode.

Everything the HTTP layer (:mod:`repro.service.server`) does not want
to know lives here:

* **Request schema.**  A ``/v1/schedule`` body names a workload (an
  inline :class:`~repro.fuzz.case.FuzzCase`-format dict under
  ``"workload"``, or a Table-1 row id under ``"experiment"``), a
  scheduler (``basic``/``ds``/``cds``), optional
  :class:`~repro.schedule.base.ScheduleOptions` overrides, a ``trace``
  flag and an ``fb_words`` override.  A ``/v1/batch`` body carries a
  list of such case dicts plus shared ``trace``/``engine`` settings.
* **Execution.**  :func:`execute_request` is the worker entry point —
  a top-level picklable function so the server can dispatch it into a
  :class:`~repro.analysis.parallel.WorkerPool` of either mode.  It
  runs the exact CLI pipeline (:func:`~repro.analysis.compare.
  run_scheduler` per case, :func:`~repro.analysis.compare.
  run_pipeline_batch` for batches) under a
  :func:`~repro.obs.metrics.request_scope`, so per-request stage
  timings come back as a picklable snapshot instead of polluting a
  process-global registry.
* **Canonical encoding.**  :func:`encode_json` is the one JSON
  serialiser (sorted keys, compact separators) used for responses and
  for the single-flight request key, which makes "byte-identical to
  the CLI pipeline" a testable property rather than an aspiration.

Status mapping: infeasible schedules are *successful* responses
(``200`` with ``"feasible": false`` and the structured
required/available numbers), mirroring
:class:`~repro.analysis.compare.SchedulerOutcome`; strict-mode lint
failures are ``422`` with the diagnostics payload; malformed requests
are ``400``; everything unexpected is ``500``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.compare import run_pipeline_batch, run_scheduler
from repro.arch.params import Architecture
from repro.errors import LintError, ReproError
from repro.fuzz.case import FuzzCase
from repro.obs import metrics
from repro.obs.trace import report_to_dict
from repro.schedule.base import ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler

__all__ = [
    "SCHEDULERS",
    "ServiceError",
    "encode_json",
    "error_payload",
    "execute_request",
    "outcome_payload",
    "percentile",
    "request_key",
]

SCHEDULERS = {
    "basic": BasicScheduler,
    "ds": DataScheduler,
    "cds": CompleteDataScheduler,
}

_OPTION_FIELDS = frozenset(
    field.name for field in dataclasses.fields(ScheduleOptions)
)

_SCHEDULE_KEYS = frozenset(
    ("workload", "experiment", "scheduler", "options", "trace", "fb_words")
)
_BATCH_KEYS = frozenset(("cases", "trace", "engine"))
_CASE_KEYS = frozenset(
    ("workload", "experiment", "scheduler", "options", "fb_words")
)


class ServiceError(ReproError):
    """A request the service rejects with a specific HTTP status."""

    def __init__(self, status: int, message: str, *,
                 kind: str = "BadRequest"):
        super().__init__(message)
        self.status = status
        self.kind = kind


# -- canonical JSON ------------------------------------------------------


def encode_json(payload: Any) -> bytes:
    """The one response/keying serialiser: sorted keys, no whitespace.

    Every response body and every single-flight key goes through this,
    so two requests for the same computation produce byte-identical
    payloads no matter which worker, cache generation or request
    ordering served them.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def request_key(endpoint: str, body: Dict[str, Any]) -> str:
    """Single-flight identity of a request: endpoint + canonical body.

    Parsing then re-encoding canonically makes the key insensitive to
    client-side whitespace and key ordering — N concurrent clients
    asking the same question coalesce regardless of how their JSON
    serialisers format it.
    """
    digest = hashlib.sha256()
    digest.update(endpoint.encode("utf-8"))
    digest.update(b"\0")
    digest.update(encode_json(body))
    return digest.hexdigest()


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


# -- payload builders ----------------------------------------------------


def error_payload(kind: str, message: str,
                  **extra: Any) -> Dict[str, Any]:
    """The uniform error body: ``{"ok": false, "error": {...}}``."""
    error: Dict[str, Any] = {"type": kind, "message": message}
    error.update(extra)
    return {"ok": False, "error": error}


def outcome_payload(outcome, *, workload: str) -> Dict[str, Any]:
    """JSON-ready dump of one :class:`~repro.analysis.compare.
    SchedulerOutcome`.

    Every key is always present (``null`` when not applicable) so the
    response shape is stable for clients and byte-comparable in the
    equivalence tests.  Infeasible outcomes carry the structured
    ``cluster``/``required``/``available`` numbers — the same ones the
    CLI renders — under ``"error"``.
    """
    payload: Dict[str, Any] = {
        "ok": True,
        "workload": workload,
        "scheduler": outcome.scheduler,
        "feasible": outcome.feasible,
        "schedule": None,
        "report": None,
        "infeasible_reason": outcome.infeasible_reason,
        "error": None,
    }
    if outcome.feasible:
        schedule = outcome.schedule
        payload["schedule"] = {
            "rf": schedule.rf,
            "rounds": schedule.rounds,
            "describe": schedule.describe(),
        }
        payload["report"] = report_to_dict(outcome.report)
    elif outcome.error is not None:
        payload["error"] = {
            "type": type(outcome.error).__name__,
            "message": str(outcome.error),
            "cluster": outcome.error.cluster,
            "required": outcome.error.required,
            "available": outcome.error.available,
        }
    return payload


# -- request parsing -----------------------------------------------------


def _reject_unknown_keys(body: Dict[str, Any], allowed: frozenset,
                         where: str) -> None:
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise ServiceError(
            400, f"unknown {where} key(s): {', '.join(unknown)}"
        )


def _parse_options(data: Any) -> ScheduleOptions:
    if data is None:
        return ScheduleOptions()
    if not isinstance(data, dict):
        raise ServiceError(400, "options must be a JSON object")
    unknown = sorted(set(data) - _OPTION_FIELDS)
    if unknown:
        raise ServiceError(
            400, f"unknown option(s): {', '.join(unknown)}"
        )
    try:
        return ScheduleOptions(**data)
    except (TypeError, ValueError, ReproError) as exc:
        raise ServiceError(400, f"invalid options: {exc}") from exc


def _parse_case(body: Dict[str, Any]):
    """One case dict -> ``(name, application, clustering, architecture,
    scheduler_name, options)``."""
    workload = body.get("workload")
    experiment = body.get("experiment")
    if (workload is None) == (experiment is None):
        raise ServiceError(
            400, "exactly one of 'workload' or 'experiment' is required"
        )
    if workload is not None:
        if not isinstance(workload, dict):
            raise ServiceError(400, "workload must be a JSON object")
        try:
            case = FuzzCase.from_dict(workload)
        except (KeyError, TypeError, AttributeError, ValueError) as exc:
            raise ServiceError(
                400, f"malformed workload: {exc!r}"
            ) from exc
        try:
            application, clustering = case.build()
        except ReproError as exc:
            raise ServiceError(400, f"invalid workload: {exc}") from exc
        name = case.name
        fb_words: Any = body.get("fb_words", case.fb_words)
    else:
        from repro.workloads.spec import paper_experiments

        spec = next(
            (item for item in paper_experiments() if item.id == experiment),
            None,
        )
        if spec is None:
            known = ", ".join(item.id for item in paper_experiments())
            raise ServiceError(
                400, f"unknown experiment {experiment!r}; known: {known}"
            )
        application, clustering = spec.build()
        name = spec.id
        fb_words = body.get("fb_words", spec.fb)
    try:
        architecture = Architecture.m1(fb_words)
    except (TypeError, ValueError, ReproError) as exc:
        raise ServiceError(400, f"invalid fb_words: {exc}") from exc
    scheduler_name = body.get("scheduler", "cds")
    if scheduler_name not in SCHEDULERS:
        known = ", ".join(sorted(SCHEDULERS))
        raise ServiceError(
            400, f"unknown scheduler {scheduler_name!r}; known: {known}"
        )
    options = _parse_options(body.get("options"))
    return name, application, clustering, architecture, scheduler_name, options


def _parse_trace(body: Dict[str, Any], default: bool = True) -> bool:
    trace = body.get("trace", default)
    if not isinstance(trace, bool):
        raise ServiceError(400, "trace must be a boolean")
    return trace


# -- execution (worker entry point) --------------------------------------


def _make_cache(cache_dir: Optional[str]):
    if cache_dir is None:
        return None
    from repro.cache import CacheStore

    return CacheStore(cache_dir)


def _execute_schedule(body: Dict[str, Any],
                      cache_dir: Optional[str]) -> Tuple[int, Dict]:
    _reject_unknown_keys(body, _SCHEDULE_KEYS, "request")
    name, application, clustering, architecture, scheduler_name, options = (
        _parse_case(body)
    )
    trace = _parse_trace(body)
    scheduler = SCHEDULERS[scheduler_name](architecture, options)
    outcome = run_scheduler(
        scheduler, application, clustering, architecture,
        trace=trace, cache=_make_cache(cache_dir),
    )
    return 200, outcome_payload(outcome, workload=name)


def _execute_batch(body: Dict[str, Any],
                   cache_dir: Optional[str]) -> Tuple[int, Dict]:
    _reject_unknown_keys(body, _BATCH_KEYS, "request")
    cases = body.get("cases")
    if not isinstance(cases, list) or not cases:
        raise ServiceError(400, "cases must be a non-empty JSON array")
    trace = _parse_trace(body)
    engine = body.get("engine", "batch")
    if engine not in ("batch", "reference"):
        raise ServiceError(
            400, f"unknown engine {engine!r}; known: batch, reference"
        )
    names = []
    items = []
    for index, case_body in enumerate(cases):
        if not isinstance(case_body, dict):
            raise ServiceError(400, f"cases[{index}] must be a JSON object")
        _reject_unknown_keys(case_body, _CASE_KEYS, f"cases[{index}]")
        (name, application, clustering, architecture, scheduler_name,
         options) = _parse_case(case_body)
        names.append(name)
        items.append(
            (scheduler_name, application, clustering, architecture,
             options, None)
        )
    outcomes = run_pipeline_batch(
        items, trace=trace, cache=_make_cache(cache_dir), engine=engine,
    )
    results = [
        outcome_payload(outcome, workload=name)
        for name, outcome in zip(names, outcomes)
    ]
    return 200, {"ok": True, "count": len(results), "results": results}


_ENDPOINTS = {
    "schedule": _execute_schedule,
    "batch": _execute_batch,
}


def execute_request(
    endpoint: str,
    body: Dict[str, Any],
    cache_dir: Optional[str] = None,
) -> Tuple[int, Dict[str, Any], Dict[str, Any]]:
    """Run one parsed request; the worker-pool entry point.

    Returns ``(http_status, response_payload, metrics_snapshot)`` and
    never raises: every failure mode is folded into a status + error
    payload so a bad request can not poison the worker or the pool.
    Top-level (picklable) so process-mode pools can dispatch it, and
    wrapped in :func:`~repro.obs.metrics.request_scope` so pipeline
    stage timings and cache counters come back with the response
    instead of interleaving with other requests' samples.
    """
    with metrics.request_scope(merge_into_global=False) as registry:
        try:
            handler = _ENDPOINTS[endpoint]
        except KeyError:
            return (
                404,
                error_payload("NotFound", f"unknown endpoint {endpoint!r}"),
                registry.snapshot(),
            )
        try:
            status, payload = handler(body, cache_dir)
        except ServiceError as exc:
            status, payload = exc.status, error_payload(exc.kind, str(exc))
        except LintError as exc:
            status = 422
            payload = error_payload(
                "LintError", str(exc),
                diagnostics=[
                    diagnostic.to_json() for diagnostic in exc.diagnostics
                ],
            )
        except ReproError as exc:
            status = 400
            payload = error_payload(type(exc).__name__, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            status = 500
            payload = error_payload(
                "InternalError", f"{type(exc).__name__}: {exc}"
            )
    return status, payload, registry.snapshot()
