"""Service benchmark: a seeded loadgen campaign with a fresh cache.

:func:`run_service_bench` self-hosts a service on a temporary cache
directory, fires a zipf-skewed loadgen burst at it, and returns the
loadgen payload plus the knobs used — the content of
``BENCH_service.json``.  The headline numbers (``service_p50`` /
``service_p99`` request latency) are folded into the ``scalability``
section of :func:`repro.analysis.bench.run_bench`'s payload, which
puts them under the existing ``repro bench --compare`` regression
gate with no new gating machinery.

Quick mode shrinks the client fleet for CI smoke; the full
configuration is the acceptance run (>= 1000 concurrent clients).
"""

from __future__ import annotations

import tempfile
from typing import Any, Dict

from repro.service.loadgen import run_loadgen

__all__ = ["run_service_bench"]

#: Acceptance-run fleet size; quick mode divides it down for CI smoke.
FULL_CLIENTS = 1000
QUICK_CLIENTS = 200


def run_service_bench(
    *, quick: bool = False, seed: int = 0, jobs: int = 4
) -> Dict[str, Any]:
    """One reproducible service campaign against a cold cache."""
    clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    requests_per_client = 2 if quick else 3
    distinct = 16 if quick else 32
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        payload = run_loadgen(
            clients=clients,
            requests_per_client=requests_per_client,
            distinct=distinct,
            seed=seed,
            cache_dir=tmp,
            jobs=jobs,
            mode="thread",
        )
    payload["quick"] = quick
    payload["workers"] = {"mode": "thread", "jobs": jobs}
    return payload
