"""Scheduler-as-a-service: async batch API over the repro pipeline.

A dependency-free asyncio HTTP/JSON server that exposes the exact CLI
pipeline (:func:`~repro.analysis.compare.run_scheduler` /
:func:`~repro.analysis.compare.run_pipeline_batch`) as a long-lived
service:

* :mod:`repro.service.protocol` — request schema, worker-side
  execution, canonical JSON encoding (byte-identical to the CLI path);
* :mod:`repro.service.server` — the HTTP front-end with single-flight
  dedup over a shared :class:`~repro.cache.CacheStore` and a
  :class:`~repro.analysis.parallel.WorkerPool` fan-out;
* :mod:`repro.service.loadgen` — zipf-skewed concurrent load harness;
* :mod:`repro.service.bench` — the ``BENCH_service.json`` campaign.

See ``docs/service.md`` for the endpoint and schema reference.
"""

from repro.service.protocol import (
    ServiceError,
    encode_json,
    execute_request,
    outcome_payload,
    request_key,
)
from repro.service.server import SchedulerService, ServerThread

__all__ = [
    "SchedulerService",
    "ServerThread",
    "ServiceError",
    "encode_json",
    "execute_request",
    "outcome_payload",
    "request_key",
]
