"""Content-hash keys for the persistent pipeline cache.

Every key digests *content*, never object identity or discovery order:
two processes that build structurally identical workloads under the
same architecture and options derive the same key, which is what lets
the on-disk store in :mod:`repro.cache.store` be shared across worker
processes and across runs.  :func:`workload_fingerprint` is the
canonical description the in-process :class:`~repro.analysis.parallel.
PlanMemo` already keyed on; the persistent keys extend it with the full
option set and the simulation-side knobs (DMA policy, tracing) so a hit
guarantees a byte-identical :class:`~repro.sim.report.SimulationReport`,
not just a byte-identical schedule.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.schedule.base import ScheduleOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.fuzz.case import FuzzCase

__all__ = [
    "arch_fingerprint",
    "case_key",
    "digest",
    "options_fingerprint",
    "outcome_key",
    "workload_fingerprint",
]


def digest(payload: tuple) -> str:
    """SHA-256 hex digest of a canonical payload tuple.

    The payload must already be canonical (plain data, deterministic
    order); ``repr`` of such tuples is stable across processes.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def workload_fingerprint(
    application: Application, clustering: Clustering
) -> tuple:
    """Canonical, identity-free description of a (app, clustering) pair."""
    kernels = tuple(
        (
            kernel.name,
            kernel.context_words,
            kernel.cycles,
            tuple(kernel.inputs),
            tuple(kernel.outputs),
        )
        for kernel in application.kernels
    )
    objects = tuple(
        sorted(
            (obj.name, obj.size, obj.invariant)
            for obj in application.objects.values()
        )
    )
    clusters = tuple(
        (cluster.index, tuple(cluster.kernel_names), cluster.fb_set)
        for cluster in clustering
    )
    return (
        application.name,
        application.total_iterations,
        kernels,
        objects,
        tuple(sorted(application.final_outputs)),
        clusters,
    )


def arch_fingerprint(architecture: Architecture) -> tuple:
    """Every architecture parameter the pipeline reads."""
    timing = architecture.timing
    return (
        architecture.fb_set_words,
        architecture.rc_rows,
        architecture.rc_cols,
        architecture.fb_sets,
        architecture.context_block_words,
        architecture.context_blocks,
        architecture.fb_cross_set_access,
        timing.data_word_cycles,
        timing.context_word_cycles,
        timing.dma_setup_cycles,
    )


def options_fingerprint(options: ScheduleOptions) -> tuple:
    """Every :class:`ScheduleOptions` field, in declaration order.

    Unlike the in-process plan memo — which may omit fields that cannot
    change the plan — the persistent cache digests *all* fields: a hit
    must reproduce the full outcome (including attached decision traces
    and lint behaviour), and a new field added without updating this
    fingerprint would poison caches silently.
    """
    return (
        options.rf_cap,
        options.keep_policy,
        options.rf_policy,
        options.cross_set_retention,
        options.strict_lint,
        options.strict_hazards,
        options.occupancy_engine,
        options.decision_trace,
    )


def outcome_key(
    scheduler_name: str,
    application: Application,
    clustering: Clustering,
    architecture: Architecture,
    *,
    options: ScheduleOptions,
    dma_policy: str = "contexts_first",
    trace: bool = False,
) -> str:
    """Key for one full pipeline outcome (schedule + program + report).

    Digests everything the compile+simulate pipeline reads: workload
    structure, architecture, the complete option set, the DMA ordering
    policy and whether the per-transfer trace was recorded (traced and
    untraced reports differ in their ``transfers`` payload).
    """
    return digest((
        "outcome",
        scheduler_name,
        workload_fingerprint(application, clustering),
        arch_fingerprint(architecture),
        options_fingerprint(options),
        dma_policy,
        trace,
    ))


def case_key(case: "FuzzCase") -> str:
    """Content key for one fuzz case.

    Digests the workload and architecture payload of a
    :class:`~repro.fuzz.case.FuzzCase` but *not* its name, provenance
    (regime/seed) or corpus markers: a renamed reproducer of the same
    workload hits the same entry.
    """
    objects = tuple(
        sorted(
            (name, spec["size"], bool(spec.get("invariant", False)))
            for name, spec in case.objects.items()
        )
    )
    kernels = tuple(
        (
            kernel["name"],
            kernel["context_words"],
            kernel["cycles"],
            tuple(kernel["inputs"]),
            tuple(kernel["outputs"]),
        )
        for kernel in case.kernels
    )
    return digest((
        "case",
        case.total_iterations,
        objects,
        kernels,
        tuple(sorted(case.finals)),
        tuple(tuple(group) for group in case.groups),
        tuple(case.fb_sets) if case.fb_sets is not None else None,
        case.fb_words,
    ))
