"""Persistent, content-addressed pipeline cache.

:class:`CacheStore` memoizes expensive pipeline products — schedules,
programs, simulation reports, oracle verdicts — on disk, keyed by the
content hashes of :mod:`repro.cache.keys`.  Unlike the in-process
:class:`~repro.analysis.parallel.PlanMemo` it survives across worker
processes and across runs, which is what makes warm campaign reruns
(corpus, sweep, ablation, fuzz) skip compile+sim entirely.

Three properties keep it safe:

* **Versioned invalidation.**  Entries live under a generation
  directory named by :func:`code_fingerprint`, a digest of every
  ``repro`` source file.  Any code change starts a fresh generation;
  stale generations are inert bytes until ``repro cache clear``.
* **Atomic writes.**  Values are pickled to a temporary file and
  :func:`os.replace`\\ d into place, so concurrent workers and killed
  runs can never publish a torn entry.  The tag file is published the
  same way, and directory creation retries around a concurrent
  ``clear()`` — two processes ``put()``-ing the same key, or a put
  racing a clear, can never corrupt each other (stress-tested in
  ``tests/cache/test_store_concurrency.py``).
* **Corruption tolerance.**  Unreadable or truncated entries read as
  misses and are deleted (only if the entry on disk is still the bytes
  that failed to load — a concurrent rewrite is left alone); the cache
  is a pure accelerator and must never be able to fail a run.

Hits and misses are counted on the :class:`~repro.obs.metrics.
MetricsRegistry` (scope ``cache``) when metrics are active.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import metrics

__all__ = ["CacheStore", "code_fingerprint", "default_cache_dir"]

#: Marker file written at the cache root.  ``clear()`` refuses to
#: delete a directory that does not carry it, so a mistyped
#: ``--cache-dir`` can never vaporise unrelated files.
TAG_FILE = "CACHE.tag"
TAG_CONTENT = "repro pipeline cache v1\n"

_ENV_VAR = "REPRO_CACHE_DIR"

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (memoised per process).

    The cache generation key: two processes share entries only when
    they run byte-identical pipeline code.  Hashing file *contents*
    (not mtimes) keeps the fingerprint stable across checkouts and
    container rebuilds of the same revision.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        hasher = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            hasher.update(str(path.relative_to(package_root)).encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _code_fingerprint = hasher.hexdigest()
    return _code_fingerprint


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache`` in the CWD."""
    env = os.environ.get(_ENV_VAR)
    return Path(env) if env else Path(".repro-cache")


class CacheStore:
    """On-disk ``key -> pickled value`` store with generation dirs.

    Layout::

        <root>/CACHE.tag
        <root>/<fingerprint[:16]>/<key[:2]>/<key>.pkl

    The two-character fan-out directory keeps any single directory
    small; the 16-character generation prefix keeps paths readable
    while staying far beyond collision range for code revisions.
    """

    def __init__(
        self, root: Optional[Union[str, "os.PathLike[str]"]] = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self._generation = self.root / code_fingerprint()[:16]
        self.hits = 0
        self.misses = 0

    # -- entry access -----------------------------------------------------

    def _path(self, key: str) -> Path:
        return self._generation / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss.

        ``None`` is therefore not a cacheable value; pipeline products
        never are ``None`` (wrap in a tuple if one ever must be).
        """
        path = self._path(key)
        stat = None
        try:
            with open(path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            metrics.inc("cache.miss", scope="cache")
            return None
        except Exception:
            # Unreadable (stale-format) entry: drop it and treat as a
            # miss — but only while the path still holds the bytes we
            # failed to read.  A concurrent put() may have atomically
            # replaced the entry between our open and this cleanup;
            # deleting blindly would vaporise a good fresh entry out
            # from under other readers.
            try:
                if stat is not None and os.stat(path).st_ino == stat.st_ino:
                    os.remove(path)
            except OSError:
                pass
            self.misses += 1
            metrics.inc("cache.miss", scope="cache")
            return None
        self.hits += 1
        metrics.inc("cache.hit", scope="cache")
        return value

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* (atomic; last writer wins).

        Safe against a concurrent :meth:`clear`: the generation and
        fan-out directories may vanish between ``mkdir`` and the
        rename, so the write retries (re-creating them) a few times
        and then gives up silently — the cache is an accelerator, a
        lost entry under a clear storm is a miss, never an error.
        """
        path = self._path(key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._ensure_tag()
        for _ in range(3):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
            except (FileExistsError, FileNotFoundError):
                # Even with exist_ok=True a racing clear() can slip
                # between the EEXIST and pathlib's is_dir() re-check
                # (or remove a freshly made parent); retry.
                continue
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=str(path.parent), suffix=".tmp"
                )
            except FileNotFoundError:
                # clear() removed the directory between mkdir and
                # mkstemp; re-create and retry.
                continue
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except FileNotFoundError:
                # The directory vanished under the rename; retry.
                self._remove_quietly(tmp)
                continue
            except BaseException:
                self._remove_quietly(tmp)
                raise
            metrics.inc("cache.put", scope="cache")
            return
        metrics.inc("cache.put_dropped", scope="cache")

    def _ensure_tag(self) -> None:
        """Publish the tag marker atomically (racing writers are fine)."""
        tag = self.root / TAG_FILE
        if tag.exists():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tag.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(TAG_CONTENT)
            os.replace(tmp, tag)
        except BaseException:
            self._remove_quietly(tmp)
            raise

    @staticmethod
    def _remove_quietly(path: Union[str, Path]) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    # -- maintenance ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Entry counts and sizes, split current vs stale generations."""
        entries = 0
        stale_entries = 0
        total_bytes = 0
        generations = 0
        if self.root.is_dir():
            for child in sorted(self.root.iterdir()):
                if not child.is_dir():
                    continue
                generations += 1
                for entry in child.rglob("*.pkl"):
                    total_bytes += entry.stat().st_size
                    if child == self._generation:
                        entries += 1
                    else:
                        stale_entries += 1
        return {
            "root": str(self.root),
            "code_fingerprint": code_fingerprint()[:16],
            "generations": generations,
            "entries": entries,
            "stale_entries": stale_entries,
            "total_bytes": total_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Refuses to touch a directory that exists but does not carry the
        :data:`TAG_FILE` marker — ``clear()`` must never be able to
        recursively delete a directory this store did not populate.

        Safe against concurrent writers and readers: entries that
        vanish mid-walk (a racing reader's corrupt-entry cleanup, or a
        second clear) are skipped, and a directory re-populated by a
        racing :meth:`put` after we emptied it is left standing rather
        than crashing the walk with ``ENOTEMPTY``.  Published entries
        are only ever whole files (writers rename complete temp files
        into place), so a clear can never expose a half-written entry
        to a reader — it either removes a complete file or nothing.
        """
        if not self.root.exists():
            return 0
        if not (self.root / TAG_FILE).exists():
            raise ValueError(
                f"{self.root} does not look like a repro cache "
                f"(missing {TAG_FILE}); refusing to clear it"
            )
        removed = 0
        try:
            children = sorted(self.root.iterdir())
        except FileNotFoundError:
            return 0
        for child in children:
            if not child.is_dir():
                continue
            for dirpath, dirnames, filenames in os.walk(
                child, topdown=False
            ):
                for name in filenames:
                    try:
                        os.remove(os.path.join(dirpath, name))
                    except OSError:
                        continue
                    if name.endswith(".pkl"):
                        removed += 1
                try:
                    os.rmdir(dirpath)
                except OSError:
                    # Re-populated by a concurrent put (ENOTEMPTY) or
                    # already gone (ENOENT); either way, leave it.
                    pass
        return removed
