"""Persistent cross-run pipeline cache.

Content-addressed keys (:mod:`repro.cache.keys`) plus an on-disk,
generation-versioned store (:mod:`repro.cache.store`): together they
memoize ``(workload, architecture, options) -> schedule + program +
SimulationReport`` across processes and runs.  See
``docs/performance.md`` for the keying and invalidation rules.
"""

from repro.cache.keys import (
    arch_fingerprint,
    case_key,
    digest,
    options_fingerprint,
    outcome_key,
    workload_fingerprint,
)
from repro.cache.store import CacheStore, code_fingerprint, default_cache_dir

__all__ = [
    "CacheStore",
    "arch_fingerprint",
    "case_key",
    "code_fingerprint",
    "default_cache_dir",
    "digest",
    "options_fingerprint",
    "outcome_key",
    "workload_fingerprint",
]
