"""Seeded random application generator (for property-based testing).

Generates valid, schedulable-looking applications with a controllable
amount of cross-cluster sharing.  The generator is deliberately biased
towards the structures the schedulers care about: chains with external
inputs, intermediates, shared data with same-set consumers and shared
results.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import WorkloadError

__all__ = ["random_application"]


def random_application(
    seed: int,
    *,
    max_clusters: int = 5,
    max_kernels_per_cluster: int = 3,
    max_object_words: int = 256,
    iterations: Optional[int] = None,
    min_object_words: int = 8,
    min_kernels_per_cluster: int = 1,
    invariant_tables: int = 0,
    invariant_table_words: Optional[Tuple[int, int]] = None,
) -> Tuple[Application, Clustering]:
    """Build a random valid application and clustering.

    The same *seed* always yields the same application; with the default
    arguments the RNG stream (and hence the generated application) is
    identical to what this generator has always produced, so historical
    seeds stay reproducible.  The extra knobs open the adversarial
    regimes the differential fuzz harness (:mod:`repro.fuzz`) sweeps:
    deep result chains, tiny or huge objects, and large
    iteration-invariant tables shared across clusters.

    Args:
        seed: RNG seed.
        max_clusters: upper bound on cluster count (at least 2 used).
        max_kernels_per_cluster: upper bound on kernels per cluster.
        max_object_words: upper bound on object sizes.
        iterations: total iterations; random in [2, 24] when omitted.
        min_object_words: lower bound on object sizes.
        min_kernels_per_cluster: lower bound on kernels per cluster
            (raise it to force deep within-cluster result chains).
        invariant_tables: number of iteration-invariant shared tables
            (coefficient banks, LUTs) consumed by 2+ random clusters.
        invariant_table_words: inclusive ``(low, high)`` size range of
            the invariant tables; defaults to
            ``(max_object_words, 4 * max_object_words)`` — deliberately
            large, since a kept invariant table occupies ``size`` words
            rather than ``RF * size`` and thus stresses the keep
            acceptance maths.
    """
    rng = np.random.RandomState(seed)
    n_clusters = int(rng.randint(2, max_clusters + 1))
    sizes = [int(rng.randint(min_kernels_per_cluster,
                             max_kernels_per_cluster + 1))
             for _ in range(n_clusters)]
    total_iterations = (
        iterations if iterations is not None else int(rng.randint(2, 25))
    )

    def words() -> int:
        return int(rng.randint(min_object_words, max_object_words + 1))

    builder = Application.build(
        f"random-{seed}", total_iterations=total_iterations
    )

    # Shared data: a few tables consumed by 2-3 random clusters.
    shared_names: List[Tuple[str, List[int]]] = []
    for index in range(int(rng.randint(0, 3))):
        consumers = sorted(
            rng.choice(n_clusters, size=min(n_clusters, 2 + index % 2),
                       replace=False).tolist()
        )
        if len(consumers) < 2:
            continue
        name = f"table{index}"
        builder.data(name, words())
        shared_names.append((name, consumers))

    # Iteration-invariant tables (fuzz regime): large coefficient banks
    # consumed by 2+ clusters.  The whole block is guarded so the
    # default of zero tables draws nothing from the RNG — historical
    # seeds keep producing byte-identical applications.
    invariant_names: List[Tuple[str, List[int]]] = []
    if invariant_tables > 0:
        low, high = invariant_table_words or (
            max_object_words, 4 * max_object_words
        )
        for index in range(invariant_tables):
            consumers = sorted(
                rng.choice(n_clusters, size=min(n_clusters, 2 + index % 2),
                           replace=False).tolist()
            )
            name = f"inv{index}"
            builder.data(name, int(rng.randint(low, high + 1)), invariant=True)
            invariant_names.append((name, consumers))

    # Shared results: last kernel of a cluster feeding a later cluster.
    shared_result_plan: List[Tuple[int, int, str]] = []
    for index in range(int(rng.randint(0, 3))):
        if n_clusters < 2:
            break
        producer = int(rng.randint(0, n_clusters - 1))
        consumer = int(rng.randint(producer + 1, n_clusters))
        shared_result_plan.append((producer, consumer, f"xres{index}"))

    groups: List[List[str]] = []
    for cluster_index, kernel_count in enumerate(sizes):
        group: List[str] = []
        previous: Optional[str] = None
        for kernel_index in range(kernel_count):
            kernel_name = f"c{cluster_index}k{kernel_index}"
            group.append(kernel_name)
            inputs: List[str] = []
            ext = f"in_{cluster_index}_{kernel_index}"
            builder.data(ext, words())
            inputs.append(ext)
            if previous is not None:
                inputs.append(previous)
            if kernel_index == 0:
                for name, consumers in shared_names:
                    if cluster_index in consumers:
                        inputs.append(name)
                for name, consumers in invariant_names:
                    if cluster_index in consumers:
                        inputs.append(name)
                for producer, consumer, name in shared_result_plan:
                    if consumer == cluster_index:
                        inputs.append(name)
            outputs: List[str] = []
            result_sizes = {}
            if kernel_index < kernel_count - 1:
                inter = f"mid_{cluster_index}_{kernel_index}"
                outputs.append(inter)
                result_sizes[inter] = words()
                previous = inter
            else:
                final = f"out_{cluster_index}"
                outputs.append(final)
                result_sizes[final] = words()
                builder.final(final)
                for producer, consumer, name in shared_result_plan:
                    if producer == cluster_index:
                        outputs.append(name)
                        result_sizes[name] = words()
            builder.kernel(
                kernel_name,
                context_words=int(rng.randint(8, 161)),
                cycles=int(rng.randint(50, 1200)),
                inputs=inputs,
                outputs=outputs,
                result_sizes=result_sizes,
            )
        groups.append(group)
    try:
        application = builder.finish()
    except Exception as exc:  # pragma: no cover — generator invariant
        raise WorkloadError(f"random_application({seed}) invalid: {exc}") from exc
    return application, Clustering(application, groups)
