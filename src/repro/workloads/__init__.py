"""Workloads: the paper's experiments and generators.

The evaluation (paper section 6, Table 1 / Figure 6) uses a group of
synthetic experiments (E1, E1*, E2, E3) and real applications — MPEG
(video compression) and ATR (automatic target recognition), each under
several kernel schedules and frame-buffer sizes.

The source text of Table 1 is partially illegible (the ``N``, ``n`` and
``DS`` columns are corrupted); each workload here is reconstructed from
the legible columns (``DT``, ``RF``, ``FB``, the improvement
percentages) and the paper's qualitative claims.  EXPERIMENTS.md
records, per row, which numbers are verbatim and which are
reconstructed.
"""

from repro.workloads.atr import atr_fi, atr_fi_star, atr_fi_star2, atr_sld, atr_sld_star, atr_sld_star2
from repro.workloads.mpeg import mpeg, mpeg_functional, mpeg_star
from repro.workloads.random_gen import random_application
from repro.workloads.spec import ExperimentSpec, paper_experiments
from repro.workloads.synthetic import e1, e1_star, e2, e3, synthetic_chain

__all__ = [
    "ExperimentSpec",
    "atr_fi",
    "atr_fi_star",
    "atr_fi_star2",
    "atr_sld",
    "atr_sld_star",
    "atr_sld_star2",
    "e1",
    "e1_star",
    "e2",
    "e3",
    "mpeg",
    "mpeg_functional",
    "mpeg_star",
    "paper_experiments",
    "random_application",
    "synthetic_chain",
]
