"""The experiment registry: Table 1's twelve rows, with paper targets.

Each :class:`ExperimentSpec` couples a workload builder with the
frame-buffer size it is evaluated at and the paper's reported numbers
(where legible in the source text).  ``paper_*`` fields marked ``None``
were illegible; EXPERIMENTS.md documents the reconstruction.

The ATR-FI* row of the source text reads ``DS=61%, CDS=35%`` — the only
row where CDS would be *worse* than DS, contradicting the paper's own
claim that "The Complete Data Scheduler always minimizes time avoiding
unnecessary transfers"; we treat the two figures as transposed by the
OCR and record ``DS=35%, CDS=61%``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.units import parse_size

__all__ = ["ExperimentSpec", "paper_experiments"]

Builder = Callable[[], Tuple[Application, Clustering]]


@dataclass(frozen=True)
class ExperimentSpec:
    """One Table-1 row.

    Attributes:
        id: row label (``"E1"``, ``"MPEG*"``, ``"ATR-SLD**"``, ...).
        build: zero-argument builder returning (application, clustering).
        fb: frame-buffer set size for this row (paper ``FB`` column).
        paper_rf: the paper's reuse factor, if legible.
        paper_dt_words: the paper's data transfers avoided per
            iteration (``DT``), in words, if legible.
        paper_ds_pct: the paper's Data Scheduler improvement (%) over
            the Basic Scheduler.
        paper_cds_pct: the paper's Complete Data Scheduler improvement.
        notes: reconstruction caveats.
    """

    id: str
    build: Builder
    fb: str
    paper_rf: Optional[int] = None
    paper_dt_words: Optional[int] = None
    paper_ds_pct: Optional[float] = None
    paper_cds_pct: Optional[float] = None
    notes: str = ""

    @property
    def fb_words(self) -> int:
        return parse_size(self.fb)


def paper_experiments() -> Tuple[ExperimentSpec, ...]:
    """All twelve rows of Table 1, in the paper's order."""
    from repro.workloads.atr import (
        atr_fi, atr_fi_star, atr_fi_star2,
        atr_sld, atr_sld_star, atr_sld_star2,
    )
    from repro.workloads.mpeg import mpeg as build_mpeg, mpeg_star
    from repro.workloads.synthetic import e1, e1_star, e2, e3

    k = parse_size  # shorthand for "0.3K"-style values

    return (
        ExperimentSpec(
            id="E1", build=e1, fb="1K",
            paper_rf=1, paper_dt_words=k("2K"),
            paper_ds_pct=0.0, paper_cds_pct=19.0,
        ),
        ExperimentSpec(
            id="E1*", build=e1_star, fb="2K",
            paper_rf=3, paper_dt_words=k("2K"),
            paper_ds_pct=38.0, paper_cds_pct=58.0,
            notes="same application as E1, larger frame buffer",
        ),
        ExperimentSpec(
            id="E2", build=e2, fb="2K",
            paper_rf=3, paper_dt_words=k("0.8K"),
            paper_ds_pct=44.0, paper_cds_pct=48.0,
        ),
        ExperimentSpec(
            id="E3", build=e3, fb="3K",
            paper_rf=11, paper_dt_words=k("0.6K"),
            paper_ds_pct=67.0, paper_cds_pct=76.0,
        ),
        ExperimentSpec(
            id="MPEG", build=build_mpeg, fb="2K",
            paper_rf=2, paper_dt_words=k("0.1K"),
            paper_ds_pct=30.0, paper_cds_pct=45.0,
            notes="Basic Scheduler infeasible at FB=1K (paper claim)",
        ),
        ExperimentSpec(
            id="MPEG*", build=mpeg_star, fb="3K",
            paper_rf=4, paper_dt_words=k("0.1K"),
            paper_ds_pct=35.0, paper_cds_pct=50.0,
        ),
        ExperimentSpec(
            id="ATR-SLD", build=atr_sld, fb="8K",
            paper_rf=1, paper_dt_words=k("6K"),
            paper_ds_pct=15.0, paper_cds_pct=32.0,
        ),
        ExperimentSpec(
            id="ATR-SLD*", build=atr_sld_star, fb="8K",
            paper_rf=1, paper_dt_words=k("8K"),
            paper_ds_pct=0.0, paper_cds_pct=60.0,
            notes="alternative kernel schedule, same memory",
        ),
        ExperimentSpec(
            id="ATR-SLD**", build=atr_sld_star2, fb="8K",
            paper_rf=1, paper_dt_words=k("6K"),
            paper_ds_pct=13.0, paper_cds_pct=27.0,
            notes="alternative kernel schedule, same memory",
        ),
        ExperimentSpec(
            id="ATR-FI", build=atr_fi, fb="1K",
            paper_rf=2, paper_dt_words=k("0.3K"),
            paper_ds_pct=26.0, paper_cds_pct=30.0,
        ),
        ExperimentSpec(
            id="ATR-FI*", build=atr_fi_star, fb="2K",
            paper_rf=5, paper_dt_words=k("0.3K"),
            paper_ds_pct=35.0, paper_cds_pct=61.0,
            notes="source text reads DS=61/CDS=35; treated as transposed",
        ),
        ExperimentSpec(
            id="ATR-FI**", build=atr_fi_star2, fb="1K",
            paper_rf=2, paper_dt_words=k("0.3K"),
            paper_ds_pct=33.0, paper_cds_pct=37.0,
            notes="alternative kernel schedule",
        ),
    )
