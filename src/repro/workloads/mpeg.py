"""MPEG video-compression workloads.

Two builders:

* :func:`mpeg` — the Table-1-scale MPEG encoder macroblock pipeline
  (motion estimation, motion compensation, DCT, quantisation, the
  reconstruction loop and entropy packing), sized so that the Basic
  Scheduler **cannot** execute it with a 1K frame-buffer set while the
  Data and Complete Data Schedulers can (the paper's feasibility
  claim), and so the scheduled ``RF`` at FB=2K / FB=3K matches the
  paper's 2 / 4.
* :func:`mpeg_functional` — a small 8x8-block pipeline wired to the
  real kernel library (DCT -> quant -> dequant -> IDCT -> zig-zag) so
  the functional simulator computes actual coefficients.

Structure of :func:`mpeg` (clusters alternate FB sets 0,1,0,1):

* ``Cl1`` (set 0): ``me`` (block matching against the reference
  window), ``mc`` (motion-compensated difference);
* ``Cl2`` (set 1): ``dct``, ``quant``;
* ``Cl3`` (set 0): ``iquant``, ``idct``, ``recon`` — reconstruction
  reuses the **reference window** loaded for ``Cl1`` (same set: a
  shared-data retention opportunity) ;
* ``Cl4`` (set 1): ``pack`` (zig-zag / VLC feed) — consumes the
  quantised coefficients produced by ``Cl2`` (same set: a
  shared-result retention opportunity).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.kernels.library import KernelLibrary, default_library

__all__ = ["mpeg", "mpeg_star", "mpeg_functional"]


def _mpeg_app(name: str) -> Tuple[Application, Clustering]:
    mb = 256        # one 16x16 macroblock, in words
    window = 352    # reference search window slice shared by me/mc/recon
    coeff = 256     # coefficient block
    builder = (
        Application.build(name, total_iterations=40)
        .data("cur_mb", mb)           # current macroblock
        .data("ref_window", window)   # reference window (shared Cl1/Cl3)
        .kernel("me", context_words=120, cycles=640,
                inputs=["cur_mb", "ref_window"],
                outputs=["mv"], result_sizes={"mv": 16})
        .kernel("mc", context_words=72, cycles=320,
                inputs=["cur_mb", "ref_window", "mv"],
                outputs=["diff_mb", "mv_out"],
                result_sizes={"diff_mb": mb, "mv_out": 16})
        .kernel("dct", context_words=96, cycles=540,
                inputs=["diff_mb"],
                outputs=["coef"], result_sizes={"coef": coeff})
        .kernel("quant", context_words=48, cycles=240,
                inputs=["coef"],
                outputs=["qcoef"], result_sizes={"qcoef": coeff})
        .kernel("iquant", context_words=48, cycles=240,
                inputs=["qcoef"],
                outputs=["rcoef"], result_sizes={"rcoef": coeff})
        .kernel("idct", context_words=96, cycles=540,
                inputs=["rcoef"],
                outputs=["rdiff"], result_sizes={"rdiff": mb})
        .kernel("recon", context_words=56, cycles=280,
                inputs=["rdiff", "ref_window", "mv_out"],
                outputs=["recon_mb"], result_sizes={"recon_mb": mb})
        .kernel("pack", context_words=64, cycles=360,
                inputs=["qcoef"],
                outputs=["bits"], result_sizes={"bits": 192})
        .final("bits", "recon_mb", "mv_out")
    )
    application = builder.finish()
    clustering = Clustering(
        application,
        [
            ["me", "mc"],
            ["dct", "quant"],
            ["iquant", "idct", "recon"],
            ["pack"],
        ],
    )
    return application, clustering


def mpeg() -> Tuple[Application, Clustering]:
    """The MPEG row of Table 1 (evaluate at FB=2K; paper RF=2)."""
    return _mpeg_app("MPEG")


def mpeg_star() -> Tuple[Application, Clustering]:
    """MPEG*: the same pipeline evaluated at FB=3K (paper RF=4)."""
    return _mpeg_app("MPEG*")


def mpeg_functional(
    library: KernelLibrary = None,
) -> Tuple[Application, Clustering, Dict]:
    """A small, fully-functional 8x8 coding loop using the real kernel
    library.

    Returns ``(application, clustering, kernel_impls)`` ready to pass
    to the functional simulator: the pipeline computes an actual DCT,
    quantises, reconstructs and zig-zag-packs each block.
    """
    library = library or default_library()
    block = 64  # 8x8
    builder = (
        Application.build("MPEG-functional", total_iterations=6)
        .data("x", block)
        .kernel("dct", context_words=24, cycles=320,
                inputs=["x"], outputs=["y"], result_sizes={"y": block},
                library_op="dct8x8")
        .kernel("quant", context_words=8, cycles=130,
                inputs=["y"], outputs=["q"], result_sizes={"q": block},
                library_op="quant8x8")
        .kernel("dequant", context_words=6, cycles=120,
                inputs=["q"], outputs=["yr"], result_sizes={"yr": block},
                library_op="dequant8x8")
        .kernel("idct", context_words=28, cycles=330,
                inputs=["yr"], outputs=["xr"], result_sizes={"xr": block},
                library_op="idct8x8")
        .kernel("pack", context_words=10, cycles=150,
                inputs=["q"], outputs=["z"], result_sizes={"z": block},
                library_op="zigzag_pack")
        .final("xr", "z")
    )
    application = builder.finish()
    clustering = Clustering(
        application,
        [["dct", "quant"], ["dequant", "idct"], ["pack"]],
    )
    impls = library.impls_for(application)
    return application, clustering, impls
