"""Synthetic experiments E1, E1*, E2, E3 and the generator behind them.

"Synthetic experiments have been generated manually in order to
consider additional features that are not present in the analyzed real
applications.  The experiments differ in data dependencies, number of
kernels, number of clusters, and data and result sizes" (paper,
section 6).

:func:`synthetic_chain` builds a family of layered applications: each
cluster is a chain of kernels (external input + predecessor's
intermediate in, intermediate out, final result at the end), decorated
with cross-cluster shared data and shared results.  The E* instances
are calibrated so the scheduled ``RF`` at the paper's frame-buffer size
matches the paper's ``RF`` column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import WorkloadError
from repro.units import parse_size

__all__ = [
    "SharedDataSpec",
    "SharedResultSpec",
    "synthetic_chain",
    "e1",
    "e1_star",
    "e2",
    "e3",
]


@dataclass(frozen=True)
class SharedDataSpec:
    """External data consumed by several clusters.

    Attributes:
        name: object name.
        size: words per iteration.
        clusters: consuming cluster indices (consumed by the first
            kernel of each).
        invariant: iteration-invariant contents (coefficient tables).
    """

    name: str
    size: int
    clusters: Tuple[int, ...]
    invariant: bool = False


@dataclass(frozen=True)
class SharedResultSpec:
    """A result of one cluster consumed by later clusters.

    Attributes:
        producer: producing cluster index (emitted by its last kernel).
        consumers: consuming cluster indices (first kernel of each).
        size: words per iteration.
        final: the result is additionally an application output.
    """

    producer: int
    consumers: Tuple[int, ...]
    size: int
    final: bool = False

    @property
    def name(self) -> str:
        return f"R{self.producer + 1}_" + "_".join(
            str(c + 1) for c in self.consumers
        )


def synthetic_chain(
    name: str,
    *,
    n_clusters: int,
    kernels_per_cluster: Union[int, Sequence[int]],
    iterations: int,
    input_words: int,
    inter_words: int,
    final_words: int,
    context_words: int,
    cycles: int,
    shared_data: Sequence[SharedDataSpec] = (),
    shared_results: Sequence[SharedResultSpec] = (),
) -> Tuple[Application, Clustering]:
    """Build a layered synthetic application.

    Cluster ``i`` holds kernels ``k{i+1}_{j+1}``; kernel ``j`` of a
    cluster consumes its own external input ``d{i+1}_{j+1}`` plus its
    predecessor's intermediate result, and the cluster's last kernel
    emits a final output ``f{i+1}``.  Shared data attach to the first
    kernel of each consuming cluster; shared results flow from the last
    kernel of the producer to the first kernel of each consumer.

    Returns:
        ``(application, clustering)`` with clusters alternating FB sets.
    """
    if n_clusters < 1:
        raise WorkloadError(f"{name}: need at least one cluster")
    if isinstance(kernels_per_cluster, int):
        sizes = [kernels_per_cluster] * n_clusters
    else:
        sizes = list(kernels_per_cluster)
    if len(sizes) != n_clusters or any(size < 1 for size in sizes):
        raise WorkloadError(
            f"{name}: kernels_per_cluster {sizes} invalid for "
            f"{n_clusters} clusters"
        )
    for spec in shared_data:
        if len(spec.clusters) < 2:
            raise WorkloadError(
                f"{name}: shared data {spec.name!r} needs >= 2 consumers"
            )
        if any(c >= n_clusters for c in spec.clusters):
            raise WorkloadError(
                f"{name}: shared data {spec.name!r} names a missing cluster"
            )
    for spec in shared_results:
        if any(c <= spec.producer or c >= n_clusters for c in spec.consumers):
            raise WorkloadError(
                f"{name}: shared result {spec.name!r} has an invalid consumer"
            )

    builder = Application.build(name, total_iterations=iterations)
    for spec in shared_data:
        builder.data(spec.name, spec.size, invariant=spec.invariant)

    groups: List[List[str]] = []
    for cluster_index, kernel_count in enumerate(sizes):
        group: List[str] = []
        previous_inter: Optional[str] = None
        for kernel_index in range(kernel_count):
            kernel_name = f"k{cluster_index + 1}_{kernel_index + 1}"
            group.append(kernel_name)
            inputs: List[str] = []
            if input_words > 0:
                ext_name = f"d{cluster_index + 1}_{kernel_index + 1}"
                builder.data(ext_name, input_words)
                inputs.append(ext_name)
            if previous_inter is not None:
                inputs.append(previous_inter)
            if kernel_index == 0:
                for spec in shared_data:
                    if cluster_index in spec.clusters:
                        inputs.append(spec.name)
                for spec in shared_results:
                    if cluster_index in spec.consumers:
                        inputs.append(spec.name)
            outputs: List[str] = []
            result_sizes = {}
            last_kernel = kernel_index == kernel_count - 1
            if not last_kernel:
                inter_name = f"r{cluster_index + 1}_{kernel_index + 1}"
                outputs.append(inter_name)
                result_sizes[inter_name] = inter_words
                previous_inter = inter_name
            else:
                final_name = f"f{cluster_index + 1}"
                outputs.append(final_name)
                result_sizes[final_name] = final_words
                builder.final(final_name)
                for spec in shared_results:
                    if spec.producer == cluster_index:
                        outputs.append(spec.name)
                        result_sizes[spec.name] = spec.size
                        if spec.final:
                            builder.final(spec.name)
            if not inputs:
                raise WorkloadError(
                    f"{name}: kernel {kernel_name} would have no inputs; "
                    f"give input_words > 0 or add shared data"
                )
            builder.kernel(
                kernel_name,
                context_words=context_words,
                cycles=cycles,
                inputs=inputs,
                outputs=outputs,
                result_sizes=result_sizes,
            )
        groups.append(group)
    application = builder.finish()
    return application, Clustering(application, groups)


# ---------------------------------------------------------------------------
# The paper's synthetic experiments.
#
# Calibration targets (legible Table 1 columns):
#   E1  : FB=1K, RF=1,  DS=0%,  CDS=19%
#   E1* : FB=2K, RF=3,  DS=38%, CDS=58%   (same application, bigger FB)
#   E2  : FB=2K, RF=3,  DS=44%, CDS=48%
#   E3  : FB=3K, RF=11, DS=67%, CDS=76%
# ---------------------------------------------------------------------------

def _e1_app(name: str) -> Tuple[Application, Clustering]:
    return synthetic_chain(
        name,
        n_clusters=4,
        kernels_per_cluster=2,
        iterations=48,
        input_words=120,
        inter_words=120,
        final_words=80,
        context_words=240,
        cycles=40,
        shared_data=(
            SharedDataSpec("coeffs_a", 384, (0, 2), invariant=True),
            SharedDataSpec("coeffs_b", 384, (1, 3), invariant=True),
        ),
        shared_results=(
            SharedResultSpec(producer=0, consumers=(2,), size=160),
            SharedResultSpec(producer=1, consumers=(3,), size=160),
        ),
    )


def e1() -> Tuple[Application, Clustering]:
    """E1: four 2-kernel clusters dominated by context traffic, with
    large invariant coefficient tables shared across same-set clusters.

    At FB=1K (the paper's E1 row) the reuse factor stays 1 and the Data
    Scheduler gains almost nothing (computation is tiny, so there is
    little to hide behind); the Complete Data Scheduler still keeps the
    tables and the cross-cluster result."""
    return _e1_app("E1")


def e1_star() -> Tuple[Application, Clustering]:
    """E1*: the same application evaluated at FB=2K (RF grows to 3 and
    both schedulers benefit from loop fission; see Table 1)."""
    return _e1_app("E1*")


def e2() -> Tuple[Application, Clustering]:
    """E2: three clusters of three kernels; most reuse is *within*
    clusters, so the Data Scheduler captures nearly everything and the
    Complete Data Scheduler adds only a small margin (44% vs 48%)."""
    return synthetic_chain(
        "E2",
        n_clusters=3,
        kernels_per_cluster=3,
        iterations=48,
        input_words=136,
        inter_words=200,
        final_words=96,
        context_words=150,
        cycles=180,
        shared_data=(
            SharedDataSpec("window", 192, (0, 2), invariant=True),
        ),
    )


def e3() -> Tuple[Application, Clustering]:
    """E3: small per-iteration footprint and heavy contexts — deep loop
    fission (RF=11 at FB=3K) dominates the gain; keeps add the rest."""
    return synthetic_chain(
        "E3",
        n_clusters=3,
        kernels_per_cluster=2,
        iterations=66,
        input_words=96,
        inter_words=90,
        final_words=54,
        context_words=256,
        cycles=90,
        shared_data=(
            SharedDataSpec("lut", 96, (0, 2), invariant=True),
        ),
        shared_results=(
            SharedResultSpec(producer=0, consumers=(2,), size=54),
        ),
    )
