"""ATR (Automatic Target Recognition) workloads.

ATR pipelines correlate image chips against banks of target templates.
The template banks are the archetypal *shared data*: they are constant
across the image, consumed by several correlation kernels spread over
clusters, and large — exactly the retention opportunity the Complete
Data Scheduler exploits (the ATR-SLD rows have the largest ``DT``
values of Table 1).

Two pipelines, following the paper's experiment families:

* **ATR-SLD** (second-level detection): a five-kernel chain
  ``prep -> corr1 -> norm -> corr2 -> decide`` over large chips with a
  big template bank used by both correlation kernels.  The three table
  rows are three *kernel schedules* (clusterings) of the same chain at
  a fixed FB=8K — "We have tested different kernel schedules for a
  fixed memory size as shown ATR-SLD".
* **ATR-FI** (focus of attention / indexing): a lighter six-kernel
  chain over small regions with a shared filter bank, evaluated at
  FB=1K (RF=2), FB=2K (RF=5, the ``*`` row) and under an alternative
  schedule at FB=1K (the ``**`` row).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.units import kwords

__all__ = [
    "atr_sld",
    "atr_sld_star",
    "atr_sld_star2",
    "atr_fi",
    "atr_fi_star",
    "atr_fi_star2",
]


# ---------------------------------------------------------------------------
# ATR-SLD: second-level detection
# ---------------------------------------------------------------------------

def _sld_app(name: str) -> Application:
    templates = kwords(6)      # invariant template bank, shared by both correlators
    chip = kwords(0.75)        # preprocessed image chip
    corr_map = kwords(0.5)     # correlation surface
    return (
        Application.build(name, total_iterations=24)
        .data("raw_chip", kwords(0.75))
        .data("templates", templates, invariant=True)
        .kernel("prep", context_words=96, cycles=2300,
                inputs=["raw_chip"],
                outputs=["chip"], result_sizes={"chip": chip})
        .kernel("corr1", context_words=160, cycles=3600,
                inputs=["chip", "templates"],
                outputs=["map1"], result_sizes={"map1": corr_map})
        .kernel("norm", context_words=64, cycles=1800,
                inputs=["map1"],
                outputs=["nmap"], result_sizes={"nmap": corr_map})
        .kernel("corr2", context_words=160, cycles=3600,
                inputs=["nmap", "templates", "map1"],
                outputs=["map2"], result_sizes={"map2": corr_map})
        .kernel("decide", context_words=48, cycles=1300,
                inputs=["map2", "nmap"],
                outputs=["detections"], result_sizes={"detections": 256})
        .final("detections")
        .finish()
    )


def atr_sld() -> Tuple[Application, Clustering]:
    """ATR-SLD: schedule ``[prep corr1 | norm | corr2 decide]``.

    The template bank is consumed by clusters 1 and 3 (both set 0):
    keeping it avoids one 3K reload per iteration; ``map1`` is also
    reusable by ``corr2`` two clusters later (paper row: FB=8K, RF=1,
    DS=15%, CDS=32%)."""
    application = _sld_app("ATR-SLD")
    clustering = Clustering(
        application,
        [["prep", "corr1"], ["norm"], ["corr2", "decide"]],
    )
    return application, clustering


def atr_sld_star() -> Tuple[Application, Clustering]:
    """ATR-SLD*: the fully-split schedule (one kernel per cluster).

    Both correlators land on set 1 with three clusters between loads,
    and ``map1``/``nmap`` become same-set shared results too — the
    largest retention volume of the family (paper row: FB=8K, RF=1,
    DS=0%, CDS=60%)."""
    application = _sld_app("ATR-SLD*")
    clustering = Clustering.per_kernel(application)
    return application, clustering


def atr_sld_star2() -> Tuple[Application, Clustering]:
    """ATR-SLD**: schedule ``[prep | corr1 norm | corr2 | decide]``.

    The correlators sit on different sets, so the template bank cannot
    be retained for both; only the smaller result reuse survives
    (paper row: FB=8K, RF=1, DS=13%, CDS=27%)."""
    application = _sld_app("ATR-SLD**")
    clustering = Clustering(
        application,
        [["prep"], ["corr1", "norm"], ["corr2"], ["decide"]],
    )
    return application, clustering


# ---------------------------------------------------------------------------
# ATR-FI: focus of attention / indexing
# ---------------------------------------------------------------------------

def _fi_app(name: str) -> Application:
    region = 195               # image region slice
    bank = 280                 # invariant filter bank
    feature = 112
    return (
        Application.build(name, total_iterations=60)
        .data("region", region)
        .data("filter_bank", bank, invariant=True)
        .kernel("gabor_a", context_words=112, cycles=700,
                inputs=["region", "filter_bank"],
                outputs=["resp_a"], result_sizes={"resp_a": feature})
        .kernel("gabor_b", context_words=112, cycles=700,
                inputs=["region", "resp_a"],
                outputs=["resp_b"], result_sizes={"resp_b": feature})
        .kernel("energy", context_words=72, cycles=560,
                inputs=["resp_b"],
                outputs=["energy_map"], result_sizes={"energy_map": feature})
        .kernel("index", context_words=96, cycles=620,
                inputs=["energy_map", "filter_bank"],
                outputs=["index_map"], result_sizes={"index_map": feature})
        .kernel("rank", context_words=64, cycles=480,
                inputs=["index_map"],
                outputs=["roi"], result_sizes={"roi": 32})
        .final("roi")
        .finish()
    )


def atr_fi() -> Tuple[Application, Clustering]:
    """ATR-FI: schedule ``[gabor_a gabor_b | energy | index rank]``.

    The filter bank feeds clusters 1 and 3 (set 0); at FB=1K the paper
    reports RF=2, DS=26%, CDS=30%."""
    application = _fi_app("ATR-FI")
    clustering = Clustering(
        application,
        [["gabor_a", "gabor_b"], ["energy"], ["index", "rank"]],
    )
    return application, clustering


def atr_fi_star() -> Tuple[Application, Clustering]:
    """ATR-FI*: the same schedule evaluated at FB=2K (paper RF=5)."""
    application = _fi_app("ATR-FI*")
    clustering = Clustering(
        application,
        [["gabor_a", "gabor_b"], ["energy"], ["index", "rank"]],
    )
    return application, clustering


def atr_fi_star2() -> Tuple[Application, Clustering]:
    """ATR-FI**: alternative schedule ``[gabor_a | gabor_b energy | index | rank]``
    at FB=1K (paper: RF=2, DS=33%, CDS=37%)."""
    application = _fi_app("ATR-FI**")
    clustering = Clustering(
        application,
        [["gabor_a"], ["gabor_b", "energy"], ["index"], ["rank"]],
    )
    return application, clustering
