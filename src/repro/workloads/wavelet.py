"""A functional wavelet image-codec workload built from library kernels.

Demonstrates the full "kernel library" story of the paper's framework
(section 2): kernels come from the library, and the *information
extractor* derives their execution times by running their RC-array
context programs on representative data —
:meth:`~repro.kernels.library.KernelLibrary.cycles_for` — instead of
the hand-estimated cycle counts the synthetic workloads use.

Pipeline (one 8x8 RGB tile per iteration):

    rgb_to_luma -> haar8 (row transform) -> quant8x8 -> zigzag_pack
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.kernels.library import KernelLibrary, default_library

__all__ = ["wavelet_functional"]


def wavelet_functional(
    library: KernelLibrary = None,
) -> Tuple[Application, Clustering, Dict]:
    """Build the codec application with extractor-derived cycle counts.

    Returns ``(application, clustering, kernel_impls)`` for the
    functional simulator.
    """
    library = library or default_library()
    tile = 64  # 8x8

    def cycles(op: str) -> int:
        # The information extractor: run the library program once on
        # representative operands and take the RC-array cycle count.
        return max(1, library.cycles_for(op))

    builder = (
        Application.build("wavelet-codec", total_iterations=6)
        .data("r", tile).data("g", tile).data("b", tile)
        .kernel("luma", context_words=14, cycles=cycles("rgb_to_luma"),
                inputs=["r", "g", "b"],
                outputs=["y"], result_sizes={"y": tile},
                library_op="rgb_to_luma")
        .kernel("haar", context_words=12, cycles=cycles("haar8"),
                inputs=["y"],
                outputs=["bands"], result_sizes={"bands": tile},
                library_op="haar8")
        .kernel("quant", context_words=8, cycles=cycles("quant8x8"),
                inputs=["bands"],
                outputs=["q"], result_sizes={"q": tile},
                library_op="quant8x8")
        .kernel("pack", context_words=10, cycles=cycles("zigzag_pack"),
                inputs=["q"],
                outputs=["stream"], result_sizes={"stream": tile},
                library_op="zigzag_pack")
        .final("stream")
    )
    application = builder.finish()
    clustering = Clustering(
        application, [["luma", "haar"], ["quant", "pack"]]
    )
    return application, clustering, library.impls_for(application)
