"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The hierarchy
mirrors the compilation pipeline: application construction, scheduling,
allocation, code generation and simulation each have their own subclass.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ApplicationError",
    "DataflowError",
    "ClusteringError",
    "ArchitectureError",
    "CapacityError",
    "InfeasibleScheduleError",
    "AllocationError",
    "FragmentationError",
    "CodegenError",
    "ProgramVerificationError",
    "LintError",
    "SimulationError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ApplicationError(ReproError):
    """An application description is malformed (bad sizes, duplicate names,
    a data object produced twice, a consumer before its producer, ...)."""


class DataflowError(ApplicationError):
    """The producer/consumer graph is inconsistent."""


class ClusteringError(ReproError):
    """A clustering does not form an ordered partition of the kernel list."""


class ArchitectureError(ReproError):
    """An architecture description is invalid (non-positive capacities,
    inconsistent timing parameters, ...)."""


class CapacityError(ArchitectureError):
    """A hardware capacity (frame-buffer set, context memory) is exceeded
    by a request that can never fit, independent of scheduling choices."""


class InfeasibleScheduleError(ReproError):
    """A scheduler cannot produce any legal schedule for the given
    application on the given architecture.

    The canonical instance from the paper: the Basic Scheduler cannot
    execute MPEG with a 1K frame-buffer set because a cluster's footprint
    exceeds the set size.
    """

    def __init__(self, message: str, *, cluster: str | None = None,
                 required: int | None = None, available: int | None = None):
        super().__init__(message)
        self.cluster = cluster
        self.required = required
        self.available = available

    def __reduce__(self):
        # The default Exception reduction rebuilds from ``self.args``
        # alone, silently dropping the keyword-only diagnostic fields.
        # These errors cross process boundaries (worker pools, the
        # persistent outcome cache), so preserve them explicitly.
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {
                "cluster": self.cluster,
                "required": self.required,
                "available": self.available,
            },
        )


class AllocationError(ReproError):
    """The frame-buffer allocator could not place an object."""


class FragmentationError(AllocationError):
    """An object could not be placed even with splitting enabled (the free
    space exists but is too fragmented, or splitting is disabled)."""


class CodegenError(ReproError):
    """Lowering a schedule to an op-level program failed."""


class ProgramVerificationError(CodegenError):
    """A generated program violates a static invariant (use before load,
    store of a never-produced result, context missing at kernel launch)."""


class LintError(ReproError):
    """A lint run found error-severity diagnostics in strict mode.

    Carries the offending diagnostics so callers can inspect them:
    ``exc.diagnostics`` is a tuple of
    :class:`repro.lint.Diagnostic` records.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)

    def __reduce__(self):
        # Preserve the diagnostics payload across pickling (the default
        # Exception reduction only keeps ``args``); the service layer
        # ships these errors back from worker processes.
        return (
            self.__class__,
            (self.args[0] if self.args else "", self.diagnostics),
        )


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class WorkloadError(ReproError):
    """A workload specification is invalid or cannot be constructed."""
