"""The fuzz campaign driver: regimes x seeds, shrink, persist, report.

``run_fuzz`` fans the case matrix out over
:func:`~repro.analysis.parallel.parallel_map` (each worker generates
its case and runs the full oracle stack), then shrinks every failure in
the parent and persists the minimal reproducers as JSON ready to drop
into ``tests/corpus/``.  Campaign counters land in the observability
metrics registry under scope ``fuzz`` when collection is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.parallel import parallel_map
from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import generate_case, regime_names
from repro.fuzz.oracles import ORACLE_NAMES, OracleFailure, run_oracles
from repro.fuzz.shrink import shrink_case
from repro.obs import metrics
from repro.workloads.spec import paper_experiments

__all__ = ["FuzzReport", "FuzzFinding", "run_fuzz"]


@dataclass
class FuzzFinding:
    """One oracle violation, with its shrunk reproducer."""

    failure: OracleFailure
    case: FuzzCase
    shrunk: Optional[FuzzCase] = None
    reproducer_path: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "failure": self.failure.to_dict(),
            "case": self.case.to_dict(),
            "shrunk": self.shrunk.to_dict() if self.shrunk else None,
            "reproducer_path": self.reproducer_path,
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    cases_run: int = 0
    regimes: Tuple[str, ...] = ()
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases_run} cases across "
            f"{len(self.regimes)} regimes ({', '.join(self.regimes)}): "
            f"{'all oracles clean' if self.ok else f'{len(self.findings)} violations'}"
        ]
        for finding in self.findings:
            failure = finding.failure
            where = f" [{failure.scheduler}]" if failure.scheduler else ""
            lines.append(
                f"  [{failure.oracle}] {failure.case}{where}: "
                f"{failure.message}"
            )
            if finding.reproducer_path:
                lines.append(f"    reproducer: {finding.reproducer_path}")
        return "\n".join(lines)


def _fuzz_worker(task):
    """Generate one case and run the oracle stack (picklable worker)."""
    regime, seed, functional, cache_dir, oracles = task
    case = generate_case(regime, seed)
    cache = None
    if cache_dir is not None:
        from repro.cache import CacheStore

        cache = CacheStore(cache_dir)
    failures = run_oracles(
        case, oracles=oracles, functional=functional, cache=cache
    )
    return case.to_dict(), [failure.to_dict() for failure in failures]


def _paper_cases() -> List[FuzzCase]:
    """The Table-1 experiments as fuzz cases (the known-good anchors)."""
    cases = []
    for spec in paper_experiments():
        application, clustering = spec.build()
        cases.append(FuzzCase.from_workload(
            application, clustering, spec.fb_words,
            name=f"paper-{spec.id}", regime="paper",
        ))
    return cases


def _task_matrix(seeds: Sequence[int], regimes: Sequence[str],
                 quick: bool, functional: bool,
                 cache_dir: Optional[str],
                 oracles: Optional[Tuple[str, ...]]) -> List[Tuple]:
    if quick:
        # Round-robin: each seed exercises one regime, so a quick run
        # of N seeds costs N cases while still sweeping every regime.
        return [
            (regimes[index % len(regimes)], seed, functional, cache_dir,
             oracles)
            for index, seed in enumerate(seeds)
        ]
    return [
        (regime, seed, functional, cache_dir, oracles)
        for regime in regimes for seed in seeds
    ]


def run_fuzz(
    seeds: Sequence[int],
    *,
    regimes: Optional[Sequence[str]] = None,
    quick: bool = False,
    jobs: Optional[int] = None,
    shrink: bool = True,
    failures_dir: Optional[str] = None,
    include_paper: bool = True,
    functional: bool = True,
    cache_dir: Optional[str] = None,
    oracles: Optional[Sequence[str]] = None,
) -> FuzzReport:
    """Run one fuzz campaign.

    Args:
        seeds: generator seeds to sweep.
        regimes: regime subset (default: the whole matrix).
        quick: round-robin seeds across regimes (N cases) instead of
            the full cross product (N x regimes cases).
        jobs: :func:`~repro.analysis.parallel.parallel_map` fan-out
            (``0`` = one worker per CPU).
        shrink: shrink failures to minimal reproducers.
        failures_dir: directory to write reproducer JSON into (created
            on first failure).
        include_paper: also run the Table-1 experiment workloads
            through the oracle stack.
        functional: include the functional-simulation oracle.
        cache_dir: persistent pipeline-cache directory; oracle
            verdicts of unchanged cases are replayed from disk on
            warm reruns (byte-identical to a cold run).
        oracles: restrict the campaign to a subset of
            :data:`~repro.fuzz.oracles.ORACLE_NAMES` — e.g.
            ``("batchcompile",)`` runs the wide batch-vs-reference
            compile sweep without simulation, cheap enough for a
            10k-case CI pass.

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is the pass/fail verdict.
    """
    chosen = tuple(regimes) if regimes else regime_names()
    unknown = set(chosen) - set(regime_names())
    if unknown:
        raise ValueError(f"unknown regimes: {sorted(unknown)}")
    oracle_subset = tuple(oracles) if oracles is not None else None
    if oracle_subset is not None:
        # Validate here, before any worker spawns: a bad name would
        # otherwise surface as one KeyError traceback per worker.
        unknown_oracles = set(oracle_subset) - set(ORACLE_NAMES)
        if unknown_oracles:
            raise ValueError(
                f"unknown oracles: {sorted(unknown_oracles)}; known: "
                f"{', '.join(ORACLE_NAMES)}"
            )
    tasks = _task_matrix(
        list(seeds), chosen, quick, functional, cache_dir, oracle_subset
    )
    outcomes = parallel_map(_fuzz_worker, tasks, jobs=jobs, chunksize=4)

    report = FuzzReport(regimes=chosen)
    raw: List[Tuple[FuzzCase, List[OracleFailure]]] = []
    for case_dict, failure_dicts in outcomes:
        raw.append((
            FuzzCase.from_dict(case_dict),
            [OracleFailure(**failure) for failure in failure_dicts],
        ))
    if include_paper:
        cache = None
        if cache_dir is not None:
            from repro.cache import CacheStore

            cache = CacheStore(cache_dir)
        for case in _paper_cases():
            raw.append((
                case,
                run_oracles(
                    case, oracles=oracle_subset, functional=functional,
                    cache=cache,
                ),
            ))

    report.cases_run = len(raw)
    metrics.inc("cases", len(raw), scope="fuzz")
    for case, failures in raw:
        if failures:
            metrics.inc("failing_cases", scope="fuzz")
        for failure in failures:
            metrics.inc(f"oracle.{failure.oracle}", scope="fuzz")
            finding = FuzzFinding(failure=failure, case=case)
            if shrink:
                finding.shrunk = shrink_case(case, failure.oracle)
            reproducer = finding.shrunk or case
            if failures_dir is not None:
                directory = Path(failures_dir)
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / f"{case.name}-{failure.oracle}.json"
                reproducer.failing_oracle = failure.oracle
                reproducer.save(path)
                finding.reproducer_path = str(path)
            report.findings.append(finding)
    return report
