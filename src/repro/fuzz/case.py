"""Self-contained, JSON-serialisable fuzz cases.

A :class:`FuzzCase` captures everything needed to replay one workload
through the oracle stack: the application structure (objects, kernels,
finals, iteration count), the clustering (kernel groups and their
frame-buffer set assignment), and the architecture's frame-buffer set
size.  Cases round-trip through plain dicts/JSON so shrunk reproducers
can live under ``tests/corpus/`` and be replayed by the pytest
collector without the generator that found them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering

__all__ = ["FuzzCase"]


@dataclass
class FuzzCase:
    """One replayable workload + architecture configuration.

    Attributes:
        name: case identifier (used for corpus file names).
        total_iterations: the application's iteration count ``n``.
        objects: ``{name: {"size": int, "invariant": bool}}`` for every
            data object, externals and results alike.
        kernels: ordered kernel specs
            ``{"name", "context_words", "cycles", "inputs", "outputs"}``.
        finals: names of final outputs.
        groups: ordered kernel-name partition defining the clusters.
        fb_sets: frame-buffer set of each cluster (parallel to
            ``groups``); ``None`` selects the default alternation.
        fb_words: frame-buffer set size in words.
        regime: generator regime that produced the case (``""`` for
            hand-written or captured cases).
        seed: generator seed (``None`` for hand-written cases).
        failing_oracle: for corpus reproducers, the oracle the case was
            shrunk against.
        xfail: corpus replay marker — ``True`` for reproducers of bugs
            that are known but not fixed yet.
    """

    name: str
    total_iterations: int
    objects: Dict[str, Dict] = field(default_factory=dict)
    kernels: List[Dict] = field(default_factory=list)
    finals: List[str] = field(default_factory=list)
    groups: List[List[str]] = field(default_factory=list)
    fb_sets: Optional[List[int]] = None
    fb_words: int = 2048
    regime: str = ""
    seed: Optional[int] = None
    failing_oracle: str = ""
    xfail: bool = False

    # -- construction -----------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        application: Application,
        clustering: Clustering,
        fb_words: int,
        *,
        name: Optional[str] = None,
        regime: str = "",
        seed: Optional[int] = None,
    ) -> "FuzzCase":
        """Capture an existing workload as a replayable case."""
        objects = {
            obj.name: {"size": obj.size, "invariant": obj.invariant}
            for obj in application.objects.values()
        }
        kernels = [
            {
                "name": kernel.name,
                "context_words": kernel.context_words,
                "cycles": kernel.cycles,
                "inputs": list(kernel.inputs),
                "outputs": list(kernel.outputs),
            }
            for kernel in application.kernels
        ]
        groups = [list(cluster.kernel_names) for cluster in clustering]
        fb_sets = [cluster.fb_set for cluster in clustering]
        return cls(
            name=name or application.name,
            total_iterations=application.total_iterations,
            objects=objects,
            kernels=kernels,
            finals=sorted(application.final_outputs),
            groups=groups,
            fb_sets=fb_sets,
            fb_words=fb_words,
            regime=regime,
            seed=seed,
        )

    # -- replay ----------------------------------------------------------

    def build(self) -> Tuple[Application, Clustering]:
        """Reconstruct the application and clustering (validated)."""
        builder = Application.build(
            self.name, total_iterations=self.total_iterations
        )
        for obj_name in sorted(self.objects):
            spec = self.objects[obj_name]
            builder.data(
                obj_name, spec["size"],
                invariant=bool(spec.get("invariant", False)),
            )
        for kernel in self.kernels:
            builder.kernel(
                kernel["name"],
                context_words=kernel["context_words"],
                cycles=kernel["cycles"],
                inputs=list(kernel["inputs"]),
                outputs=list(kernel["outputs"]),
            )
        builder.final(*self.finals)
        application = builder.finish()
        clustering = Clustering(application, self.groups, fb_sets=self.fb_sets)
        return application, clustering

    def architecture(self) -> Architecture:
        """An M1 with this case's frame-buffer set size."""
        return Architecture.m1(self.fb_words)

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> Dict:
        data = {
            "name": self.name,
            "total_iterations": self.total_iterations,
            "objects": self.objects,
            "kernels": self.kernels,
            "finals": list(self.finals),
            "groups": [list(group) for group in self.groups],
            "fb_sets": list(self.fb_sets) if self.fb_sets is not None else None,
            "fb_words": self.fb_words,
            "regime": self.regime,
            "seed": self.seed,
        }
        if self.failing_oracle:
            data["failing_oracle"] = self.failing_oracle
        if self.xfail:
            data["xfail"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzCase":
        return cls(
            name=data["name"],
            total_iterations=data["total_iterations"],
            objects={
                name: dict(spec) for name, spec in data["objects"].items()
            },
            kernels=[dict(kernel) for kernel in data["kernels"]],
            finals=list(data["finals"]),
            groups=[list(group) for group in data["groups"]],
            fb_sets=(
                list(data["fb_sets"]) if data.get("fb_sets") is not None
                else None
            ),
            fb_words=data["fb_words"],
            regime=data.get("regime", ""),
            seed=data.get("seed"),
            failing_oracle=data.get("failing_oracle", ""),
            xfail=bool(data.get("xfail", False)),
        )

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "FuzzCase":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- shrinking support ------------------------------------------------

    @property
    def weight(self) -> int:
        """Size metric minimised by the shrinker: total structure count."""
        return (
            len(self.kernels)
            + len(self.objects)
            + sum(spec["size"] for spec in self.objects.values())
            + self.total_iterations
        )
