"""Differential fuzzing of the scheduling pipeline.

The fuzz subsystem generates adversarial workloads
(:mod:`repro.fuzz.generator`), cross-checks every generated case
against a stack of independent oracles (:mod:`repro.fuzz.oracles`),
shrinks any violation to a minimal reproducer
(:mod:`repro.fuzz.shrink`), and persists reproducers as JSON
(:class:`repro.fuzz.case.FuzzCase`) that the pytest corpus collector
replays forever after (``tests/fuzz/test_corpus_replay.py``).

Entry points: ``repro fuzz`` on the command line, or
:func:`repro.fuzz.runner.run_fuzz` from Python.
"""

from repro.fuzz.case import FuzzCase
from repro.fuzz.generator import REGIMES, generate_case, regime_names
from repro.fuzz.oracles import ORACLE_NAMES, OracleFailure, run_oracles
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FuzzCase",
    "REGIMES",
    "generate_case",
    "regime_names",
    "ORACLE_NAMES",
    "OracleFailure",
    "run_oracles",
    "FuzzReport",
    "run_fuzz",
    "shrink_case",
]
