"""The fuzz generator matrix: adversarial workload regimes.

Each regime is a named recipe that turns a seed into a
:class:`~repro.fuzz.case.FuzzCase`.  All regimes funnel through
:func:`repro.workloads.random_gen.random_application` (so every case is
a valid application by construction) but steer its knobs — and the
frame-buffer size — towards the corners where scheduler bugs live:

* ``baseline`` — the generator's historical defaults at a roomy 4K set;
  the control group.
* ``tiny_fb`` — the frame-buffer set is placed *at* the workload's
  RF=1 footprint, plus a seed-dependent offset of a few words either
  side, so cases straddle the feasible/infeasible boundary.  This is
  the regime that exercises the infeasibility diagnostics (the
  "needs 1K but holds 1K" rounding bug lived exactly here).
* ``nondivisor_rf`` — prime iteration counts, so no reuse factor above
  1 divides ``n`` and every schedule ends with a remainder round.
* ``invariant_tables`` — large iteration-invariant tables shared
  across clusters; a kept table occupies ``size`` words rather than
  ``RF * size``, stressing the keep-acceptance arithmetic.
* ``deep_chains`` — few clusters, many kernels each, so intermediate
  result chains run deep and the replacement logic dominates.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import cluster_data_size_naive
from repro.fuzz.case import FuzzCase
from repro.workloads.random_gen import random_application

__all__ = ["REGIMES", "generate_case", "regime_names"]

#: A few words around the footprint: exact boundary, barely infeasible,
#: barely feasible, and a little slack in both directions.
_TINY_FB_OFFSETS = (0, -1, 1, -5, 7, 16, -16, 64)

_PRIMES = (7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def _footprint(application, clustering) -> int:
    """Worst per-cluster DS occupancy at RF=1 (the feasibility floor)."""
    dataflow = analyze_dataflow(application, clustering)
    return max(
        cluster_data_size_naive(dataflow, cluster.index, 1, ())
        for cluster in clustering
    )


def _baseline(seed: int) -> FuzzCase:
    application, clustering = random_application(seed)
    return FuzzCase.from_workload(
        application, clustering, 4096,
        name=f"baseline-{seed}", regime="baseline", seed=seed,
    )


def _tiny_fb(seed: int) -> FuzzCase:
    application, clustering = random_application(seed)
    offset = _TINY_FB_OFFSETS[seed % len(_TINY_FB_OFFSETS)]
    fb_words = max(_footprint(application, clustering) + offset, 16)
    return FuzzCase.from_workload(
        application, clustering, fb_words,
        name=f"tiny-fb-{seed}", regime="tiny_fb", seed=seed,
    )


def _nondivisor_rf(seed: int) -> FuzzCase:
    iterations = int(_PRIMES[seed % len(_PRIMES)])
    application, clustering = random_application(
        seed, iterations=iterations, max_object_words=128,
    )
    # A set around twice the footprint admits RF >= 2 for most seeds,
    # so the prime iteration count actually leaves a remainder round.
    fb_words = max(2 * _footprint(application, clustering), 64)
    return FuzzCase.from_workload(
        application, clustering, fb_words,
        name=f"nondivisor-rf-{seed}", regime="nondivisor_rf", seed=seed,
    )


def _invariant_tables(seed: int) -> FuzzCase:
    rng = np.random.RandomState(seed)
    tables = int(rng.randint(1, 4))
    application, clustering = random_application(
        seed,
        max_object_words=96,
        invariant_tables=tables,
        invariant_table_words=(256, 1024),
    )
    return FuzzCase.from_workload(
        application, clustering, 2048,
        name=f"invariant-tables-{seed}", regime="invariant_tables",
        seed=seed,
    )


def _deep_chains(seed: int) -> FuzzCase:
    application, clustering = random_application(
        seed,
        max_clusters=3,
        min_kernels_per_cluster=5,
        max_kernels_per_cluster=9,
        max_object_words=96,
    )
    return FuzzCase.from_workload(
        application, clustering, 2048,
        name=f"deep-chains-{seed}", regime="deep_chains", seed=seed,
    )


#: Regime name -> ``seed -> FuzzCase`` recipe, in sweep order.
REGIMES: Dict[str, Callable[[int], FuzzCase]] = {
    "baseline": _baseline,
    "tiny_fb": _tiny_fb,
    "nondivisor_rf": _nondivisor_rf,
    "invariant_tables": _invariant_tables,
    "deep_chains": _deep_chains,
}


def regime_names() -> Tuple[str, ...]:
    """The regime matrix, in sweep order."""
    return tuple(REGIMES)


def generate_case(regime: str, seed: int) -> FuzzCase:
    """One case of one regime (deterministic in ``(regime, seed)``)."""
    try:
        recipe = REGIMES[regime]
    except KeyError:
        raise ValueError(
            f"unknown regime {regime!r}; known: {', '.join(REGIMES)}"
        ) from None
    return recipe(seed)
