"""Greedy shrinking of failing fuzz cases to minimal reproducers.

When an oracle fails, the raw generated case is usually far larger than
the bug needs.  :func:`shrink_case` repeatedly applies structural
reductions — drop a cluster, drop a kernel (rewiring its neighbours),
halve the iteration count, halve every object size, drop an external
input — and keeps a reduction iff the candidate still *builds as a
valid application* and still fails the **same oracle**.  The loop runs
to a fixpoint (or an attempt budget) and returns the smallest case
found, which is what gets persisted under ``tests/corpus/``.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.fuzz.case import FuzzCase
from repro.fuzz.oracles import run_oracles

__all__ = ["shrink_case"]


def _clone(case: FuzzCase) -> FuzzCase:
    return FuzzCase.from_dict(case.to_dict())


def _normalise(case: FuzzCase) -> Optional[FuzzCase]:
    """Repair a structurally reduced case, or ``None`` if unrepairable.

    After dropping kernels the object graph needs rewiring: outputs of
    removed producers that are still consumed become external inputs
    (they simply stay declared without a producer), unreferenced
    objects are deleted, finals must still be produced, and every
    cluster must keep at least one kernel.
    """
    kernel_names = {kernel["name"] for kernel in case.kernels}
    groups = [
        [name for name in group if name in kernel_names]
        for group in case.groups
    ]
    kept = [index for index, group in enumerate(groups) if group]
    if not kept:
        return None
    case.groups = [groups[index] for index in kept]
    if case.fb_sets is not None:
        case.fb_sets = [case.fb_sets[index] for index in kept]
    grouped = {name for group in case.groups for name in group}
    case.kernels = [k for k in case.kernels if k["name"] in grouped]

    referenced = set()
    produced = set()
    for kernel in case.kernels:
        referenced.update(kernel["inputs"])
        referenced.update(kernel["outputs"])
        produced.update(kernel["outputs"])
    case.objects = {
        name: spec for name, spec in case.objects.items()
        if name in referenced
    }
    if set(case.objects) != referenced:
        return None  # a kernel references an object we no longer know
    # Objects that lost their producer are now external inputs; external
    # objects must not be marked final, and at least one final remains.
    case.finals = [name for name in case.finals if name in produced]
    if not case.finals:
        return None
    # An output produced twice (should not happen) or consumed before
    # produced is rejected by Application validation in build().
    return case


def _reductions(case: FuzzCase) -> Iterator[FuzzCase]:
    """Candidate reductions, most aggressive first."""
    # Drop a whole cluster.
    for index in range(len(case.groups)):
        candidate = _clone(case)
        dropped = set(candidate.groups[index])
        candidate.groups = [
            group for i, group in enumerate(candidate.groups) if i != index
        ]
        if candidate.fb_sets is not None:
            candidate.fb_sets = [
                fb for i, fb in enumerate(case.fb_sets) if i != index
            ]
        candidate.kernels = [
            kernel for kernel in candidate.kernels
            if kernel["name"] not in dropped
        ]
        yield candidate
    # Drop a single kernel.
    for index in range(len(case.kernels)):
        candidate = _clone(case)
        del candidate.kernels[index]
        yield candidate
    # Halve the iteration count.
    if case.total_iterations > 1:
        candidate = _clone(case)
        candidate.total_iterations = max(case.total_iterations // 2, 1)
        yield candidate
        candidate = _clone(case)
        candidate.total_iterations = case.total_iterations - 1
        yield candidate
    # Halve every object size.
    if any(spec["size"] > 1 for spec in case.objects.values()):
        candidate = _clone(case)
        for spec in candidate.objects.values():
            spec["size"] = max(spec["size"] // 2, 1)
        yield candidate
    # Drop one external input edge (keep at least one input per kernel).
    produced = {
        name for kernel in case.kernels for name in kernel["outputs"]
    }
    for kernel_index, kernel in enumerate(case.kernels):
        for input_name in kernel["inputs"]:
            if input_name in produced or len(kernel["inputs"]) <= 1:
                continue
            candidate = _clone(case)
            candidate.kernels[kernel_index]["inputs"] = [
                name for name in kernel["inputs"] if name != input_name
            ]
            yield candidate


def _still_fails(candidate: FuzzCase, oracle: str,
                 check: Callable[[FuzzCase], List]) -> bool:
    try:
        candidate.build()
    except Exception:
        return False
    return any(failure.oracle == oracle for failure in check(candidate))


def shrink_case(
    case: FuzzCase,
    oracle: str,
    *,
    max_attempts: int = 200,
    check: Optional[Callable[[FuzzCase], List]] = None,
) -> FuzzCase:
    """Shrink *case* while oracle *oracle* keeps failing.

    Args:
        case: the failing case (left unmodified).
        oracle: oracle name the reproducer must keep violating.
        max_attempts: budget of candidate evaluations.
        check: override for :func:`~repro.fuzz.oracles.run_oracles`
            (tests inject synthetic predicates here).

    Returns:
        The smallest still-failing case found; records the oracle in
        ``failing_oracle``.  If no reduction applies, a copy of the
        original is returned.
    """
    if check is None:
        def check(candidate):
            return run_oracles(candidate, oracles=(oracle,))
    current = _clone(case)
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _reductions(current):
            if attempts >= max_attempts:
                break
            repaired = _normalise(candidate)
            if repaired is None or repaired.weight >= current.weight:
                continue
            attempts += 1
            if _still_fails(repaired, oracle, check):
                current = repaired
                progress = True
                break  # restart the reduction scan from the smaller case
    current.failing_oracle = oracle
    return current
