"""The oracle stack: independent cross-checks over one fuzz case.

Every generated case runs through all oracles (no early exit), each of
which compares two independent computations of the same fact:

``probes``
    The RF search never probes the same reuse factor twice (the gallop
    hand-off re-probe bug class).
``diagnostics``
    Every :class:`~repro.errors.InfeasibleScheduleError` carries
    ``required > available`` and renders the two numbers distinctly
    (the "needs 1K but holds 1K" rounding-collision bug class).
``feasibility``
    Feasibility is monotone across the scheduler hierarchy: Basic
    feasible implies DS feasible, and DS and CDS agree.
``traffic``
    Words moved (data + context) obey CDS <= DS <= Basic, and data
    words alone obey the same ordering.
``engine``
    The incremental occupancy engine and the naive reference sweep
    produce byte-identical schedules (and agree on infeasibility).
``trace``
    Decision tracing never changes a schedule: trace-on and trace-off
    runs are equal.
``batchcompile``
    The structure-of-arrays batch compiler
    (:mod:`repro.schedule.batch`) produces byte-identical schedules —
    same RF, keeps, cluster plans — and identical
    infeasibility payloads as the per-case reference scheduler, for
    all three schedulers.
``exactgap``
    The branch-and-bound exact retention/RF solver
    (:mod:`repro.schedule.exact`) agrees with the greedy CDS on
    feasibility — identical :class:`InfeasibleScheduleError` payloads
    up to the scheduler-name prefix — and, on feasible cases, never
    moves more words than greedy; the solver's closed-form traffic
    model must reproduce the materialised ``TransferSummary`` totals
    of both solutions and its internal greedy mirror must replay the
    CDS decision byte for byte.  Any case where greedy "beats" exact
    is by construction a bug in one of them.
``progequiv``
    The template-compiled codegen backend
    (:mod:`repro.codegen.templated`) produces byte-identical
    :class:`~repro.codegen.program.Program` objects to the reference
    generator — under both context-reuse modes — and the vectorized
    fast verifier (:mod:`repro.codegen.fastverify`) returns the
    identical ordered violation list the reference replay does.
``freelist``
    Every free-list operation of the Figure-4 allocator produces
    identical results and identical free-block state on the production
    bisect list and the linear reference list; the resulting allocation
    passes offline overlap verification and fits the set.
``verifier``
    The lowered program passes static verification.
``hazards``
    The lowered program analyzes clean on the timing-aware hazard
    passes (:mod:`repro.dataflow`) under both always-sound DMA
    serialization policies — no DMA/compute races, no live-range
    interference, no capacity-over-time violations.
``simengine``
    The vectorized timeline evaluator and the reference event-driven
    engine produce byte-identical simulation reports (per-visit
    timings included).
``functional``
    Functional simulation reproduces the application's reference
    outputs.

With a :class:`~repro.cache.CacheStore`, the full verdict of one case
is memoised under its content key (:func:`~repro.cache.keys.case_key`):
warm fuzz-campaign reruns skip compile and simulation entirely for
unchanged cases, and cached verdicts are byte-identical to fresh ones.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.alloc.allocator import FrameBufferAllocator
from repro.alloc.free_list import FreeBlockList
from repro.alloc.reference import ReferenceFreeBlockList
from repro.arch.machine import MorphoSysM1
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.core.dataflow import analyze_dataflow
from repro.errors import InfeasibleScheduleError, ReproError
from repro.fuzz.case import FuzzCase
from repro.schedule.base import ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.sim.batch import simulate_program
from repro.sim.engine import Simulator
from repro.units import format_words_pair

__all__ = [
    "ORACLE_NAMES",
    "OracleFailure",
    "FreeListMismatch",
    "MirroredFreeList",
    "run_oracles",
]

ORACLE_NAMES: Tuple[str, ...] = (
    "probes",
    "diagnostics",
    "feasibility",
    "traffic",
    "engine",
    "trace",
    "batchcompile",
    "exactgap",
    "progequiv",
    "freelist",
    "verifier",
    "hazards",
    "simengine",
    "functional",
)

_SCHEDULERS = (BasicScheduler, DataScheduler, CompleteDataScheduler)


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation on one case."""

    oracle: str
    case: str
    message: str
    scheduler: str = ""

    def to_dict(self) -> Dict:
        return {
            "oracle": self.oracle,
            "case": self.case,
            "message": self.message,
            "scheduler": self.scheduler,
        }


class FreeListMismatch(ReproError):
    """Production and reference free lists diverged."""


class MirroredFreeList:
    """A free list that mirrors every operation onto the linear oracle.

    Injected into the allocator via ``free_list_factory``; each call is
    applied to both the production :class:`FreeBlockList` and the
    :class:`ReferenceFreeBlockList`, and must yield the same result (or
    the same exception type) and leave both lists with identical free
    blocks.  Any divergence raises :class:`FreeListMismatch`.
    """

    def __init__(self, capacity_words: int):
        self.primary = FreeBlockList(capacity_words)
        self.oracle = ReferenceFreeBlockList(capacity_words)
        self.operations = 0

    # -- mirroring core ---------------------------------------------------

    def _both(self, method: str, *args, **kwargs):
        self.operations += 1
        outcomes = []
        for target in (self.primary, self.oracle):
            try:
                outcomes.append(("ok", getattr(target, method)(*args, **kwargs)))
            except ReproError as exc:
                outcomes.append(("err", exc))
        (kind_a, value_a), (kind_b, value_b) = outcomes
        if kind_a != kind_b:
            raise FreeListMismatch(
                f"{method}{args}: production "
                f"{'raised ' + type(value_a).__name__ if kind_a == 'err' else 'returned ' + repr(value_a)}"
                f" but reference "
                f"{'raised ' + type(value_b).__name__ if kind_b == 'err' else 'returned ' + repr(value_b)}"
            )
        if kind_a == "err":
            if type(value_a) is not type(value_b):
                raise FreeListMismatch(
                    f"{method}{args}: exception types diverged: "
                    f"{type(value_a).__name__} vs {type(value_b).__name__}"
                )
            self._check_state(method, args)
            raise value_a
        if value_a != value_b:
            raise FreeListMismatch(
                f"{method}{args}: results diverged: "
                f"{value_a!r} vs {value_b!r}"
            )
        self._check_state(method, args)
        return value_a

    def _check_state(self, method: str, args) -> None:
        if self.primary.blocks() != self.oracle.blocks():
            raise FreeListMismatch(
                f"after {method}{args}: free blocks diverged: "
                f"{self.primary} vs {self.oracle}"
            )
        if self.primary.free_words != self.oracle.free_words:
            raise FreeListMismatch(
                f"after {method}{args}: free words diverged: "
                f"{self.primary.free_words} vs {self.oracle.free_words}"
            )

    # -- FreeBlockList interface ------------------------------------------

    @property
    def free_words(self) -> int:
        self._check_state("free_words", ())
        return self.primary.free_words

    @property
    def largest_block(self) -> int:
        return self.primary.largest_block

    def blocks(self):
        self._check_state("blocks", ())
        return self.primary.blocks()

    def is_free(self, start: int, size: int) -> bool:
        return self._both("is_free", start, size)

    def allocate_high(self, size: int, *, best_fit: bool = False):
        return self._both("allocate_high", size, best_fit=best_fit)

    def allocate_low(self, size: int, *, best_fit: bool = False):
        return self._both("allocate_low", size, best_fit=best_fit)

    def allocate_at(self, start: int, size: int):
        return self._both("allocate_at", start, size)

    def allocate_split(self, size: int, *, from_high: bool):
        return self._both("allocate_split", size, from_high=from_high)

    def free(self, start: int, size: int) -> None:
        return self._both("free", start, size)

    def free_extents(self, extents) -> None:
        for extent in extents:
            self.free(extent.start, extent.size)

    def check_invariants(self) -> None:
        self.primary.check_invariants()
        self.oracle.check_invariants()
        self._check_state("check_invariants", ())


@dataclass
class _Run:
    """One scheduler's pipeline products on the case."""

    scheduler: str
    schedule: Optional[object] = None
    report: Optional[object] = None
    program: Optional[object] = None
    error: Optional[InfeasibleScheduleError] = None
    failures: List[OracleFailure] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.schedule is not None


def _schedule_only(scheduler_cls, architecture, options, application,
                   clustering, dataflow):
    """Schedule; return ``(schedule, infeasible_error)``."""
    scheduler = scheduler_cls(architecture, options)
    try:
        return (
            scheduler.schedule(application, clustering, dataflow=dataflow),
            None,
        )
    except InfeasibleScheduleError as exc:
        return None, exc


def run_oracles(
    case: FuzzCase,
    *,
    oracles: Optional[Sequence[str]] = None,
    functional: bool = True,
    cache=None,
) -> List[OracleFailure]:
    """All oracle verdicts on one case (never stops at the first).

    Args:
        case: the case to check.
        oracles: restrict to a subset of :data:`ORACLE_NAMES`.
        functional: include the (slower) functional-simulation oracle.
        cache: optional :class:`~repro.cache.CacheStore`; memoises the
            full verdict under the case's content key, so reruns of an
            unchanged case (under unchanged code) skip every pipeline
            stage.  Verdicts are stored without the case *name* — a
            renamed reproducer of the same workload hits the same
            entry and the failures are rebuilt with the current name.

    Returns:
        One :class:`OracleFailure` per violation; empty when clean.
    """
    enabled = set(ORACLE_NAMES if oracles is None else oracles)
    unknown = enabled - set(ORACLE_NAMES)
    if unknown:
        raise ValueError(f"unknown oracles: {sorted(unknown)}")
    if not functional:
        enabled.discard("functional")
    key = None
    if cache is not None:
        from repro.cache import case_key, digest

        key = digest(("oracles", case_key(case), tuple(sorted(enabled))))
        cached = cache.get(key)
        if cached is not None:
            return [
                OracleFailure(oracle, case.name, message, scheduler)
                for oracle, message, scheduler in cached
            ]
    failures = _run_oracles_uncached(case, enabled)
    if cache is not None:
        cache.put(key, tuple(
            (failure.oracle, failure.message, failure.scheduler)
            for failure in failures
        ))
    return failures


def _run_oracles_uncached(
    case: FuzzCase, enabled: set
) -> List[OracleFailure]:
    failures: List[OracleFailure] = []

    try:
        application, clustering = case.build()
    except Exception as exc:
        return [OracleFailure("build", case.name, f"case does not build: {exc}")]
    architecture = case.architecture()
    dataflow = analyze_dataflow(application, clustering)
    traced = ScheduleOptions(decision_trace=True)

    runs: Dict[str, _Run] = {}
    for scheduler_cls in _SCHEDULERS:
        run = _Run(scheduler=scheduler_cls.name)
        run.schedule, run.error = _schedule_only(
            scheduler_cls, architecture, traced, application, clustering,
            dataflow,
        )
        if run.schedule is not None:
            try:
                run.program = generate_program(run.schedule)
                run.report = simulate_program(
                    run.program, architecture, trace=False, verify=True,
                )
            except ReproError as exc:
                failures.append(OracleFailure(
                    "verifier", case.name,
                    f"pipeline failed after scheduling: {exc}",
                    scheduler=run.scheduler,
                ))
        runs[scheduler_cls.name] = run

    if "probes" in enabled:
        failures.extend(_check_probes(case, runs))
    if "diagnostics" in enabled:
        failures.extend(_check_diagnostics(case, runs))
    if "feasibility" in enabled:
        failures.extend(_check_feasibility(case, runs))
    if "traffic" in enabled:
        failures.extend(_check_traffic(case, runs))
    if "trace" in enabled or "engine" in enabled:
        failures.extend(_check_equivalences(
            case, runs, architecture, application, clustering, dataflow,
            enabled,
        ))
    if "batchcompile" in enabled:
        failures.extend(_check_batchcompile(
            case, runs, architecture, application, clustering, dataflow,
        ))
    if "exactgap" in enabled:
        failures.extend(_check_exactgap(
            case, runs, architecture, application, clustering, dataflow,
        ))
    if "progequiv" in enabled:
        failures.extend(_check_progequiv(case, runs))
    if "freelist" in enabled:
        failures.extend(_check_freelist(case, runs, architecture))
    if "verifier" in enabled:
        failures.extend(_check_verifier(case, runs))
    if "hazards" in enabled:
        failures.extend(_check_hazards(case, runs))
    if "simengine" in enabled:
        failures.extend(_check_simengine(case, runs, architecture))
    if "functional" in enabled:
        failures.extend(_check_functional(case, runs, architecture))
    return failures


# -- individual oracles ---------------------------------------------------


def _check_probes(case, runs) -> List[OracleFailure]:
    failures = []
    for run in runs.values():
        if run.schedule is None or run.schedule.decisions is None:
            continue
        probed = [
            event.detail["rf"]
            for event in run.schedule.decisions.of_kind("rf.probe")
        ]
        duplicates = sorted(
            {rf for rf in probed if probed.count(rf) > 1}
        )
        if duplicates:
            failures.append(OracleFailure(
                "probes", case.name,
                f"RF search probed {duplicates} more than once "
                f"(sequence {probed})",
                scheduler=run.scheduler,
            ))
    return failures


def _check_diagnostics(case, runs) -> List[OracleFailure]:
    failures = []
    for run in runs.values():
        exc = run.error
        if exc is None:
            continue
        if exc.required is None or exc.available is None:
            failures.append(OracleFailure(
                "diagnostics", case.name,
                f"infeasibility lacks required/available numbers: {exc}",
                scheduler=run.scheduler,
            ))
            continue
        if exc.required <= exc.available:
            failures.append(OracleFailure(
                "diagnostics", case.name,
                f"infeasibility claims required {exc.required} <= "
                f"available {exc.available}: {exc}",
                scheduler=run.scheduler,
            ))
            continue
        need, capacity = format_words_pair(exc.required, exc.available)
        message = str(exc)
        if need == capacity:
            failures.append(OracleFailure(
                "diagnostics", case.name,
                f"need and capacity render identically ({need}): {exc}",
                scheduler=run.scheduler,
            ))
        elif need not in message or capacity not in message:
            failures.append(OracleFailure(
                "diagnostics", case.name,
                f"message does not show exact numbers "
                f"({need} vs {capacity}): {exc}",
                scheduler=run.scheduler,
            ))
    return failures


def _check_feasibility(case, runs) -> List[OracleFailure]:
    failures = []
    basic, ds, cds = runs["basic"], runs["ds"], runs["cds"]
    if basic.feasible and not ds.feasible:
        failures.append(OracleFailure(
            "feasibility", case.name,
            f"Basic feasible but DS infeasible: {ds.error}",
            scheduler="ds",
        ))
    if ds.feasible != cds.feasible:
        failures.append(OracleFailure(
            "feasibility", case.name,
            f"DS {'feasible' if ds.feasible else 'infeasible'} but CDS "
            f"{'feasible' if cds.feasible else 'infeasible'} "
            f"({ds.error or cds.error})",
            scheduler="cds",
        ))
    return failures


def _check_traffic(case, runs) -> List[OracleFailure]:
    failures = []
    reports = {
        name: run.report for name, run in runs.items()
        if run.report is not None
    }

    def total(name: str) -> int:
        return reports[name].data_words + reports[name].context_words

    ordering = [name for name in ("cds", "ds", "basic") if name in reports]
    for better, worse in zip(ordering, ordering[1:]):
        if total(better) > total(worse):
            failures.append(OracleFailure(
                "traffic", case.name,
                f"{better} moves {total(better)} words but {worse} only "
                f"{total(worse)} (data+context)",
                scheduler=better,
            ))
        if reports[better].data_words > reports[worse].data_words:
            failures.append(OracleFailure(
                "traffic", case.name,
                f"{better} moves {reports[better].data_words} data words "
                f"but {worse} only {reports[worse].data_words}",
                scheduler=better,
            ))
    return failures


def _check_equivalences(case, runs, architecture, application, clustering,
                        dataflow, enabled) -> List[OracleFailure]:
    """Trace on/off and incremental/naive must not change schedules."""
    failures = []
    variants = []
    if "trace" in enabled:
        variants.append(("trace", ScheduleOptions()))
    if "engine" in enabled:
        variants.append(("engine", ScheduleOptions(occupancy_engine="naive")))
    for scheduler_cls in _SCHEDULERS:
        reference = runs[scheduler_cls.name]
        for oracle, options in variants:
            schedule, error = _schedule_only(
                scheduler_cls, architecture, options, application,
                clustering, dataflow,
            )
            label = (
                "decision_trace off" if oracle == "trace"
                else "naive occupancy engine"
            )
            if (schedule is None) != (reference.schedule is None):
                failures.append(OracleFailure(
                    oracle, case.name,
                    f"feasibility flips with {label}: "
                    f"{error or reference.error}",
                    scheduler=scheduler_cls.name,
                ))
            elif schedule is not None and schedule != reference.schedule:
                failures.append(OracleFailure(
                    oracle, case.name,
                    f"schedule changes with {label} "
                    f"(rf {schedule.rf} vs {reference.schedule.rf}, "
                    f"keeps {len(schedule.keeps)} vs "
                    f"{len(reference.schedule.keeps)})",
                    scheduler=scheduler_cls.name,
                ))
    return failures


def _check_batchcompile(case, runs, architecture, application, clustering,
                        dataflow) -> List[OracleFailure]:
    """The batch engine must reproduce every reference schedule exactly.

    Re-compiles the case's three scheduling problems through
    ``engine='batch'`` (one :func:`~repro.schedule.batch.compile_many`
    call) and demands byte-identical schedules and identical
    infeasibility payloads (message, cluster, word counts) against the
    per-case runs.
    """
    from repro.schedule.batch import CompileRequest, compile_many

    failures = []
    names = [cls.name for cls in _SCHEDULERS]
    results = compile_many(
        [
            CompileRequest(
                scheduler=name, application=application,
                architecture=architecture, clustering=clustering,
                dataflow=dataflow,
            )
            for name in names
        ],
        engine="batch",
    )
    for name, result in zip(names, results):
        reference = runs[name]
        if (result.schedule is None) != (reference.schedule is None):
            failures.append(OracleFailure(
                "batchcompile", case.name,
                f"feasibility flips under the batch engine: "
                f"{result.error or reference.error}",
                scheduler=name,
            ))
        elif result.schedule is None:
            got = result.error
            want = reference.error
            if (
                (str(got), got.cluster, got.required, got.available)
                != (str(want), want.cluster, want.required, want.available)
            ):
                failures.append(OracleFailure(
                    "batchcompile", case.name,
                    f"infeasibility payload diverges under the batch "
                    f"engine: {got!r} vs {want!r}",
                    scheduler=name,
                ))
        elif result.schedule != reference.schedule:
            failures.append(OracleFailure(
                "batchcompile", case.name,
                f"schedule changes under the batch engine "
                f"(rf {result.schedule.rf} vs {reference.schedule.rf}, "
                f"keeps {len(result.schedule.keeps)} vs "
                f"{len(reference.schedule.keeps)})",
                scheduler=name,
            ))
    return failures


def _strip_scheduler_prefix(message: str, scheduler: str) -> str:
    """Drop the ``"<scheduler>: "`` prefix the base scheduler puts on
    its capacity diagnostics, so payloads of different schedulers on
    the same infeasible case compare on substance."""
    prefix = f"{scheduler}: "
    if message.startswith(prefix):
        return message[len(prefix):]
    return message


def _check_exactgap(case, runs, architecture, application, clustering,
                    dataflow) -> List[OracleFailure]:
    """Greedy must never beat the exact solver, and both sides of the
    comparison must be telling the truth.

    Four assertions on top of the shared CDS run:

    * feasibility verdicts agree, with identical error payloads
      (message up to the scheduler-name prefix, cluster, word counts);
    * exact total traffic (data + context) <= greedy total traffic;
    * the solver's closed-form model equals the materialised
      ``TransferSummary`` totals of **both** solutions — a model error
      would otherwise let a wrong "optimum" hide behind a wrong bound;
    * the solver's internal greedy seed replays the CDS decision
      (same RF, same keeps in the same order) byte for byte.
    """
    from repro.schedule.exact import ExactDataScheduler

    failures = []
    cds = runs["cds"]
    scheduler = ExactDataScheduler(architecture)
    try:
        schedule = scheduler.schedule(
            application, clustering, dataflow=dataflow
        )
        error = None
    except InfeasibleScheduleError as exc:
        schedule, error = None, exc

    if (schedule is None) != (cds.schedule is None):
        failures.append(OracleFailure(
            "exactgap", case.name,
            f"feasibility verdict flips under the exact solver: "
            f"cds {'feasible' if cds.feasible else 'infeasible'} but "
            f"exact {'feasible' if schedule is not None else 'infeasible'} "
            f"({error or cds.error})",
            scheduler="exact",
        ))
        return failures
    if schedule is None:
        got, want = error, cds.error
        if (
            _strip_scheduler_prefix(str(got), "exact"),
            got.cluster, got.required, got.available,
        ) != (
            _strip_scheduler_prefix(str(want), "cds"),
            want.cluster, want.required, want.available,
        ):
            failures.append(OracleFailure(
                "exactgap", case.name,
                f"infeasibility payload diverges from the reference "
                f"scheduler: {got!r} vs {want!r}",
                scheduler="exact",
            ))
        return failures

    solution = scheduler.last_solution
    exact_summary = schedule.summary()
    greedy_summary = cds.schedule.summary()
    exact_total = (
        exact_summary.total_data_words + exact_summary.total_context_words
    )
    greedy_total = (
        greedy_summary.total_data_words + greedy_summary.total_context_words
    )
    if exact_total > greedy_total:
        failures.append(OracleFailure(
            "exactgap", case.name,
            f"greedy beats the exact solver: cds moves {greedy_total} "
            f"words but exact moves {exact_total} "
            f"(rf {cds.schedule.rf} vs {schedule.rf}, keeps "
            f"{len(cds.schedule.keeps)} vs {len(schedule.keeps)}) — "
            f"a bug in one of them",
            scheduler="exact",
        ))
    if solution.traffic_words != exact_total:
        failures.append(OracleFailure(
            "exactgap", case.name,
            f"traffic model diverges from the materialised exact "
            f"schedule: model {solution.traffic_words} vs summary "
            f"{exact_total}",
            scheduler="exact",
        ))
    if solution.greedy_traffic_words != greedy_total:
        failures.append(OracleFailure(
            "exactgap", case.name,
            f"traffic model diverges from the materialised cds "
            f"schedule: model {solution.greedy_traffic_words} vs "
            f"summary {greedy_total}",
            scheduler="exact",
        ))
    if (
        solution.greedy_rf != cds.schedule.rf
        or solution.greedy_keeps != cds.schedule.keeps
    ):
        failures.append(OracleFailure(
            "exactgap", case.name,
            f"the solver's greedy mirror diverges from the CDS "
            f"decision: rf {solution.greedy_rf} vs {cds.schedule.rf}, "
            f"keeps {len(solution.greedy_keeps)} vs "
            f"{len(cds.schedule.keeps)}",
            scheduler="exact",
        ))
    return failures


def _check_progequiv(case, runs) -> List[OracleFailure]:
    """Templated codegen and fast verification must be byte-identical
    to the reference backend on every feasible schedule, under both
    context-reuse modes: same :class:`Program` (visits included), the
    same ordered violation list, and the same generation errors."""
    from repro.codegen.verifier import (
        collect_program_violations,
        iter_program_violations,
    )
    from repro.errors import CodegenError

    failures = []
    for run in runs.values():
        if run.schedule is None:
            continue
        for reuse in (False, True):
            label = "reuse_resident_contexts" if reuse else "default"
            reference = templated = None
            ref_error = tpl_error = None
            try:
                reference = generate_program(
                    run.schedule, reuse_resident_contexts=reuse,
                    engine="reference",
                )
            except CodegenError as exc:
                ref_error = str(exc)
            try:
                templated = generate_program(
                    run.schedule, reuse_resident_contexts=reuse,
                    engine="templated",
                )
            except CodegenError as exc:
                tpl_error = str(exc)
            if ref_error != tpl_error:
                failures.append(OracleFailure(
                    "progequiv", case.name,
                    f"[{label}] codegen errors diverge: "
                    f"reference={ref_error!r} templated={tpl_error!r}",
                    scheduler=run.scheduler,
                ))
                continue
            if reference is None:
                continue
            if templated != reference or reference != templated:
                failures.append(OracleFailure(
                    "progequiv", case.name,
                    f"[{label}] templated program differs from reference",
                    scheduler=run.scheduler,
                ))
                continue
            ref_violations = list(iter_program_violations(reference))
            fast_violations = collect_program_violations(templated)
            if fast_violations != ref_violations:
                failures.append(OracleFailure(
                    "progequiv", case.name,
                    f"[{label}] fast verifier returned "
                    f"{len(fast_violations)} violation(s), reference replay "
                    f"{len(ref_violations)}",
                    scheduler=run.scheduler,
                ))
    return failures


def _check_freelist(case, runs, architecture) -> List[OracleFailure]:
    failures = []
    for run in runs.values():
        if run.schedule is None:
            continue
        allocator = FrameBufferAllocator(
            run.schedule, free_list_factory=MirroredFreeList
        )
        for fb_set in (0, 1):
            try:
                allocation = allocator.allocate_set(fb_set)
                allocation.verify()
            except ReproError as exc:
                failures.append(OracleFailure(
                    "freelist", case.name,
                    f"set {fb_set}: {exc}",
                    scheduler=run.scheduler,
                ))
                continue
            if allocation.peak_words > architecture.fb_set_words:
                failures.append(OracleFailure(
                    "freelist", case.name,
                    f"set {fb_set} peak {allocation.peak_words} exceeds "
                    f"capacity {architecture.fb_set_words}",
                    scheduler=run.scheduler,
                ))
    return failures


def _check_verifier(case, runs) -> List[OracleFailure]:
    failures = []
    for run in runs.values():
        if run.program is None:
            continue
        try:
            verify_program(run.program)
        except ReproError as exc:
            failures.append(OracleFailure(
                "verifier", case.name, str(exc), scheduler=run.scheduler,
            ))
    return failures


def _check_hazards(case, runs) -> List[OracleFailure]:
    """Feasible programs must analyze clean under sound DMA policies.

    ``loads_first`` is the documented-unsound ablation and ``adaptive``
    is capacity-sound but not placement-sound, so only the two
    always-sound policies are asserted clean here; the others remain
    reachable through ``repro analyze --policy``.
    """
    from repro.dataflow.analyzer import analyze_program
    from repro.schedule.context_scheduler import DmaPolicy

    failures = []
    for run in runs.values():
        if run.program is None:
            continue
        for policy in (DmaPolicy.CONTEXTS_FIRST, DmaPolicy.STORES_FIRST):
            try:
                collector = analyze_program(run.program, policy=policy)
            except ReproError as exc:
                failures.append(OracleFailure(
                    "hazards", case.name,
                    f"analysis crashed under {policy.name.lower()}: {exc}",
                    scheduler=run.scheduler,
                ))
                continue
            if collector.has_errors:
                first = collector.errors[0]
                failures.append(OracleFailure(
                    "hazards", case.name,
                    f"{len(collector.errors)} error finding(s) under "
                    f"{policy.name.lower()}; first: {first}",
                    scheduler=run.scheduler,
                ))
    return failures


def _check_simengine(case, runs, architecture) -> List[OracleFailure]:
    """Vectorized and reference engines must agree byte-for-byte.

    The pipeline reports above came from the vectorized fast path
    (``trace=False``); re-simulating with ``engine="reference"`` must
    reproduce the identical :class:`~repro.sim.report.SimulationReport`
    — every aggregate and every per-visit timing.
    """
    failures = []
    for run in runs.values():
        if run.program is None or run.report is None:
            continue
        reference = simulate_program(
            run.program, architecture, engine="reference",
        )
        if reference != run.report:
            diverging = [
                field.name
                for field in dataclasses.fields(reference)
                if getattr(reference, field.name)
                != getattr(run.report, field.name)
            ]
            failures.append(OracleFailure(
                "simengine", case.name,
                f"vectorized and reference engines diverge on "
                f"{diverging}",
                scheduler=run.scheduler,
            ))
    return failures


def _check_functional(case, runs, architecture) -> List[OracleFailure]:
    failures = []
    for run in runs.values():
        if run.program is None:
            continue
        try:
            machine = MorphoSysM1(architecture, functional=True)
            report = Simulator(machine).run(run.program, functional=True)
        except ReproError as exc:
            failures.append(OracleFailure(
                "functional", case.name, str(exc), scheduler=run.scheduler,
            ))
            continue
        if report.functional_verified is not True:
            failures.append(OracleFailure(
                "functional", case.name,
                f"functional verification outcome: "
                f"{report.functional_verified}",
                scheduler=run.scheduler,
            ))
    return failures
