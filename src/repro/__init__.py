"""repro — A Complete Data Scheduler for Multi-Context Reconfigurable
Architectures (reproduction of Sanchez-Elez et al., DATE 2002).

The package implements the paper's compilation framework for
MorphoSys-style multi-context reconfigurable architectures:

* an application model (kernels, data objects, clusters);
* the M1 architecture substrate (RC array, dual-set frame buffer,
  context memory, single DMA channel, external memory);
* three data schedulers — the Basic Scheduler [3], the Data Scheduler
  [5] and the paper's **Complete Data Scheduler**;
* the frame-buffer allocation algorithm (paper Figure 4);
* a code generator and an event-driven simulator producing the paper's
  evaluation metrics.

Quickstart::

    from repro import Application, Architecture, Clustering
    from repro import CompleteDataScheduler, simulate

    app = (
        Application.build("demo", total_iterations=32)
        .data("d", "0.5K")
        .kernel("k1", context_words=32, cycles=600, inputs=["d"],
                outputs=["r"], result_sizes={"r": 256})
        .kernel("k2", context_words=32, cycles=500, inputs=["r"],
                outputs=["out"], result_sizes={"out": 256})
        .final("out")
        .finish()
    )
    arch = Architecture.m1("2K")
    schedule = CompleteDataScheduler(arch).schedule(
        app, Clustering.per_kernel(app))
    report = simulate(schedule, arch)
    print(report.total_cycles)
"""

from repro.arch import Architecture, MorphoSysM1, TimingModel
from repro.core import (
    Application,
    ApplicationBuilder,
    Cluster,
    Clustering,
    DataObject,
    Kernel,
    analyze_dataflow,
)
from repro.errors import InfeasibleScheduleError, ReproError
from repro.schedule import (
    BasicScheduler,
    CompleteDataScheduler,
    DataScheduler,
    KernelScheduler,
    Schedule,
    ScheduleOptions,
)
from repro.codegen import generate_program, verify_program
from repro.sim import SimulationReport, Simulator
from repro.transform import tile_kernel

__version__ = "1.0.0"

__all__ = [
    "Application",
    "ApplicationBuilder",
    "Architecture",
    "BasicScheduler",
    "Cluster",
    "Clustering",
    "CompleteDataScheduler",
    "DataObject",
    "DataScheduler",
    "InfeasibleScheduleError",
    "Kernel",
    "KernelScheduler",
    "MorphoSysM1",
    "ReproError",
    "Schedule",
    "ScheduleOptions",
    "SimulationReport",
    "Simulator",
    "TimingModel",
    "analyze_dataflow",
    "generate_program",
    "simulate",
    "tile_kernel",
    "validate_schedule",
    "verify_program",
    "__version__",
]


def validate_schedule(schedule, architecture=None, **kwargs):
    """Run every checker against a schedule; see
    :func:`repro.analysis.validate.validate_schedule`.

    (Imported lazily to keep ``import repro`` light.)
    """
    from repro.analysis.validate import validate_schedule as _validate

    return _validate(schedule, architecture, **kwargs)


def simulate(schedule, architecture=None, **kwargs) -> SimulationReport:
    """One-call pipeline: lower *schedule*, simulate, return the report.

    Args:
        schedule: a :class:`Schedule` from any scheduler.
        architecture: target architecture; defaults to an M1 with the
            schedule's frame-buffer set size.
        **kwargs: forwarded to :meth:`Simulator.run` (``functional``,
            ``kernel_impls``, ``seed``).
    """
    if architecture is None:
        architecture = Architecture.m1(schedule.fb_set_words)
    machine = MorphoSysM1(architecture)
    program = generate_program(schedule)
    return Simulator(machine).run(program, **kwargs)
