"""Structured diagnostics: the output contract of every lint pass.

A :class:`Diagnostic` pinpoints one violation of a paper invariant in
one pipeline artifact: a rule code (``SCHED003``), a severity, the
artifact layer and location, a human-readable message, and — where the
violation has a measurable price — its cost in words of frame-buffer
space or external-memory traffic.

A :class:`DiagnosticCollector` accumulates diagnostics across passes,
applying per-rule severity overrides and suppressions, and renders the
result as JSON-safe data for the reporters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["Severity", "Diagnostic", "DiagnosticCollector"]


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` marks a violated correctness invariant (the schedule or
    program is wrong); ``WARNING`` marks a legal but wasteful decision
    (traffic or space spent for nothing); ``INFO`` marks a deviation
    from the paper's reported behaviour worth knowing about.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse ``"error"`` / ``"warning"`` / ``"info"`` (any case)."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            known = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown severity {text!r}; expected one of: {known}"
            ) from None

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One violation found by a lint pass.

    Attributes:
        code: rule code, e.g. ``"SCHED003"`` (see ``docs/lint_rules.md``).
        severity: effective severity (after any collector override).
        layer: artifact layer — ``"application"``, ``"schedule"``,
            ``"allocation"`` or ``"program"``.
        location: where in the artifact, e.g. ``"cluster Cl2"`` or
            ``"visit 7"``.
        message: human-readable description of the violation.
        cost_words: quantified price of the violation in words (wasted
            frame-buffer space, redundant external transfers, ...);
            0 when the violation has no meaningful word cost.
        details: JSON-safe extra facts for machine consumers.
    """

    code: str
    severity: Severity
    layer: str
    location: str
    message: str
    cost_words: int = 0
    details: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """JSON-safe representation."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "layer": self.layer,
            "location": self.location,
            "message": self.message,
            "cost_words": self.cost_words,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        cost = f" [{self.cost_words}w]" if self.cost_words else ""
        return (
            f"{self.severity.value}[{self.code}] {self.layer}:"
            f"{self.location}: {self.message}{cost}"
        )


class DiagnosticCollector:
    """Accumulates diagnostics with per-rule configuration.

    Args:
        severity_overrides: map rule code -> :class:`Severity`, replacing
            the rule's default severity for every diagnostic it emits
            (e.g. promote a warning to an error in CI).
        suppress: rule codes to drop entirely.
    """

    def __init__(
        self,
        severity_overrides: Optional[Mapping[str, Severity]] = None,
        suppress: Iterable[str] = (),
    ):
        self.severity_overrides: Dict[str, Severity] = dict(
            severity_overrides or {}
        )
        self.suppressed = frozenset(suppress)
        self._diagnostics: List[Diagnostic] = []
        self._rules_checked: List[str] = []
        self._suppressed_count = 0

    # -- collection -----------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> Optional[Diagnostic]:
        """Record a diagnostic, applying overrides and suppressions.

        Returns the (possibly severity-adjusted) stored diagnostic, or
        ``None`` when the rule is suppressed.
        """
        if diagnostic.code in self.suppressed:
            self._suppressed_count += 1
            return None
        override = self.severity_overrides.get(diagnostic.code)
        if override is not None and override is not diagnostic.severity:
            diagnostic = Diagnostic(
                code=diagnostic.code,
                severity=override,
                layer=diagnostic.layer,
                location=diagnostic.location,
                message=diagnostic.message,
                cost_words=diagnostic.cost_words,
                details=diagnostic.details,
            )
        self._diagnostics.append(diagnostic)
        return diagnostic

    def mark_checked(self, code: str) -> None:
        """Record that a rule was evaluated (even if it found nothing)."""
        if code not in self._rules_checked:
            self._rules_checked.append(code)

    # -- queries --------------------------------------------------------

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        """All diagnostics, in emission order."""
        return tuple(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def by_severity(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._diagnostics)

    @property
    def rules_checked(self) -> Tuple[str, ...]:
        """Rule codes evaluated over this collection run."""
        return tuple(self._rules_checked)

    @property
    def suppressed_count(self) -> int:
        """Diagnostics dropped by per-rule suppression."""
        return self._suppressed_count

    @property
    def total_cost_words(self) -> int:
        """Summed word cost over all retained diagnostics."""
        return sum(d.cost_words for d in self._diagnostics)

    def sorted(self) -> Tuple[Diagnostic, ...]:
        """Diagnostics ordered by severity, then code, then location."""
        return tuple(
            sorted(
                self._diagnostics,
                key=lambda d: (d.severity.rank, d.code, d.location),
            )
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-safe summary + diagnostics.

        Diagnostics are ordered by ``(code, location, message)`` — a
        total, content-determined order, so two runs over the same
        artifacts produce byte-identical reports regardless of pass
        execution order.  (The text reporter keeps :meth:`sorted`'s
        severity-first presentation.)  The summary carries both the
        flat counts and a per-severity block mapping each severity to
        its count and summed word cost.
        """
        per_severity = {
            severity.value: {
                "count": len(self.by_severity(severity)),
                "cost_words": sum(
                    d.cost_words for d in self.by_severity(severity)
                ),
            }
            for severity in Severity
        }
        ordered = sorted(
            self._diagnostics,
            key=lambda d: (d.code, d.location, d.message),
        )
        return {
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "total": len(self._diagnostics),
                "suppressed": self._suppressed_count,
                "cost_words": self.total_cost_words,
                "rules_checked": list(self._rules_checked),
                "by_severity": per_severity,
            },
            "diagnostics": [d.to_json() for d in ordered],
        }
