"""Program-layer hazard rules (``HAZ``/``DFA``) backed by the static
analyzer in :mod:`repro.dataflow`.

One pass lowers the program to the def-use IR, builds the happens
before graph for the default (sound) DMA policy, and runs all five
hazard passes.  ``repro analyze`` exposes the same passes with a
selectable policy; here they ride along with every full ``repro lint``
run so a hazardous program can never lint clean.
"""

from __future__ import annotations

from repro.dataflow.hazards import HappensBefore
from repro.dataflow.ir import lower_program
from repro.dataflow.passes import HAZARD_RULES, run_hazard_passes
from repro.lint.diagnostics import Severity
from repro.lint.registry import Emitter, LintContext, lint_pass, register_rule

register_rule(
    "HAZ001", "program", Severity.ERROR,
    "no DMA transfer may race a kernel or transfer on shared FB/CM words",
    "section 2 (overlap windows), section 6 (store-before-load ordering)",
)
register_rule(
    "HAZ002", "program", Severity.ERROR,
    "simultaneously-live values never occupy overlapping FB words",
    "section 5, Figure 4 (allocation correctness)",
)
register_rule(
    "HAZ003", "program", Severity.ERROR,
    "CM/FB residency stays within capacity at every happens-before point",
    "section 3 (DS(C) <= FBS), section 5 (CM blocks)",
)
register_rule(
    "DFA001", "program", Severity.WARNING,
    "loaded data must be read by at least one kernel before eviction",
    "section 3 (minimised data traffic)",
)
register_rule(
    "DFA002", "program", Severity.WARNING,
    "retained objects must be reused before eviction",
    "section 4 (TF/RF retention decisions)",
)


@lint_pass(
    "hazard-analysis",
    layer="program",
    requires=("program",),
    rules=HAZARD_RULES,
)
def check_hazards(context: LintContext, emit: Emitter) -> None:
    """Run the five dataflow hazard passes over the lowered program."""
    ir = lower_program(
        context.program, allocations=context.allocations or None
    )
    hb = HappensBefore.build(ir)
    run_hazard_passes(ir, hb, emit)
