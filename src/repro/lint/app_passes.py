"""Application / dataflow lint passes (rule codes ``APP*``).

:class:`~repro.core.application.Application` already validates most of
these invariants at construction time; the lint passes re-check them as
defence in depth (artifacts can be assembled programmatically, pickled,
or mutated by transforms) and add the wasteful-but-legal cases
construction deliberately allows — e.g. a produced result that nobody
reads (dead store, APP003).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.lint.diagnostics import Severity
from repro.lint.registry import Emitter, LintContext, lint_pass, register_rule

__all__: List[str] = []

register_rule(
    "APP001", "application", Severity.ERROR,
    "every consumer of a produced object runs after its producer "
    "(no dependency cycles)",
    "section 3: kernels are consecutively executed; r_jt flows from "
    "k_j to a later k_t",
)
register_rule(
    "APP002", "application", Severity.ERROR,
    "every declared object is read or written by some kernel, and every "
    "referenced object is declared",
    "section 3: data d_j and results r_jt / rout_j are per-kernel facts",
)
register_rule(
    "APP003", "application", Severity.WARNING,
    "a produced object is consumed by a later kernel or is a final "
    "output (no dead stores)",
    "section 3: results are data for later kernels or are transferred "
    "to external memory",
)
register_rule(
    "APP004", "application", Severity.ERROR,
    "object sizes are positive, each object has one producer, and "
    "iteration-invariant objects are external data",
    "section 4: TDS sums per-iteration data and result sizes",
)
register_rule(
    "APP005", "application", Severity.WARNING,
    "kernels declare positive context words and cycle counts",
    "section 2: a kernel is characterised by its contexts and its "
    "execution time",
)
register_rule(
    "APP006", "application", Severity.ERROR,
    "dataflow info agrees with the application and clustering it was "
    "derived from",
    "figure 2: the information extractor feeds the data schedulers",
)


@lint_pass(
    "app-structure",
    layer="application",
    requires=("application",),
    rules=("APP001", "APP002", "APP003", "APP004", "APP005"),
)
def check_application_structure(context: LintContext, emit: Emitter) -> None:
    application = context.application
    objects = dict(application.objects)

    producers: Dict[str, int] = {}
    consumers: Dict[str, List[int]] = {}
    for position, kernel in enumerate(application.kernels):
        for obj_name in kernel.outputs:
            if obj_name in producers:
                other = application.kernels[producers[obj_name]].name
                emit(
                    "APP004",
                    f"object {obj_name!r} produced by both {other!r} and "
                    f"{kernel.name!r} (single assignment required)",
                    location=f"object {obj_name!r}",
                )
            else:
                producers[obj_name] = position
        for obj_name in kernel.inputs:
            consumers.setdefault(obj_name, []).append(position)
        if kernel.context_words <= 0 or kernel.cycles <= 0:
            emit(
                "APP005",
                f"kernel {kernel.name!r} declares context_words="
                f"{kernel.context_words}, cycles={kernel.cycles}; both "
                f"should be positive",
                location=f"kernel {kernel.name!r}",
            )
        for obj_name in kernel.inputs + kernel.outputs:
            if obj_name not in objects:
                emit(
                    "APP002",
                    f"kernel {kernel.name!r} references undeclared object "
                    f"{obj_name!r}",
                    location=f"kernel {kernel.name!r}",
                )

    # Ordering: a consumer at or before its producer breaks the forward
    # dataflow of the kernel sequence (a cycle, once clustered).
    for obj_name, consumer_positions in consumers.items():
        producer_pos = producers.get(obj_name)
        if producer_pos is None:
            continue
        for position in consumer_positions:
            if position <= producer_pos:
                emit(
                    "APP001",
                    f"kernel {application.kernels[position].name!r} consumes "
                    f"{obj_name!r} at position {position}, but its producer "
                    f"{application.kernels[producer_pos].name!r} runs at "
                    f"position {producer_pos}",
                    location=f"object {obj_name!r}",
                )

    finals: Set[str] = set(application.final_outputs)
    for obj_name in sorted(finals):
        if obj_name not in objects:
            emit(
                "APP002",
                f"final output {obj_name!r} is not a declared object",
                location=f"object {obj_name!r}",
            )
        elif obj_name not in producers:
            emit(
                "APP002",
                f"final output {obj_name!r} is not produced by any kernel",
                location=f"object {obj_name!r}",
            )

    for obj_name, obj in objects.items():
        size = getattr(obj, "size", 0)
        if size <= 0:
            emit(
                "APP004",
                f"object {obj_name!r} has non-positive size {size}",
                location=f"object {obj_name!r}",
            )
        if getattr(obj, "invariant", False) and obj_name in producers:
            producer = application.kernels[producers[obj_name]].name
            emit(
                "APP004",
                f"object {obj_name!r} is produced by {producer!r} but "
                f"marked iteration-invariant; only external data may be "
                f"invariant",
                location=f"object {obj_name!r}",
            )
        if obj_name not in producers and obj_name not in consumers:
            emit(
                "APP002",
                f"object {obj_name!r} is neither read nor written by any "
                f"kernel",
                location=f"object {obj_name!r}",
            )
        elif (
            obj_name in producers
            and obj_name not in consumers
            and obj_name not in finals
        ):
            emit(
                "APP003",
                f"result {obj_name!r} is produced by "
                f"{application.kernels[producers[obj_name]].name!r} but "
                f"never consumed and not a final output (dead store)",
                location=f"object {obj_name!r}",
                cost_words=max(0, size),
            )


@lint_pass(
    "app-dataflow-consistency",
    layer="application",
    requires=("application", "clustering", "dataflow"),
    rules=("APP006",),
)
def check_dataflow_consistency(context: LintContext, emit: Emitter) -> None:
    """The extractor's facts must match a fresh derivation."""
    application = context.application
    clustering = context.clustering
    dataflow = context.dataflow
    assert clustering is not None and dataflow is not None

    for obj_name in application.objects:
        if obj_name not in dataflow:
            emit(
                "APP006",
                f"dataflow info is missing object {obj_name!r}",
                location=f"object {obj_name!r}",
            )
            continue
        info = dataflow[obj_name]
        producer = application.producer_of(obj_name)
        expected_producer = producer.name if producer else None
        if info.producer != expected_producer:
            emit(
                "APP006",
                f"dataflow records producer {info.producer!r} for "
                f"{obj_name!r}; the application says "
                f"{expected_producer!r}",
                location=f"object {obj_name!r}",
            )
            continue
        expected_clusters = tuple(
            sorted({
                clustering.cluster_of(k.name).index
                for k in application.consumers_of(obj_name)
            })
        )
        if tuple(info.consumer_clusters) != expected_clusters:
            emit(
                "APP006",
                f"dataflow records consumer clusters "
                f"{list(info.consumer_clusters)} for {obj_name!r}; the "
                f"clustering implies {list(expected_clusters)}",
                location=f"object {obj_name!r}",
            )
        declared = application.objects[obj_name]
        if info.size != declared.size:
            emit(
                "APP006",
                f"dataflow records size {info.size} for {obj_name!r}; the "
                f"application declares {declared.size}",
                location=f"object {obj_name!r}",
                cost_words=abs(info.size - declared.size),
            )
