"""Text and JSON rendering of collected diagnostics."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.lint.diagnostics import DiagnosticCollector, Severity
from repro.lint.registry import LAYERS, RULES

__all__ = ["render_text", "render_json", "severity_overrides_from_args"]


def render_text(
    collector: DiagnosticCollector,
    *,
    title: Optional[str] = None,
    verbose: bool = False,
) -> str:
    """Human-readable report, grouped by artifact layer.

    Args:
        collector: the filled collector.
        title: optional heading (experiment id, scheduler, ...).
        verbose: also list every rule checked, found-something or not.
    """
    lines: List[str] = []
    if title:
        lines.append(f"lint report: {title}")
    by_layer: Dict[str, List] = {layer: [] for layer in LAYERS}
    for diagnostic in collector.sorted():
        by_layer.setdefault(diagnostic.layer, []).append(diagnostic)
    for layer in LAYERS:
        found = by_layer.get(layer, ())
        if not found:
            continue
        lines.append(f"-- {layer} " + "-" * max(1, 40 - len(layer)))
        for diagnostic in found:
            lines.append(f"  {diagnostic}")
    errors = len(collector.errors)
    warnings = len(collector.warnings)
    infos = len(collector.infos)
    checked = len(collector.rules_checked)
    summary = (
        f"{errors} error(s), {warnings} warning(s), {infos} info(s) "
        f"from {checked} rule(s) checked"
    )
    if collector.suppressed_count:
        summary += f"; {collector.suppressed_count} suppressed"
    if collector.total_cost_words:
        summary += f"; {collector.total_cost_words} words implicated"
    if not collector.diagnostics:
        lines.append(f"clean: no findings ({summary})")
    else:
        lines.append(summary)
    if verbose:
        lines.append("rules checked:")
        for code in sorted(collector.rules_checked):
            rule = RULES.get(code)
            title_text = rule.title if rule else "?"
            lines.append(f"  {code}: {title_text}")
    return "\n".join(lines)


def render_json(
    collector: DiagnosticCollector,
    *,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """JSON-safe report payload (callers serialise it).

    Args:
        collector: the filled collector.
        extra: top-level keys merged into the payload (experiment id,
            scheduler name, ...).
    """
    payload: Dict[str, object] = dict(extra or {})
    payload.update(collector.to_json())
    payload["clean"] = not collector.has_errors
    return payload


def severity_overrides_from_args(
    pairs: List[str],
) -> Dict[str, Severity]:
    """Parse CLI ``CODE=LEVEL`` pairs into an overrides mapping."""
    overrides: Dict[str, Severity] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(
                f"severity override {pair!r} is not CODE=LEVEL"
            )
        code, _, level = pair.partition("=")
        overrides[code.strip().upper()] = Severity.parse(level)
    return overrides
