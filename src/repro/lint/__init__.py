"""Multi-pass static analysis over the whole compilation pipeline.

``repro.lint`` checks every pipeline artifact against the paper's
invariants and reports violations as structured diagnostics instead of
raising on the first problem:

* **application** — producer/consumer ordering, dead stores, size and
  invariant-data constraints, dataflow-extractor consistency (``APP*``);
* **schedule** — ``DS(C_c) <= FBS`` occupancy, plan-level
  use-before-load and double stores, TF/RF formula consistency, keeps
  that save no traffic (``SCHED*``);
* **allocation** — overlap, bounds, Figure-4 growth directions, splits
  and adjacency (``ALLOC*``);
* **program** — the symbolic replay of
  :mod:`repro.codegen.verifier`, collected instead of raised
  (``PROG*``), plus the timing-aware hazard passes of
  :mod:`repro.dataflow` (``HAZ*``/``DFA*``).

See ``docs/lint_rules.md`` for the full rule catalogue with the paper
section each rule enforces.  The CLI front end is ``repro lint``.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, DiagnosticCollector, Severity
from repro.lint.registry import (
    LAYERS,
    PASSES,
    RULES,
    LintContext,
    LintPass,
    Rule,
    lint_pass,
    register_rule,
    run_passes,
)

# Importing the pass modules registers their rules and passes.
from repro.lint import alloc_passes as _alloc_passes  # noqa: F401
from repro.lint import app_passes as _app_passes  # noqa: F401
from repro.lint import hazard_passes as _hazard_passes  # noqa: F401
from repro.lint import prog_passes as _prog_passes  # noqa: F401
from repro.lint import sched_passes as _sched_passes  # noqa: F401

from repro.lint.reporters import render_json, render_text
from repro.lint.runner import (
    LintTarget,
    build_lint_context,
    corrupt_schedule,
    lint_context,
    lint_experiment,
    lint_schedule,
    lint_targets,
    resolve_target,
)

__all__ = [
    "Diagnostic",
    "DiagnosticCollector",
    "Severity",
    "LAYERS",
    "PASSES",
    "RULES",
    "LintContext",
    "LintPass",
    "Rule",
    "lint_pass",
    "register_rule",
    "run_passes",
    "render_json",
    "render_text",
    "LintTarget",
    "build_lint_context",
    "corrupt_schedule",
    "lint_context",
    "lint_experiment",
    "lint_schedule",
    "lint_targets",
    "resolve_target",
]
