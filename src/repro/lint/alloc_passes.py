"""Allocation-map lint passes (rule codes ``ALLOC*``).

The Figure-4 allocator is deterministic and self-checking online; these
passes re-verify its output offline so a corrupted or hand-built
:class:`~repro.alloc.allocator.AllocationMap` cannot silently reach
code generation:

* no two lifetime-overlapping records share words (ALLOC001);
* every extent lies inside the frame-buffer set (ALLOC002);
* growth directions follow Figure 4 — long-lived inputs and kept items
  from upper addresses, results from lower addresses (ALLOC003);
* splits and broken iteration adjacency are surfaced as the
  quality-of-result deviations the paper reports on (ALLOC004/5);
* the peak fits the capacity and lifetimes are well-formed
  (ALLOC006/7).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.reuse import SharedData, SharedResult
from repro.lint.diagnostics import Severity
from repro.lint.registry import Emitter, LintContext, lint_pass, register_rule

__all__: List[str] = []

register_rule(
    "ALLOC001", "allocation", Severity.ERROR,
    "records overlapping in lifetime never overlap in address space",
    "section 5: each data or result gets its own frame-buffer region",
)
register_rule(
    "ALLOC002", "allocation", Severity.ERROR,
    "every extent lies inside the frame-buffer set",
    "section 2: one FB set is a fixed-size data cache",
)
register_rule(
    "ALLOC003", "allocation", Severity.WARNING,
    "placements follow Figure 4's growth directions (inputs and kept "
    "items from upper addresses, results from lower addresses)",
    "figure 4: shared data are placed first from upper addresses to "
    "minimise fragmentation",
)
register_rule(
    "ALLOC004", "allocation", Severity.WARNING,
    "no object is split across free blocks",
    "section 5: the paper reports zero splits across all experiments",
)
register_rule(
    "ALLOC005", "allocation", Severity.INFO,
    "iteration instances are placed adjacent to the previous instance",
    "section 5: data and results are allocated from the addresses "
    "where the previous iteration of them was placed",
)
register_rule(
    "ALLOC006", "allocation", Severity.ERROR,
    "peak occupancy of the round fits the set capacity",
    "section 4: DS(C_c) <= FBS must hold through execution",
)
register_rule(
    "ALLOC007", "allocation", Severity.ERROR,
    "record lifetimes are well-formed and unique per instance",
    "figure 4: allocate on production/load, release(c, k, iter) once "
    "dead",
)


@lint_pass(
    "alloc-lifetimes",
    layer="allocation",
    requires=("allocations",),
    rules=("ALLOC002", "ALLOC006", "ALLOC007"),
)
def check_lifetimes(context: LintContext, emit: Emitter) -> None:
    for allocation in context.allocations:
        set_location = f"fb_set {allocation.fb_set}"
        if allocation.peak_words > allocation.capacity_words:
            emit(
                "ALLOC006",
                f"round peak {allocation.peak_words} words exceeds the "
                f"set capacity {allocation.capacity_words}",
                location=set_location,
                cost_words=allocation.peak_words
                - allocation.capacity_words,
            )
        # The same (name, instance) may be loaded and released again in
        # a later cluster (nothing kept) — a *duplicate* means two
        # records for one instance alive at the same time.
        live: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
        for record in allocation.records:
            location = f"{set_location}:{record.name}#{record.instance}"
            key = (record.name, record.instance)
            span = (record.alloc_step, record.free_step)
            for other in live.get(key, ()):
                if span[0] < other[1] and other[0] < span[1]:
                    emit(
                        "ALLOC007",
                        f"duplicate allocation record for "
                        f"{record.name}#{record.instance}: two live "
                        f"copies over steps {other} and {span}",
                        location=location,
                    )
            live.setdefault(key, []).append(span)
            if record.free_step <= record.alloc_step:
                emit(
                    "ALLOC007",
                    f"record freed at step {record.free_step}, not after "
                    f"its allocation at step {record.alloc_step}",
                    location=location,
                )
            for extent in record.extents:
                if extent.start < 0 or extent.end > allocation.capacity_words:
                    emit(
                        "ALLOC002",
                        f"extent [{extent.start}..{extent.end}) lies "
                        f"outside the set capacity "
                        f"{allocation.capacity_words}",
                        location=location,
                        cost_words=max(
                            0, extent.end - allocation.capacity_words
                        ) + max(0, -extent.start),
                    )


@lint_pass(
    "alloc-overlap",
    layer="allocation",
    requires=("allocations",),
    rules=("ALLOC001",),
)
def check_overlap(context: LintContext, emit: Emitter) -> None:
    """Offline re-check of the allocator's online exclusion property."""
    for allocation in context.allocations:
        records = allocation.records
        for i, first in enumerate(records):
            for second in records[i + 1:]:
                overlap_in_time = (
                    first.alloc_step < second.free_step
                    and second.alloc_step < first.free_step
                )
                if not overlap_in_time:
                    continue
                for extent_a in first.extents:
                    for extent_b in second.extents:
                        if extent_a.overlaps(extent_b):
                            overlap = min(
                                extent_a.end, extent_b.end
                            ) - max(extent_a.start, extent_b.start)
                            emit(
                                "ALLOC001",
                                f"{first.name}#{first.instance} and "
                                f"{second.name}#{second.instance} overlap "
                                f"in space ({extent_a} vs {extent_b}) "
                                f"while both live",
                                location=f"fb_set {allocation.fb_set}",
                                cost_words=max(0, overlap),
                            )


@lint_pass(
    "alloc-placement-policy",
    layer="allocation",
    requires=("allocations", "schedule", "dataflow"),
    rules=("ALLOC003", "ALLOC004", "ALLOC005"),
)
def check_placement_policy(context: LintContext, emit: Emitter) -> None:
    schedule = context.schedule
    dataflow = context.dataflow
    assert schedule is not None and dataflow is not None

    kept_high: Set[str] = set()
    for keep in schedule.keeps:
        if isinstance(keep, (SharedData, SharedResult)):
            kept_high.add(keep.name)

    # Expected direction per (cluster, object): inputs "high",
    # produced results "low" unless kept (Figure 4).
    expected: Dict[Tuple[int, str], str] = {}
    for plan in schedule.cluster_plans:
        if plan.cluster_index >= len(schedule.clustering):
            continue
        for obj_name in plan.loads + plan.kept_inputs:
            expected[(plan.cluster_index, obj_name)] = "high"
        for obj_name in dataflow.produced_by_cluster(plan.cluster_index):
            if obj_name in kept_high:
                expected[(plan.cluster_index, obj_name)] = "high"
            else:
                expected[(plan.cluster_index, obj_name)] = "low"

    for allocation in context.allocations:
        for record in allocation.records:
            location = (
                f"fb_set {allocation.fb_set}:"
                f"{record.name}#{record.instance}"
            )
            if record.split:
                emit(
                    "ALLOC004",
                    f"placement split across {len(record.extents)} free "
                    f"blocks (the paper reports zero splits)",
                    location=location,
                    cost_words=record.size,
                )
            if not record.regular:
                emit(
                    "ALLOC005",
                    "placement broke iteration adjacency (irregular "
                    "addressing for the RC array)",
                    location=location,
                )
            want = expected.get((record.cluster_index, record.name))
            if want is not None and record.direction != want:
                emit(
                    "ALLOC003",
                    f"placed growing {record.direction!r}; Figure 4 "
                    f"places this object growing {want!r}",
                    location=location,
                )
