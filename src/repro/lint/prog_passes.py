"""Program-level lint passes (rule codes ``PROG*``).

The pass wraps the symbolic replay of
:mod:`repro.codegen.verifier` — the same machine that historically
raised :class:`~repro.errors.ProgramVerificationError` on the first
violation — and converts every collected
:class:`~repro.codegen.verifier.ProgramViolation` into a structured
diagnostic, so a broken program reports *all* of its violations with
rule codes instead of dying on the first.
"""

from __future__ import annotations

from typing import List

from repro.codegen.verifier import collect_program_violations
from repro.lint.diagnostics import Severity
from repro.lint.registry import Emitter, LintContext, lint_pass, register_rule

__all__: List[str] = []

register_rule(
    "PROG001", "program", Severity.ERROR,
    "every kernel launch finds all its input instances in the "
    "executing frame-buffer set (no use-before-load)",
    "section 2: the RC array computes out of one FB set; section 4's "
    "kept items must actually be resident",
)
register_rule(
    "PROG002", "program", Severity.ERROR,
    "every kernel launch finds its contexts in the visit's CM block, "
    "and no block overflows",
    "section 2: contexts are loaded into one CM block while the other "
    "executes",
)
register_rule(
    "PROG003", "program", Severity.ERROR,
    "stores move instances that are present and were produced (never "
    "external data)",
    "section 3: only results are transferred back to external memory",
)
register_rule(
    "PROG004", "program", Severity.ERROR,
    "every kernel iteration executes exactly once and every final "
    "output instance is stored exactly once",
    "section 3: n iterations are processed, final results reach "
    "external memory",
)
register_rule(
    "PROG005", "program", Severity.ERROR,
    "no redundant loads, and results are only loaded after being "
    "stored externally",
    "section 4: avoiding unnecessary transfers is the point of the "
    "Complete Data Scheduler",
)
register_rule(
    "PROG006", "program", Severity.ERROR,
    "every visit executes on the frame-buffer set its cluster is "
    "assigned to",
    "section 2: clusters alternate between the two FB sets",
)


@lint_pass(
    "prog-replay",
    layer="program",
    requires=("program",),
    rules=("PROG001", "PROG002", "PROG003", "PROG004", "PROG005",
           "PROG006"),
)
def check_program_replay(context: LintContext, emit: Emitter) -> None:
    program = context.program
    assert program is not None
    for violation in collect_program_violations(program):
        emit(
            violation.code,
            violation.message,
            location=violation.location,
            cost_words=violation.cost_words,
            **dict(violation.details),
        )
