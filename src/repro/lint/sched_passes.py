"""Schedule / cluster-plan lint passes (rule codes ``SCHED*``).

These rules re-derive the paper's scheduling invariants from first
principles and compare them against what the schedule records:

* capacity — ``DS(C_c) <= FBS`` for every cluster (section 4);
* plan-level data motion — every cluster input is loaded or kept, no
  double loads, stores exactly for final outputs and unserved shared
  results;
* retention bookkeeping — keep decisions agree with the dataflow facts
  and the TF formulas of section 4, and actually save traffic;
* reuse factor — consistent with ``max_common_rf`` and the iteration
  count (section 3's loop fission).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.metrics import cluster_data_size, cluster_footprint
from repro.core.reuse import SharedData, SharedResult
from repro.lint.diagnostics import Severity
from repro.lint.registry import Emitter, LintContext, lint_pass, register_rule
from repro.schedule.rf import max_common_rf

__all__: List[str] = []

register_rule(
    "SCHED001", "schedule", Severity.ERROR,
    "every cluster's peak occupancy fits one frame-buffer set "
    "(DS(C_c) <= FBS)",
    "section 4: scheduling checks DS(C_c) <= FBS for all clusters",
)
register_rule(
    "SCHED002", "schedule", Severity.ERROR,
    "the recorded peak occupancy equals the recomputed DS(C_c) for the "
    "schedule's RF and keeps",
    "section 3, DS(C_c) formula; section 4 extends it with kept items",
)
register_rule(
    "SCHED003", "schedule", Severity.ERROR,
    "every cluster input is either loaded or served by a keep decision "
    "(no use-before-load at plan level)",
    "section 3: data for the next cluster are transferred before it "
    "executes",
)
register_rule(
    "SCHED004", "schedule", Severity.ERROR,
    "no duplicate or conflicting load/keep entries (no double loads)",
    "section 4: kept data are loaded once, by the first consuming "
    "cluster",
)
register_rule(
    "SCHED005", "schedule", Severity.ERROR,
    "final outputs and unserved shared results are stored to external "
    "memory",
    "section 3: final results have to be transferred to the external "
    "memory",
)
register_rule(
    "SCHED006", "schedule", Severity.ERROR,
    "stores are produced by the storing cluster and not duplicated "
    "(no double stores)",
    "section 3: rout_j / final results are stored by their producing "
    "cluster",
)
register_rule(
    "SCHED007", "schedule", Severity.WARNING,
    "every keep decision avoids at least one external transfer",
    "section 4: TF reflects the time saving gained from keeping shared "
    "data or results",
)
register_rule(
    "SCHED008", "schedule", Severity.ERROR,
    "keep decisions agree with the dataflow facts and the TF formulas "
    "(|D_i..j|*(N-1), |R_i,j..k|*(N+1))",
    "section 4, TF(D_i..j) and TF(R_i,j..k) formulas",
)
register_rule(
    "SCHED009", "schedule", Severity.WARNING,
    "the reuse factor is the highest common RF the frame-buffer set "
    "size allows",
    "section 4: CDS achieves the highest common RF value allowed by "
    "the internal memory size",
)
register_rule(
    "SCHED010", "schedule", Severity.WARNING,
    "the reuse factor does not exceed the application's iteration count",
    "section 3: RF consecutive executions of n total iterations",
)
register_rule(
    "SCHED011", "schedule", Severity.ERROR,
    "cluster plans are complete, ordered, and on their cluster's "
    "frame-buffer set",
    "section 2: clusters alternate between the two FB sets",
)
register_rule(
    "SCHED012", "schedule", Severity.ERROR,
    "every cluster's contexts fit one context-memory block",
    "section 2: one CM block executes while the other is reloaded",
)


def _plan_location(schedule, plan) -> str:
    cluster = schedule.clustering[plan.cluster_index]
    return f"cluster {cluster.name}"


@lint_pass(
    "sched-plan-structure",
    layer="schedule",
    requires=("schedule",),
    rules=("SCHED011",),
)
def check_plan_structure(context: LintContext, emit: Emitter) -> None:
    schedule = context.schedule
    assert schedule is not None
    clustering = schedule.clustering
    if len(schedule.cluster_plans) != len(clustering):
        emit(
            "SCHED011",
            f"{len(schedule.cluster_plans)} cluster plans for "
            f"{len(clustering)} clusters",
            location="schedule",
        )
        return
    for position, plan in enumerate(schedule.cluster_plans):
        if plan.cluster_index != position:
            emit(
                "SCHED011",
                f"plan at position {position} claims cluster index "
                f"{plan.cluster_index}",
                location=f"plan[{position}]",
            )
            continue
        cluster = clustering[position]
        if plan.fb_set != cluster.fb_set:
            emit(
                "SCHED011",
                f"plan for {cluster.name} claims FB set {plan.fb_set}; the "
                f"clustering assigns set {cluster.fb_set}",
                location=f"cluster {cluster.name}",
            )


@lint_pass(
    "sched-occupancy",
    layer="schedule",
    requires=("schedule", "dataflow"),
    rules=("SCHED001", "SCHED002", "SCHED012"),
)
def check_occupancy(context: LintContext, emit: Emitter) -> None:
    schedule = context.schedule
    dataflow = context.dataflow
    assert schedule is not None and dataflow is not None
    fbs = schedule.fb_set_words
    for plan in schedule.cluster_plans:
        location = _plan_location(schedule, plan)
        if plan.peak_occupancy > fbs:
            emit(
                "SCHED001",
                f"peak occupancy {plan.peak_occupancy} words exceeds one "
                f"frame-buffer set ({fbs} words)",
                location=location,
                cost_words=plan.peak_occupancy - fbs,
                peak=plan.peak_occupancy,
                fb_set_words=fbs,
            )
        if plan.cluster_index >= len(schedule.clustering):
            continue  # reported by SCHED011
        try:
            if schedule.scheduler == "basic":
                expected = cluster_footprint(dataflow, plan.cluster_index)
            else:
                expected = cluster_data_size(
                    dataflow, plan.cluster_index, schedule.rf, schedule.keeps
                )
        except Exception:
            # A structurally-broken keep makes DS(C_c) incomputable;
            # sched-keeps reports the keep itself (SCHED008).
            continue
        if plan.peak_occupancy != expected:
            emit(
                "SCHED002",
                f"recorded peak occupancy {plan.peak_occupancy} words; "
                f"recomputed DS(C_c) is {expected} words at RF="
                f"{schedule.rf}",
                location=location,
                cost_words=abs(plan.peak_occupancy - expected),
                recorded=plan.peak_occupancy,
                recomputed=expected,
            )
    if schedule.context_block_words > 0:
        for cluster in schedule.clustering:
            words = schedule.clustering.context_words_of(cluster)
            if words > schedule.context_block_words:
                emit(
                    "SCHED012",
                    f"cluster contexts need {words} words; one "
                    f"context-memory block holds "
                    f"{schedule.context_block_words}",
                    location=f"cluster {cluster.name}",
                    cost_words=words - schedule.context_block_words,
                )


@lint_pass(
    "sched-data-motion",
    layer="schedule",
    requires=("schedule", "dataflow"),
    rules=("SCHED003", "SCHED004", "SCHED005", "SCHED006"),
)
def check_data_motion(context: LintContext, emit: Emitter) -> None:
    schedule = context.schedule
    dataflow = context.dataflow
    assert schedule is not None and dataflow is not None
    keeps = schedule.keeps

    for plan in schedule.cluster_plans:
        if plan.cluster_index >= len(schedule.clustering):
            continue  # reported by SCHED011
        location = _plan_location(schedule, plan)
        cluster_index = plan.cluster_index
        inputs = dataflow.inputs_of_cluster(cluster_index)
        covered = set(plan.loads) | set(plan.kept_inputs)

        # SCHED003: every input is either loaded or kept.
        for obj_name in inputs:
            if obj_name not in covered:
                info = dataflow[obj_name]
                emit(
                    "SCHED003",
                    f"input {obj_name!r} is neither loaded nor kept; the "
                    f"cluster would read it before any load",
                    location=location,
                    cost_words=info.words_for(schedule.rf),
                    object=obj_name,
                )
        # SCHED003: a kept input needs a keep decision that serves it.
        for obj_name in plan.kept_inputs:
            serving = [
                keep for keep in keeps
                if keep.name == obj_name and cluster_index in (
                    keep.clusters if isinstance(keep, SharedData)
                    else getattr(keep, "consumer_clusters", ())
                )
            ]
            if not serving:
                emit(
                    "SCHED003",
                    f"input {obj_name!r} is marked kept but no keep "
                    f"decision serves this cluster",
                    location=location,
                    object=obj_name,
                )

        # SCHED004: duplicates and conflicts.
        seen = set()
        for obj_name in plan.loads:
            if obj_name in seen:
                emit(
                    "SCHED004",
                    f"object {obj_name!r} appears twice in the load list",
                    location=location,
                    cost_words=dataflow[obj_name].words_for(schedule.rf)
                    if obj_name in dataflow else 0,
                    object=obj_name,
                )
            seen.add(obj_name)
        for obj_name in plan.loads:
            if obj_name in plan.kept_inputs:
                emit(
                    "SCHED004",
                    f"object {obj_name!r} is both loaded and kept in the "
                    f"same cluster plan (double handling)",
                    location=location,
                    object=obj_name,
                )
            if obj_name not in inputs:
                emit(
                    "SCHED004",
                    f"object {obj_name!r} is loaded but is not an input of "
                    f"the cluster (wasted load)",
                    location=location,
                    cost_words=dataflow[obj_name].words_for(schedule.rf)
                    if obj_name in dataflow else 0,
                    object=obj_name,
                )

        # SCHED005 / SCHED006: store completeness and validity.
        produced = set(dataflow.produced_by_cluster(cluster_index))
        store_counts: Dict[str, int] = {}
        for obj_name in plan.stores:
            store_counts[obj_name] = store_counts.get(obj_name, 0) + 1
        for obj_name, count in store_counts.items():
            if count > 1:
                emit(
                    "SCHED006",
                    f"object {obj_name!r} is stored {count} times by one "
                    f"cluster plan (double store)",
                    location=location,
                    cost_words=(count - 1)
                    * dataflow[obj_name].words_for(schedule.rf)
                    if obj_name in dataflow else 0,
                    object=obj_name,
                )
            if obj_name not in produced:
                emit(
                    "SCHED006",
                    f"object {obj_name!r} is stored but not produced by "
                    f"this cluster",
                    location=location,
                    object=obj_name,
                )
        for obj_name in produced:
            info = dataflow[obj_name]
            later = [c for c in info.consumer_clusters if c > cluster_index]
            keep = next(
                (
                    k for k in keeps
                    if isinstance(k, SharedResult)
                    and k.name == obj_name
                    and k.producer_cluster == cluster_index
                ),
                None,
            )
            served = set(keep.consumer_clusters) if keep is not None else set()
            unserved = [c for c in later if c not in served]
            needs_store = info.is_final or bool(unserved)
            if needs_store and obj_name not in store_counts:
                reason = (
                    "a final output" if info.is_final
                    else f"consumed by unserved clusters {unserved}"
                )
                emit(
                    "SCHED005",
                    f"result {obj_name!r} is {reason} but never stored",
                    location=location,
                    cost_words=info.words_for(schedule.rf),
                    object=obj_name,
                )


@lint_pass(
    "sched-keeps",
    layer="schedule",
    requires=("schedule", "dataflow"),
    rules=("SCHED007", "SCHED008"),
)
def check_keeps(context: LintContext, emit: Emitter) -> None:
    schedule = context.schedule
    dataflow = context.dataflow
    assert schedule is not None and dataflow is not None
    clustering = schedule.clustering

    retained_by_cluster: Dict[int, set] = {}
    for plan in schedule.cluster_plans:
        retained_by_cluster[plan.cluster_index] = set(plan.retained_outputs)

    for keep in schedule.keeps:
        try:
            label = keep.label
        except Exception:  # duck-typed or structurally broken keep
            label = type(keep).__name__
        location = f"keep {label}({keep.name})"
        if isinstance(keep, SharedData) and not keep.clusters:
            emit(
                "SCHED008",
                "keep lists no consumer clusters",
                location=location,
            )
            continue
        if (
            isinstance(keep, SharedResult)
            and not keep.consumer_clusters
        ):
            emit(
                "SCHED008",
                "keep lists no consumer clusters",
                location=location,
            )
            continue
        if keep.name not in dataflow:
            emit(
                "SCHED008",
                f"keep references unknown object {keep.name!r}",
                location=location,
            )
            continue
        info = dataflow[keep.name]
        if keep.size != info.size:
            emit(
                "SCHED008",
                f"keep records size {keep.size}; the dataflow says "
                f"{info.size}",
                location=location,
                cost_words=abs(keep.size - info.size),
            )
        if isinstance(keep, SharedData):
            clusters = tuple(keep.clusters)
            expected_avoided = keep.size * max(0, len(clusters) - 1)
            out_of_range = [
                c for c in clusters if not 0 <= c < len(clustering)
            ]
            if out_of_range:
                emit(
                    "SCHED008",
                    f"keep references nonexistent clusters {out_of_range}",
                    location=location,
                )
                continue
            if list(clusters) != sorted(set(clusters)):
                emit(
                    "SCHED008",
                    f"consumer clusters {list(clusters)} are not strictly "
                    f"ascending",
                    location=location,
                )
            unknown = [c for c in clusters
                       if c not in info.consumer_clusters]
            if unknown:
                emit(
                    "SCHED008",
                    f"keep lists consumer clusters {unknown} that do not "
                    f"consume {keep.name!r}",
                    location=location,
                )
            if clusters and clustering[clusters[0]].fb_set != keep.fb_set:
                emit(
                    "SCHED008",
                    f"keep is homed on set {keep.fb_set} but its first "
                    f"consumer runs on set "
                    f"{clustering[clusters[0]].fb_set}",
                    location=location,
                )
        else:  # SharedResult (or duck-typed equivalent)
            consumers = tuple(keep.consumer_clusters)
            n = len(consumers)
            expected_avoided = keep.size * (
                n if getattr(keep, "store_required", False) else n + 1
            )
            out_of_range = [
                c for c in (keep.producer_cluster,) + consumers
                if not 0 <= c < len(clustering)
            ]
            if out_of_range:
                emit(
                    "SCHED008",
                    f"keep references nonexistent clusters {out_of_range}",
                    location=location,
                )
                continue
            if any(c <= keep.producer_cluster for c in consumers):
                emit(
                    "SCHED008",
                    f"keep lists consumers {list(consumers)} at or before "
                    f"its producer cluster {keep.producer_cluster}",
                    location=location,
                )
            if info.producer_cluster != keep.producer_cluster:
                emit(
                    "SCHED008",
                    f"keep records producer cluster "
                    f"{keep.producer_cluster}; the dataflow says "
                    f"{info.producer_cluster}",
                    location=location,
                )
            elif clustering[keep.producer_cluster].fb_set != keep.fb_set:
                emit(
                    "SCHED008",
                    f"keep is homed on set {keep.fb_set} but its producer "
                    f"runs on set "
                    f"{clustering[keep.producer_cluster].fb_set}",
                    location=location,
                )
            unknown = [c for c in consumers
                       if c not in info.consumer_clusters]
            if unknown:
                emit(
                    "SCHED008",
                    f"keep lists consumer clusters {unknown} that do not "
                    f"consume {keep.name!r}",
                    location=location,
                )
            if keep.producer_cluster in retained_by_cluster and (
                keep.name
                not in retained_by_cluster[keep.producer_cluster]
            ):
                emit(
                    "SCHED008",
                    f"kept result {keep.name!r} is missing from its "
                    f"producer cluster's retained outputs",
                    location=location,
                )
        # TF formula: words_avoided must match the paper's counting.
        if keep.words_avoided != expected_avoided:
            emit(
                "SCHED008",
                f"keep claims {keep.words_avoided} words avoided per "
                f"iteration; the TF formula gives {expected_avoided}",
                location=location,
                cost_words=abs(keep.words_avoided - expected_avoided),
            )
        # SCHED007: a keep that avoids nothing only wastes FB space.
        if keep.words_avoided <= 0:
            wasted = keep.size * (
                1 if getattr(keep, "invariant", False) else schedule.rf
            )
            emit(
                "SCHED007",
                f"keep avoids no external transfers; it only occupies "
                f"{wasted} words of frame buffer",
                location=location,
                cost_words=wasted,
            )


@lint_pass(
    "sched-rf",
    layer="schedule",
    requires=("schedule", "dataflow"),
    rules=("SCHED009", "SCHED010"),
)
def check_reuse_factor(context: LintContext, emit: Emitter) -> None:
    schedule = context.schedule
    dataflow = context.dataflow
    assert schedule is not None and dataflow is not None
    total = schedule.application.total_iterations
    if schedule.rf > total:
        emit(
            "SCHED010",
            f"RF={schedule.rf} exceeds the application's "
            f"{total} iterations; fission deeper than the iteration "
            f"count cannot help",
            location="schedule",
        )
    # Only the Complete Data Scheduler promises RF maximality.
    if schedule.scheduler != "cds" or schedule.contexts_per_iteration:
        return
    achievable = max_common_rf(dataflow, schedule.fb_set_words, keeps=())
    if 0 < schedule.rf < achievable:
        from repro.units import ceil_div

        context_per_round = sum(
            schedule.clustering.context_words_of(cluster)
            for cluster in schedule.clustering
        )
        extra_rounds = (
            ceil_div(total, schedule.rf) - ceil_div(total, achievable)
        )
        emit(
            "SCHED009",
            f"RF={schedule.rf} but RF={achievable} fits the frame-buffer "
            f"set; the schedule reloads contexts for {extra_rounds} extra "
            f"rounds",
            location="schedule",
            cost_words=extra_rounds * context_per_round,
            rf=schedule.rf,
            achievable_rf=achievable,
        )
