"""Driving the lint passes over whole pipelines and experiments.

Three entry points, by how much of the pipeline the caller has:

* :func:`lint_schedule` — application + schedule layers only, from a
  finished :class:`~repro.schedule.plan.Schedule` (used by the
  schedulers' ``strict_lint`` self-check);
* :func:`build_lint_context` — run the full pipeline (schedule,
  allocation, codegen) for an application and return every artifact in
  one :class:`~repro.lint.registry.LintContext`;
* :func:`lint_experiment` — resolve a named bundled experiment (the
  Table-1 rows plus the functional wavelet codec), build its context
  and run all four layers.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import ReproError
from repro.lint.diagnostics import DiagnosticCollector, Severity
from repro.lint.registry import LintContext, run_passes
from repro.schedule.plan import Schedule

__all__ = [
    "LintTarget",
    "lint_targets",
    "resolve_target",
    "build_lint_context",
    "lint_context",
    "lint_schedule",
    "lint_experiment",
    "corrupt_schedule",
]

_SCHEDULERS = ("basic", "ds", "cds")


@dataclasses.dataclass(frozen=True)
class LintTarget:
    """One named, lintable workload: a builder plus an FB size."""

    id: str
    fb: str
    description: str

    def build(self) -> Tuple[Application, Clustering]:
        from repro.workloads.spec import paper_experiments
        from repro.workloads.wavelet import wavelet_functional

        if self.id == "WAVELET":
            application, clustering, _ = wavelet_functional()
            return application, clustering
        for spec in paper_experiments():
            if spec.id == self.id:
                return spec.build()
        raise ReproError(f"unknown lint target {self.id!r}")


def lint_targets() -> Tuple[LintTarget, ...]:
    """Every bundled lintable workload: Table 1 plus the wavelet codec."""
    from repro.workloads.spec import paper_experiments

    targets = [
        LintTarget(id=spec.id, fb=spec.fb, description=spec.notes or "")
        for spec in paper_experiments()
    ]
    targets.append(
        LintTarget(
            id="WAVELET", fb="1K",
            description="functional wavelet codec (library kernels)",
        )
    )
    return tuple(targets)


def resolve_target(name: str) -> LintTarget:
    """Find a target by id (case-insensitive)."""
    for target in lint_targets():
        if target.id.lower() == name.lower():
            return target
    known = ", ".join(target.id for target in lint_targets())
    raise ReproError(f"unknown lint target {name!r}; known: {known}")


def _scheduler_for(name: str, architecture: Architecture):
    from repro.schedule.basic import BasicScheduler
    from repro.schedule.complete import CompleteDataScheduler
    from repro.schedule.data_scheduler import DataScheduler

    classes = {
        "basic": BasicScheduler,
        "ds": DataScheduler,
        "cds": CompleteDataScheduler,
    }
    if name not in classes:
        raise ReproError(
            f"unknown scheduler {name!r}; known: {', '.join(_SCHEDULERS)}"
        )
    return classes[name](architecture)


def build_lint_context(
    application: Application,
    clustering: Optional[Clustering] = None,
    *,
    architecture: Optional[Architecture] = None,
    scheduler: str = "cds",
    with_alloc: bool = True,
    with_program: bool = True,
) -> LintContext:
    """Run the pipeline and bundle every artifact for linting.

    Args:
        application: the application to push through the pipeline.
        clustering: cluster partition (per-kernel when omitted).
        architecture: target architecture (M1 with 2K sets when omitted).
        scheduler: ``"basic"``, ``"ds"`` or ``"cds"``.
        with_alloc: also run the Figure-4 allocator on both FB sets.
        with_program: also lower the schedule to a program.
    """
    architecture = architecture or Architecture.m1("2K")
    if clustering is None:
        clustering = Clustering.per_kernel(application)
    schedule = _scheduler_for(scheduler, architecture).schedule(
        application, clustering
    )
    return lint_context(
        schedule, with_alloc=with_alloc, with_program=with_program
    )


def lint_context(
    schedule: Schedule,
    *,
    with_alloc: bool = True,
    with_program: bool = True,
) -> LintContext:
    """Bundle a finished schedule (plus derived artifacts) for linting."""
    allocations: Tuple = ()
    if with_alloc:
        from repro.alloc.allocator import FrameBufferAllocator

        allocations = FrameBufferAllocator(schedule).allocate()
    program = None
    if with_program:
        from repro.codegen.generator import generate_program

        program = generate_program(schedule)
    return LintContext(
        application=schedule.application,
        clustering=schedule.clustering,
        dataflow=schedule.dataflow,
        schedule=schedule,
        allocations=allocations,
        program=program,
    )


def lint_schedule(
    schedule: Schedule,
    *,
    collector: Optional[DiagnosticCollector] = None,
) -> DiagnosticCollector:
    """Lint the application and schedule layers of one schedule.

    This is the cheap self-check the schedulers run under
    ``ScheduleOptions.strict_lint`` — no allocation or codegen happens.
    """
    context = LintContext(
        application=schedule.application,
        clustering=schedule.clustering,
        dataflow=schedule.dataflow,
        schedule=schedule,
    )
    return run_passes(
        context,
        collector=collector,
        layers=("application", "schedule"),
    )


def lint_experiment(
    name: str,
    *,
    scheduler: str = "cds",
    layers: Optional[Iterable[str]] = None,
    severity_overrides: Optional[Mapping[str, Severity]] = None,
    suppress: Iterable[str] = (),
    corrupt: bool = False,
) -> Tuple[LintContext, DiagnosticCollector]:
    """Build and lint one bundled experiment end to end.

    Args:
        name: target id (``"MPEG"``, ``"ATR-SLD"``, ``"WAVELET"``, ...).
        scheduler: which scheduler produces the schedule under lint.
        layers: restrict the pass registry to these layers.
        severity_overrides: per-rule severity replacement.
        suppress: rule codes to drop.
        corrupt: deliberately corrupt the schedule before linting
            (drops a load from the first plan that has one) — a
            self-test hook demonstrating the framework catches a broken
            schedule at both the plan and the program layer.
    """
    target = resolve_target(name)
    application, clustering = target.build()
    architecture = Architecture.m1(target.fb)
    schedule = _scheduler_for(scheduler, architecture).schedule(
        application, clustering
    )
    if corrupt:
        schedule = corrupt_schedule(schedule)
    context = lint_context(schedule)
    collector = DiagnosticCollector(
        severity_overrides=severity_overrides, suppress=suppress
    )
    run_passes(context, collector=collector, layers=layers)
    return context, collector


def corrupt_schedule(schedule: Schedule) -> Schedule:
    """Return a copy of *schedule* with one load dropped.

    The damaged plan claims an input that is neither loaded nor kept —
    the use-before-load class of bug the lint framework exists to
    catch (SCHED003 at the plan layer, PROG001 once lowered).
    """
    plans: List = list(schedule.cluster_plans)
    for index, plan in enumerate(plans):
        if plan.loads:
            plans[index] = dataclasses.replace(plan, loads=plan.loads[1:])
            break
    else:
        raise ReproError("cannot corrupt: no plan performs any load")
    return dataclasses.replace(schedule, cluster_plans=tuple(plans))
