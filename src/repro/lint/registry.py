"""The lint rule catalogue and pass registry.

A *rule* is one named invariant with a default severity and a pointer
into the paper (section / formula) justifying it; the full catalogue is
documented in ``docs/lint_rules.md``.  A *pass* is a function that
inspects one or more pipeline artifacts and emits diagnostics against
registered rules.  Passes declare which artifacts they need
(``requires``) and are skipped automatically when the
:class:`LintContext` lacks one — so the same registry serves a
schedule-only self-lint and the full four-layer ``repro lint`` run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.lint.diagnostics import Diagnostic, DiagnosticCollector, Severity

if TYPE_CHECKING:  # pragma: no cover — import cycle guard for annotations
    from repro.codegen.program import Program
    from repro.core.application import Application
    from repro.core.cluster import Clustering
    from repro.core.dataflow import DataflowInfo
    from repro.alloc.allocator import AllocationMap
    from repro.schedule.plan import Schedule

__all__ = [
    "LAYERS",
    "Rule",
    "RULES",
    "register_rule",
    "LintContext",
    "LintPass",
    "PASSES",
    "lint_pass",
    "Emitter",
    "run_passes",
]

#: Artifact layers, in pipeline order.
LAYERS: Tuple[str, ...] = ("application", "schedule", "allocation", "program")


@dataclass(frozen=True)
class Rule:
    """One registered invariant.

    Attributes:
        code: unique rule code (``APP001``, ``SCHED003``, ...).
        layer: the artifact layer the rule inspects.
        severity: default severity of its diagnostics.
        title: one-line statement of the invariant.
        paper_ref: the paper section / formula the rule enforces.
    """

    code: str
    layer: str
    severity: Severity
    title: str
    paper_ref: str


RULES: Dict[str, Rule] = {}


def register_rule(
    code: str,
    layer: str,
    severity: Severity,
    title: str,
    paper_ref: str,
) -> Rule:
    """Add a rule to the catalogue (import-time, in the pass modules)."""
    if layer not in LAYERS:
        raise ValueError(f"unknown lint layer {layer!r}")
    if code in RULES:
        raise ValueError(f"duplicate lint rule code {code!r}")
    rule = Rule(
        code=code, layer=layer, severity=severity,
        title=title, paper_ref=paper_ref,
    )
    RULES[code] = rule
    return rule


@dataclass
class LintContext:
    """The pipeline artifacts available to the passes.

    Only ``application`` is mandatory; passes requiring an absent
    artifact are skipped.  ``fb_set_words`` / ``context_block_words``
    come from the schedule when present.
    """

    application: "Application"
    clustering: Optional["Clustering"] = None
    dataflow: Optional["DataflowInfo"] = None
    schedule: Optional["Schedule"] = None
    allocations: Tuple["AllocationMap", ...] = ()
    program: Optional["Program"] = None

    def has(self, artifact: str) -> bool:
        """True when the named artifact is available."""
        value = getattr(self, artifact)
        if artifact == "allocations":
            return bool(value)
        return value is not None


#: Signature every pass function implements: inspect the context, emit
#: diagnostics through the provided emitter.
Emitter = Callable[..., Optional[Diagnostic]]


@dataclass(frozen=True)
class LintPass:
    """One registered pass: a function plus its artifact requirements."""

    name: str
    layer: str
    requires: Tuple[str, ...]
    rules: Tuple[str, ...]
    fn: Callable[[LintContext, Emitter], None]

    def runnable(self, context: LintContext) -> bool:
        return all(context.has(artifact) for artifact in self.requires)


PASSES: List[LintPass] = []


def lint_pass(
    name: str,
    *,
    layer: str,
    requires: Sequence[str] = ("application",),
    rules: Sequence[str] = (),
) -> Callable[[Callable[[LintContext, Emitter], None]],
              Callable[[LintContext, Emitter], None]]:
    """Decorator registering a pass function.

    Args:
        name: pass identifier (reported in verbose output).
        layer: which artifact layer the pass belongs to.
        requires: context attributes that must be present to run.
        rules: rule codes the pass may emit (marked as *checked* on
            every run, so reports can show coverage).
    """
    if layer not in LAYERS:
        raise ValueError(f"unknown lint layer {layer!r}")

    def decorator(
        fn: Callable[[LintContext, Emitter], None]
    ) -> Callable[[LintContext, Emitter], None]:
        for code in rules:
            if code not in RULES:
                raise ValueError(
                    f"pass {name!r} references unregistered rule {code!r}"
                )
        PASSES.append(
            LintPass(
                name=name,
                layer=layer,
                requires=tuple(requires),
                rules=tuple(rules),
                fn=fn,
            )
        )
        return fn

    return decorator


def _make_emitter(
    collector: DiagnosticCollector,
) -> Emitter:
    def emit(
        code: str,
        message: str,
        *,
        location: str = "",
        cost_words: int = 0,
        **details: object,
    ) -> Optional[Diagnostic]:
        rule = RULES[code]
        return collector.add(
            Diagnostic(
                code=code,
                severity=rule.severity,
                layer=rule.layer,
                location=location,
                message=message,
                cost_words=cost_words,
                details=details,
            )
        )

    return emit


def run_passes(
    context: LintContext,
    *,
    collector: Optional[DiagnosticCollector] = None,
    layers: Optional[Iterable[str]] = None,
) -> DiagnosticCollector:
    """Run every runnable registered pass over *context*.

    Args:
        context: the artifacts to lint.
        collector: collector to accumulate into (a fresh one when
            omitted); carries severity overrides and suppressions.
        layers: restrict to these layers (default: all four).

    Returns:
        The collector, filled with diagnostics.
    """
    # NB: an empty collector is falsy (it has __len__), so test identity.
    if collector is None:
        collector = DiagnosticCollector()
    wanted = set(layers) if layers is not None else set(LAYERS)
    unknown = wanted - set(LAYERS)
    if unknown:
        raise ValueError(f"unknown lint layers: {sorted(unknown)}")
    emit = _make_emitter(collector)
    for lint in PASSES:
        if lint.layer not in wanted or not lint.runnable(context):
            continue
        for code in lint.rules:
            collector.mark_checked(code)
        lint.fn(context, emit)
    return collector
