"""The assembled M1 machine: RC array + FB + CM + DMA + external memory.

:class:`MorphoSysM1` bundles the component models under one
:class:`~repro.arch.params.Architecture` description.  The simulator
(:mod:`repro.sim`) drives a machine instance; analyses that only need
capacities and timing work directly with the :class:`Architecture`.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.context_memory import ContextMemory
from repro.arch.dma import DmaChannel
from repro.arch.external_memory import ExternalMemory
from repro.arch.frame_buffer import FrameBuffer
from repro.arch.params import Architecture
from repro.arch.rc_array import RCArray

__all__ = ["MorphoSysM1"]


class MorphoSysM1:
    """A concrete machine instance ready for simulation.

    Args:
        architecture: capacities and timing (see
            :meth:`Architecture.m1` for the preset).
        functional: allocate real word storage in the frame buffer so
            programs can move and compute actual values; leave False for
            timing-only runs (much lighter).
    """

    def __init__(self, architecture: Architecture, *, functional: bool = False):
        self.architecture = architecture
        self.functional = functional
        self.rc_array = RCArray(architecture.rc_rows, architecture.rc_cols)
        self.frame_buffer = FrameBuffer(
            architecture.fb_set_words, functional=functional
        )
        self.context_memory = ContextMemory(
            architecture.context_block_words, architecture.context_blocks
        )
        self.dma = DmaChannel(architecture.timing)
        self.external_memory = ExternalMemory()

    @classmethod
    def m1(cls, fb_set_words="2K", *, functional: bool = False, **kwargs) -> "MorphoSysM1":
        """Shorthand for ``MorphoSysM1(Architecture.m1(...))``."""
        return cls(Architecture.m1(fb_set_words, **kwargs), functional=functional)

    def reset(self) -> None:
        """Return the machine to power-on state (drops all contents)."""
        self.frame_buffer.clear()
        self.context_memory.clear()
        self.context_memory.reset_counters()
        self.dma.reset()
        self.external_memory.clear()
        self.rc_array.reset_counters()

    def __str__(self) -> str:
        mode = "functional" if self.functional else "timing"
        return f"MorphoSysM1({self.architecture}, {mode})"
