"""Architecture description and timing parameters.

The paper's experiments vary the frame-buffer set size (``FB`` column of
Table 1: 1K .. 8K words) while the rest of M1 stays fixed, so
:class:`Architecture` exposes the FB set size as the primary knob and
provides an :meth:`Architecture.m1` preset for everything else.

The timing model is deliberately simple and linear — the schedulers
reason about *transfer volumes* and *overlap windows*, and the paper
reports relative improvements, which a linear model preserves:

* moving one data word between external memory and the FB costs
  ``timing.data_word_cycles`` DMA cycles;
* loading one 32-bit context word into the CM costs
  ``timing.context_word_cycles``;
* every DMA operation pays ``timing.dma_setup_cycles`` once (burst
  setup);
* kernels run for their library-supplied cycle count per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ArchitectureError
from repro.units import SizeLike, format_size, parse_size

__all__ = ["TimingModel", "Architecture"]


@dataclass(frozen=True)
class TimingModel:
    """Linear DMA/compute timing parameters (cycles).

    Attributes:
        data_word_cycles: DMA cycles to move one data word between
            external memory and a frame-buffer set.
        context_word_cycles: DMA cycles to load one context word into
            the context memory.
        dma_setup_cycles: fixed cost per DMA operation (burst setup).
    """

    data_word_cycles: int = 2
    context_word_cycles: int = 2
    dma_setup_cycles: int = 8

    def __post_init__(self) -> None:
        if self.data_word_cycles <= 0:
            raise ArchitectureError(
                f"data_word_cycles must be positive, got {self.data_word_cycles}"
            )
        if self.context_word_cycles <= 0:
            raise ArchitectureError(
                f"context_word_cycles must be positive, "
                f"got {self.context_word_cycles}"
            )
        if self.dma_setup_cycles < 0:
            raise ArchitectureError(
                f"dma_setup_cycles must be >= 0, got {self.dma_setup_cycles}"
            )

    def data_transfer_cycles(self, words: int) -> int:
        """DMA cycles to move *words* data words (one burst)."""
        if words < 0:
            raise ArchitectureError(f"negative transfer size {words}")
        if words == 0:
            return 0
        return self.dma_setup_cycles + words * self.data_word_cycles

    def context_transfer_cycles(self, words: int) -> int:
        """DMA cycles to load *words* context words (one burst)."""
        if words < 0:
            raise ArchitectureError(f"negative transfer size {words}")
        if words == 0:
            return 0
        return self.dma_setup_cycles + words * self.context_word_cycles


@dataclass(frozen=True)
class Architecture:
    """A multi-context reconfigurable architecture instance.

    Attributes:
        name: identifier used in reports.
        rc_rows / rc_cols: RC array dimensions (8x8 for M1).
        fb_set_words: capacity of **one** frame-buffer set, in words
            (the ``FBS`` the schedulers check ``DS(C_c)`` against).
        fb_sets: number of frame-buffer sets (2 for M1: one computes
            while the other transfers).
        context_block_words: capacity of one context-memory block, in
            32-bit context words.  A cluster's kernels must fit in one
            block; the other block is loaded during execution.
        context_blocks: number of CM blocks (2 for M1).
        fb_cross_set_access: the RC array can read operands from the
            *other* frame-buffer set while computing.  M1 cannot (False)
            — this models the architectural extension the paper's
            future work assumes for "data and results reuse among
            clusters assigned to different sets of the FB".
        timing: the :class:`TimingModel`.
    """

    name: str
    fb_set_words: int
    rc_rows: int = 8
    rc_cols: int = 8
    fb_sets: int = 2
    context_block_words: int = 512
    context_blocks: int = 2
    fb_cross_set_access: bool = False
    timing: TimingModel = field(default_factory=TimingModel)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fb_set_words", parse_size(self.fb_set_words))
        if self.fb_set_words <= 0:
            raise ArchitectureError(
                f"fb_set_words must be positive, got {self.fb_set_words}"
            )
        if self.rc_rows <= 0 or self.rc_cols <= 0:
            raise ArchitectureError(
                f"RC array dimensions must be positive, "
                f"got {self.rc_rows}x{self.rc_cols}"
            )
        if self.fb_sets != 2:
            raise ArchitectureError(
                f"the execution model requires exactly 2 FB sets "
                f"(double buffering), got {self.fb_sets}"
            )
        if self.context_block_words <= 0 or self.context_blocks != 2:
            raise ArchitectureError(
                f"context memory must have 2 blocks of positive size, got "
                f"{self.context_blocks} x {self.context_block_words}"
            )

    @classmethod
    def m1(
        cls,
        fb_set_words: SizeLike = "2K",
        *,
        name: Optional[str] = None,
        context_block_words: int = 512,
        fb_cross_set_access: bool = False,
        timing: Optional[TimingModel] = None,
    ) -> "Architecture":
        """The M1 (first MorphoSys implementation) preset.

        Only the frame-buffer set size usually varies between the
        paper's experiments; pass e.g. ``fb_set_words="8K"``.  Set
        ``fb_cross_set_access=True`` for the future-work architecture
        variant that can read the other set.
        """
        words = parse_size(fb_set_words)
        return cls(
            name=name or f"M1-FB{format_size(words)}",
            fb_set_words=words,
            context_block_words=context_block_words,
            fb_cross_set_access=fb_cross_set_access,
            timing=timing or TimingModel(),
        )

    def with_fb_set_words(self, fb_set_words: SizeLike) -> "Architecture":
        """A copy with a different frame-buffer set size."""
        words = parse_size(fb_set_words)
        return replace(
            self, fb_set_words=words, name=f"{self.name.split('-FB')[0]}-FB{format_size(words)}"
        )

    @property
    def rc_cells(self) -> int:
        """Number of reconfigurable cells."""
        return self.rc_rows * self.rc_cols

    @property
    def total_fb_words(self) -> int:
        """Total frame-buffer capacity across sets."""
        return self.fb_set_words * self.fb_sets

    def __str__(self) -> str:
        return (
            f"{self.name}: RC {self.rc_rows}x{self.rc_cols}, "
            f"FB {self.fb_sets}x{format_size(self.fb_set_words)}, "
            f"CM {self.context_blocks}x{self.context_block_words}w"
        )
