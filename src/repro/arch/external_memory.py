"""External (off-chip) memory model.

Holds the application's external input data and receives its stored
results.  In *accounting* mode it only tracks which objects exist and
counts traffic; in *functional* mode it stores actual NumPy word arrays
so an end-to-end run can verify that the scheduled program computes the
same values as a direct (unscheduled) execution of the kernels.

Per-iteration instances are tracked separately — iteration ``i`` of an
external input is a different block of words than iteration ``i + 1``
(a new macroblock, a new image tile, ...).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["ExternalMemory"]


class ExternalMemory:
    """Name-addressed external memory with per-iteration instances."""

    def __init__(self):
        self._store: Dict[Tuple[str, int], Optional[np.ndarray]] = {}
        self.words_read = 0
        self.words_written = 0

    # -- population -----------------------------------------------------

    def put(
        self,
        name: str,
        instance: int,
        values: Optional[np.ndarray] = None,
        *,
        size: Optional[int] = None,
    ) -> None:
        """Create (or overwrite) an object instance.

        Either *values* (functional mode) or *size* (accounting mode)
        must be given.
        """
        if values is not None:
            array = np.asarray(values, dtype=np.int64).ravel().copy()
            self._store[(name, instance)] = array
        elif size is not None:
            if size <= 0:
                raise SimulationError(
                    f"external object {name}#{instance} needs positive size"
                )
            self._store[(name, instance)] = None
        else:
            raise SimulationError(
                f"external object {name}#{instance}: give values or size"
            )

    def exists(self, name: str, instance: int) -> bool:
        """True if the instance is present."""
        return (name, instance) in self._store

    # -- transfers --------------------------------------------------------

    def read(self, name: str, instance: int, words: int) -> Optional[np.ndarray]:
        """Read an instance (a DMA load source).  Returns the stored
        array in functional mode, ``None`` in accounting mode."""
        key = (name, instance)
        if key not in self._store:
            raise SimulationError(
                f"load of {name}#{instance}: not present in external memory"
            )
        self.words_read += words
        values = self._store[key]
        if values is not None and values.size != words:
            raise SimulationError(
                f"load of {name}#{instance}: stored {values.size} words, "
                f"requested {words}"
            )
        return None if values is None else values.copy()

    def write(
        self,
        name: str,
        instance: int,
        words: int,
        values: Optional[np.ndarray] = None,
    ) -> None:
        """Write an instance (a DMA store destination)."""
        if words <= 0:
            raise SimulationError(
                f"store of {name}#{instance}: non-positive size {words}"
            )
        self.words_written += words
        if values is not None:
            array = np.asarray(values, dtype=np.int64).ravel()
            if array.size != words:
                raise SimulationError(
                    f"store of {name}#{instance}: got {array.size} words, "
                    f"declared {words}"
                )
            self._store[(name, instance)] = array.copy()
        else:
            self._store[(name, instance)] = None

    def get(self, name: str, instance: int) -> Optional[np.ndarray]:
        """Peek at an instance without counting traffic (for checks)."""
        return self._store.get((name, instance))

    def instances_of(self, name: str) -> Tuple[int, ...]:
        """All present instance indices of an object, ascending."""
        return tuple(sorted(i for (n, i) in self._store if n == name))

    def reset_counters(self) -> None:
        """Zero the traffic statistics."""
        self.words_read = 0
        self.words_written = 0

    def clear(self) -> None:
        """Drop everything."""
        self._store.clear()
        self.reset_counters()
