"""Context memory (CM): on-chip storage for RC-array configurations.

"Its functionality and interconnection network are configured through
32-bit context words, which are stored in a context memory (CM)"
(paper, section 2).  M1's CM is organised as two blocks so the contexts
of the next cluster can be loaded while the current cluster executes —
the multi-context property that makes dynamic reconfiguration cheap.

The model tracks, per block, which kernels' contexts are resident and
how many words they occupy.  The simulator asserts a kernel's contexts
are resident before it launches (a :class:`ProgramVerificationError`
otherwise would indicate a context-scheduling bug).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityError, SimulationError

__all__ = ["ContextMemory"]


class ContextMemory:
    """Two-block context memory with per-kernel residency tracking."""

    def __init__(self, block_words: int, blocks: int = 2):
        if block_words <= 0:
            raise CapacityError(
                f"context block size must be positive, got {block_words}"
            )
        if blocks != 2:
            raise CapacityError(f"context memory must have 2 blocks, got {blocks}")
        self.block_words = block_words
        self.blocks = blocks
        self._resident: Tuple[Dict[str, int], ...] = tuple(
            {} for _ in range(blocks)
        )
        self.loads_performed = 0
        self.words_loaded = 0

    def used_words(self, block: int) -> int:
        """Words occupied in one block."""
        return sum(self._resident[block].values())

    def free_words(self, block: int) -> int:
        """Words free in one block."""
        return self.block_words - self.used_words(block)

    def resident_kernels(self, block: int) -> Tuple[str, ...]:
        """Kernels whose contexts are resident in a block."""
        return tuple(self._resident[block].keys())

    def is_resident(self, kernel_name: str, block: Optional[int] = None) -> bool:
        """True if a kernel's contexts are resident (in *block* or any)."""
        blocks = range(self.blocks) if block is None else (block,)
        return any(kernel_name in self._resident[b] for b in blocks)

    def evict_block(self, block: int) -> None:
        """Drop every kernel resident in a block (reuse for next cluster)."""
        self._resident[block].clear()

    def load(self, kernel_name: str, context_words: int, block: int) -> None:
        """Load a kernel's contexts into a block.

        Raises:
            CapacityError: if the kernel's contexts can never fit a block.
            SimulationError: if the block currently lacks space (the
                caller should have evicted the previous cluster first)
                or the kernel is already resident in that block.
        """
        if context_words <= 0:
            raise CapacityError(
                f"kernel {kernel_name!r}: context_words must be positive, "
                f"got {context_words}"
            )
        if context_words > self.block_words:
            raise CapacityError(
                f"kernel {kernel_name!r} needs {context_words} context words; "
                f"a CM block holds {self.block_words}"
            )
        if kernel_name in self._resident[block]:
            raise SimulationError(
                f"kernel {kernel_name!r} contexts already resident in "
                f"block {block}"
            )
        if context_words > self.free_words(block):
            raise SimulationError(
                f"CM block {block} has {self.free_words(block)} free words; "
                f"kernel {kernel_name!r} needs {context_words} "
                f"(evict the previous cluster first)"
            )
        self._resident[block][kernel_name] = context_words
        self.loads_performed += 1
        self.words_loaded += context_words

    def clear(self) -> None:
        """Reset to power-on state (counters preserved)."""
        for block in self._resident:
            block.clear()

    def reset_counters(self) -> None:
        """Zero the load statistics."""
        self.loads_performed = 0
        self.words_loaded = 0

    def __str__(self) -> str:
        blocks = ", ".join(
            f"b{index}:{self.used_words(index)}/{self.block_words}w"
            f"({len(self._resident[index])} kernels)"
            for index in range(self.blocks)
        )
        return f"CM({blocks})"
