"""DMA controller: the single bridge to external memory.

"The DMA controller establishes the bridge that connects the external
memory the FB or the CM.  Thus simultaneous transfers of data and
contexts are not possible" (paper, section 2).  This single shared
channel is *the* structural constraint the Complete Data Scheduler
optimises around: every avoided data transfer frees DMA time that
context loads (or the next cluster's data) can use.

:class:`DmaChannel` is a timeline resource: callers request transfers
with an earliest-start time and receive ``(start, finish)`` cycle
stamps; the channel serialises everything and accumulates statistics by
:class:`TransferKind`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.params import TimingModel
from repro.errors import SimulationError

__all__ = ["TransferKind", "DmaTransfer", "DmaChannel"]


class TransferKind(enum.Enum):
    """What a DMA operation moves."""

    DATA_LOAD = "data_load"        # external memory -> frame buffer
    DATA_STORE = "data_store"      # frame buffer -> external memory
    CONTEXT_LOAD = "context_load"  # external memory -> context memory


@dataclass(frozen=True)
class DmaTransfer:
    """A completed DMA operation (for traces and statistics)."""

    kind: TransferKind
    label: str
    words: int
    start: int
    finish: int

    @property
    def cycles(self) -> int:
        return self.finish - self.start


class DmaChannel:
    """Serialising DMA timeline.

    The channel is non-preemptive: a transfer occupies the channel from
    its start to its finish, and requests are served in call order (the
    context scheduler decides that order before simulation).
    """

    def __init__(self, timing: TimingModel):
        self.timing = timing
        self.busy_until = 0
        self.transfers: List[DmaTransfer] = []

    def request(
        self,
        kind: TransferKind,
        words: int,
        earliest_start: int,
        label: str = "",
    ) -> Tuple[int, int]:
        """Schedule a transfer at or after *earliest_start*.

        Returns:
            ``(start, finish)`` cycle stamps.
        """
        if words < 0:
            raise SimulationError(f"negative transfer size {words} ({label})")
        if earliest_start < 0:
            raise SimulationError(
                f"negative earliest_start {earliest_start} ({label})"
            )
        if words == 0:
            start = max(self.busy_until, earliest_start)
            return (start, start)
        if kind is TransferKind.CONTEXT_LOAD:
            duration = self.timing.context_transfer_cycles(words)
        else:
            duration = self.timing.data_transfer_cycles(words)
        start = max(self.busy_until, earliest_start)
        finish = start + duration
        self.busy_until = finish
        self.transfers.append(
            DmaTransfer(kind=kind, label=label, words=words,
                        start=start, finish=finish)
        )
        return (start, finish)

    # -- statistics ---------------------------------------------------------

    def words_moved(self, kind: TransferKind) -> int:
        """Total words moved for one transfer kind."""
        return sum(t.words for t in self.transfers if t.kind is kind)

    def cycles_busy(self) -> int:
        """Total cycles the channel spent transferring."""
        return sum(t.cycles for t in self.transfers)

    def count(self, kind: TransferKind) -> int:
        """Number of transfers of one kind."""
        return sum(1 for t in self.transfers if t.kind is kind)

    def by_kind(self) -> Dict[TransferKind, int]:
        """Words moved, keyed by kind."""
        return {kind: self.words_moved(kind) for kind in TransferKind}

    def reset(self) -> None:
        """Clear the timeline and statistics."""
        self.busy_until = 0
        self.transfers.clear()
