"""DMA controller: the single bridge to external memory.

"The DMA controller establishes the bridge that connects the external
memory the FB or the CM.  Thus simultaneous transfers of data and
contexts are not possible" (paper, section 2).  This single shared
channel is *the* structural constraint the Complete Data Scheduler
optimises around: every avoided data transfer frees DMA time that
context loads (or the next cluster's data) can use.

:class:`DmaChannel` is a timeline resource: callers request transfers
with an earliest-start time and receive ``(start, finish)`` cycle
stamps; the channel serialises everything and accumulates statistics by
:class:`TransferKind`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.arch.params import TimingModel
from repro.errors import SimulationError

__all__ = ["TransferKind", "DmaTransfer", "DmaChannel"]


class TransferKind(enum.Enum):
    """What a DMA operation moves."""

    DATA_LOAD = "data_load"        # external memory -> frame buffer
    DATA_STORE = "data_store"      # frame buffer -> external memory
    CONTEXT_LOAD = "context_load"  # external memory -> context memory


class DmaTransfer(NamedTuple):
    """A completed DMA operation (for traces and statistics).

    A lightweight NamedTuple rather than a dataclass: simulations mint
    one per transfer (tens of thousands per run), so construction cost
    is on the hot path.
    """

    kind: TransferKind
    label: str
    words: int
    start: int
    finish: int

    @property
    def cycles(self) -> int:
        return self.finish - self.start


class DmaChannel:
    """Serialising DMA timeline.

    The channel is non-preemptive: a transfer occupies the channel from
    its start to its finish, and requests are served in call order (the
    context scheduler decides that order before simulation).
    """

    def __init__(self, timing: TimingModel, *, record_trace: bool = True):
        self.timing = timing
        self.busy_until = 0
        #: When False, the per-transfer trace is not recorded (the
        #: statistics below are still exact).  Bulk analysis drivers
        #: that only consume aggregates opt out of the trace.
        self.record_trace = record_trace
        self.transfers: List[DmaTransfer] = []
        # Statistics are accumulated as transfers are requested so the
        # queries below stay O(1) instead of rescanning the trace.
        # Keyed by TransferKind.value: string hashes are cached, enum
        # hashes are recomputed on every dict operation.
        self._words: Dict[str, int] = {k.value: 0 for k in TransferKind}
        self._counts: Dict[str, int] = {k.value: 0 for k in TransferKind}
        self._cycles = 0

    def request(
        self,
        kind: TransferKind,
        words: int,
        earliest_start: int,
        label: str = "",
    ) -> Tuple[int, int]:
        """Schedule a transfer at or after *earliest_start*.

        Returns:
            ``(start, finish)`` cycle stamps.
        """
        if words < 0:
            raise SimulationError(f"negative transfer size {words} ({label})")
        if earliest_start < 0:
            raise SimulationError(
                f"negative earliest_start {earliest_start} ({label})"
            )
        if words == 0:
            start = max(self.busy_until, earliest_start)
            return (start, start)
        if kind is TransferKind.CONTEXT_LOAD:
            duration = self.timing.context_transfer_cycles(words)
        else:
            duration = self.timing.data_transfer_cycles(words)
        start = max(self.busy_until, earliest_start)
        finish = start + duration
        self.busy_until = finish
        if self.record_trace:
            # tuple.__new__ skips the generated keyword-checking
            # __new__; this is the hottest allocation in a simulation.
            self.transfers.append(
                tuple.__new__(DmaTransfer,
                              (kind, label, words, start, finish))
            )
        key = kind._value_  # .value goes through a descriptor; hot path
        self._words[key] += words
        self._counts[key] += 1
        self._cycles += duration
        return (start, finish)

    def request_block(
        self,
        kind: TransferKind,
        words: int,
        duration: int,
        count: int,
        earliest_start: int,
    ) -> Tuple[int, int]:
        """Account a contiguous run of *count* transfers in one step.

        Equivalent to *count* consecutive :meth:`request` calls with the
        same ``earliest_start`` and the given total ``words``/
        ``duration``: the channel serialises back-to-back requests into
        one contiguous block, so only the block's start and finish
        matter for the timeline.  Used by the simulator's fast path when
        the per-transfer trace is off; the statistics stay exact.

        The fast path enforces the same accounting guards as the traced
        path: negative sizes, durations, counts, or start times are
        rejected rather than silently corrupting the statistics.
        """
        if words < 0:
            raise SimulationError(f"negative transfer size {words}")
        if earliest_start < 0:
            raise SimulationError(
                f"negative earliest_start {earliest_start}"
            )
        if duration < 0:
            raise SimulationError(f"negative block duration {duration}")
        if count < 0:
            raise SimulationError(f"negative transfer count {count}")
        if count == 0 or words == 0:
            start = max(self.busy_until, earliest_start)
            return (start, start)
        start = max(self.busy_until, earliest_start)
        finish = start + duration
        self.busy_until = finish
        key = kind._value_
        self._words[key] += words
        self._counts[key] += count
        self._cycles += duration
        return (start, finish)

    def account(
        self,
        kind: TransferKind,
        *,
        words: int,
        count: int,
        cycles: int,
        busy_until: Optional[int] = None,
    ) -> None:
        """Fold a pre-resolved batch of transfers into the statistics.

        The vectorized timeline evaluator resolves the whole DMA
        timeline outside the channel and lands the aggregate traffic —
        and the final ``busy_until`` — in one call per transfer kind.
        The numbers must be exactly what the equivalent
        :meth:`request` / :meth:`request_block` sequence would have
        accumulated; the usual accounting guards apply.
        """
        if words < 0:
            raise SimulationError(f"negative transfer size {words}")
        if count < 0:
            raise SimulationError(f"negative transfer count {count}")
        if cycles < 0:
            raise SimulationError(f"negative busy cycles {cycles}")
        key = kind._value_
        self._words[key] += words
        self._counts[key] += count
        self._cycles += cycles
        if busy_until is not None:
            if busy_until < self.busy_until:
                raise SimulationError(
                    f"busy_until moving backwards: {busy_until} < "
                    f"{self.busy_until}"
                )
            self.busy_until = busy_until

    # -- statistics ---------------------------------------------------------

    def words_moved(self, kind: TransferKind) -> int:
        """Total words moved for one transfer kind."""
        return self._words[kind.value]

    def cycles_busy(self) -> int:
        """Total cycles the channel spent transferring."""
        return self._cycles

    def count(self, kind: TransferKind) -> int:
        """Number of transfers of one kind."""
        return self._counts[kind.value]

    def by_kind(self) -> Dict[TransferKind, int]:
        """Words moved, keyed by kind."""
        return {kind: self._words[kind.value] for kind in TransferKind}

    def reset(self) -> None:
        """Clear the timeline and statistics."""
        self.busy_until = 0
        self.transfers.clear()
        self._words = {k.value: 0 for k in TransferKind}
        self._counts = {k.value: 0 for k in TransferKind}
        self._cycles = 0
