"""Frame buffer: the dual-set on-chip data cache of MorphoSys.

"The frame buffer (FB) serves as a data cache for the RC Array.  This
buffer has two sets to enable overlapping of computation with data
transfers.  Data from one set is used for current computation, while
the other set stores results in the external memory and loads data for
the next round of computation" (paper, section 2).

:class:`FrameBufferSet` is a word-addressed storage with named,
possibly multi-extent regions (the allocator may split an object across
free blocks).  It tracks occupancy and enforces that regions never
overlap — the runtime check backing the allocator's correctness proofs
in the test suite.  :class:`FrameBuffer` bundles two sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AllocationError, CapacityError
from repro.units import format_size

__all__ = ["Extent", "FrameBufferSet", "FrameBuffer"]


@dataclass(frozen=True)
class Extent:
    """A contiguous address range ``[start, start + size)`` in one set."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.size <= 0:
            raise AllocationError(
                f"invalid extent start={self.start} size={self.size}"
            )

    @property
    def end(self) -> int:
        """One past the last word."""
        return self.start + self.size

    def overlaps(self, other: "Extent") -> bool:
        """True if the two ranges share at least one word."""
        return self.start < other.end and other.start < self.end

    def __str__(self) -> str:
        return f"[{self.start}..{self.end})"


class FrameBufferSet:
    """One frame-buffer set: word storage plus a named-region directory.

    Regions are identified by ``(name, instance)`` where *instance*
    distinguishes iteration copies of the same logical object under
    loop fission.
    """

    def __init__(self, capacity_words: int, *, set_index: int = 0,
                 functional: bool = False):
        if capacity_words <= 0:
            raise CapacityError(
                f"frame-buffer set capacity must be positive, "
                f"got {capacity_words}"
            )
        self.capacity_words = capacity_words
        self.set_index = set_index
        self._regions: Dict[Tuple[str, int], Tuple[Extent, ...]] = {}
        self._words: Optional[np.ndarray] = (
            np.zeros(capacity_words, dtype=np.int64) if functional else None
        )

    # -- region directory -----------------------------------------------

    def bind(self, name: str, instance: int, extents: Sequence[Extent]) -> None:
        """Register a region occupying *extents*.

        Raises:
            AllocationError: on overlap with a live region, duplicate
                binding, or out-of-range extents.
        """
        key = (name, instance)
        if key in self._regions:
            raise AllocationError(
                f"set{self.set_index}: region {name}#{instance} already bound"
            )
        extents = tuple(extents)
        if not extents:
            raise AllocationError(
                f"set{self.set_index}: region {name}#{instance} has no extents"
            )
        for extent in extents:
            if extent.end > self.capacity_words:
                raise AllocationError(
                    f"set{self.set_index}: extent {extent} of {name}#{instance} "
                    f"exceeds capacity {self.capacity_words}"
                )
        for other_key, other_extents in self._regions.items():
            for extent in extents:
                for other in other_extents:
                    if extent.overlaps(other):
                        raise AllocationError(
                            f"set{self.set_index}: {name}#{instance} extent "
                            f"{extent} overlaps {other_key[0]}#{other_key[1]} "
                            f"extent {other}"
                        )
        self._regions[key] = extents

    def release(self, name: str, instance: int) -> Tuple[Extent, ...]:
        """Unregister a region, returning its extents."""
        key = (name, instance)
        try:
            return self._regions.pop(key)
        except KeyError:
            raise AllocationError(
                f"set{self.set_index}: region {name}#{instance} is not bound"
            ) from None

    def is_bound(self, name: str, instance: int) -> bool:
        """True if the region is currently live."""
        return (name, instance) in self._regions

    def extents_of(self, name: str, instance: int) -> Tuple[Extent, ...]:
        """Extents of a live region."""
        try:
            return self._regions[(name, instance)]
        except KeyError:
            raise AllocationError(
                f"set{self.set_index}: region {name}#{instance} is not bound"
            ) from None

    def live_regions(self) -> Tuple[Tuple[str, int], ...]:
        """All live region keys, in binding order."""
        return tuple(self._regions.keys())

    @property
    def occupied_words(self) -> int:
        """Words currently allocated."""
        return sum(
            extent.size
            for extents in self._regions.values()
            for extent in extents
        )

    @property
    def free_words(self) -> int:
        """Words currently free."""
        return self.capacity_words - self.occupied_words

    def clear(self) -> None:
        """Drop all regions (used between schedules)."""
        self._regions.clear()
        if self._words is not None:
            self._words[:] = 0

    # -- functional storage ------------------------------------------------

    def _require_functional(self) -> np.ndarray:
        if self._words is None:
            raise AllocationError(
                f"set{self.set_index} was created without functional storage"
            )
        return self._words

    def write(self, name: str, instance: int, values: np.ndarray) -> None:
        """Write values into a live region (functional mode only)."""
        words = self._require_functional()
        flat = np.asarray(values, dtype=np.int64).ravel()
        extents = self.extents_of(name, instance)
        total = sum(extent.size for extent in extents)
        if flat.size != total:
            raise AllocationError(
                f"set{self.set_index}: {name}#{instance} holds {total} words, "
                f"got {flat.size} values"
            )
        cursor = 0
        for extent in extents:
            words[extent.start:extent.end] = flat[cursor:cursor + extent.size]
            cursor += extent.size

    def read(self, name: str, instance: int) -> np.ndarray:
        """Read a live region's values (functional mode only)."""
        words = self._require_functional()
        extents = self.extents_of(name, instance)
        parts = [words[extent.start:extent.end] for extent in extents]
        return np.concatenate(parts) if len(parts) > 1 else parts[0].copy()

    def __str__(self) -> str:
        return (
            f"FBset{self.set_index}({format_size(self.capacity_words)}, "
            f"{len(self._regions)} regions, "
            f"{self.occupied_words}/{self.capacity_words} words)"
        )


class FrameBuffer:
    """The full frame buffer: two sets of equal capacity."""

    def __init__(self, set_words: int, *, functional: bool = False):
        self.sets = (
            FrameBufferSet(set_words, set_index=0, functional=functional),
            FrameBufferSet(set_words, set_index=1, functional=functional),
        )

    def __getitem__(self, set_index: int) -> FrameBufferSet:
        return self.sets[set_index]

    @property
    def set_words(self) -> int:
        """Capacity of one set."""
        return self.sets[0].capacity_words

    def clear(self) -> None:
        """Drop all regions in both sets."""
        for fb_set in self.sets:
            fb_set.clear()

    def __str__(self) -> str:
        return f"FB({self.sets[0]}, {self.sets[1]})"
