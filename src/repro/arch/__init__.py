"""MorphoSys M1 architecture model.

The target system of the paper (Figure 1): an 8x8 array of
reconfigurable cells (RC array) configured by 32-bit context words held
in a context memory (CM), a dual-set frame buffer (FB) acting as the RC
array's data cache, a single DMA channel bridging external memory to
the FB *or* the CM (simultaneous data and context transfers are not
possible), and a TinyRISC control processor.

The structural constraints that shape the scheduling problem — two FB
sets enabling compute/transfer overlap, one shared DMA channel, finite
CM — are modelled explicitly; the RC array is modelled functionally
(SIMD macro-operations over NumPy arrays) so kernels can actually
execute and be checked against golden references.
"""

from repro.arch.context_memory import ContextMemory
from repro.arch.dma import DmaChannel, TransferKind
from repro.arch.external_memory import ExternalMemory
from repro.arch.frame_buffer import FrameBuffer, FrameBufferSet
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture, TimingModel
from repro.arch.rc_array import RCArray

__all__ = [
    "Architecture",
    "ContextMemory",
    "DmaChannel",
    "ExternalMemory",
    "FrameBuffer",
    "FrameBufferSet",
    "MorphoSysM1",
    "RCArray",
    "TimingModel",
    "TransferKind",
]
