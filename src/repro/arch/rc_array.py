"""Functional model of the 8x8 reconfigurable-cell array.

The real RC array executes one context (a SIMD instruction broadcast to
all 64 cells) per cycle.  This model raises the abstraction one notch:
kernels are *context programs* — sequences of :class:`MacroOp` SIMD
operations over named integer arrays — and the array executes a macro
operation over an operand of ``E`` elements in ``ceil(E / cells)``
cycles (each cell handles one element per cycle), plus one cycle of
issue overhead per macro op.

This keeps the computation real (the MPEG/ATR kernels in
:mod:`repro.kernels` produce actual DCT coefficients, SAD values, ...)
while the cycle estimate scales the way the paper's kernel execution
times do: linearly with data volume, inversely with array size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.units import ceil_div

__all__ = ["MacroOp", "ContextProgram", "RCArray"]

#: Operations a cell's ALU supports (element-wise unless noted).
_UNARY_OPS = {"neg", "abs", "copy"}
_BINARY_OPS = {"add", "sub", "mul", "min", "max"}
_IMM_OPS = {"addi", "muli", "shr", "shl", "clip", "const", "shift_elems"}
#: Array-level operations using the row/column interconnect.
_ARRAY_OPS = {"matmul", "matmul_t", "reduce_sum", "reduce_tail", "transpose"}

_ALL_OPS = _UNARY_OPS | _BINARY_OPS | _IMM_OPS | _ARRAY_OPS


@dataclass(frozen=True)
class MacroOp:
    """One SIMD macro operation.

    Attributes:
        op: operation mnemonic (see module source for the supported set).
        dst: destination register name.
        srcs: source register names (arity depends on ``op``).
        imm: immediate operand for ``addi``/``muli``/``shr``/``shl``/
            ``clip``/``const``.
    """

    op: str
    dst: str
    srcs: Tuple[str, ...] = ()
    imm: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in _ALL_OPS:
            raise SimulationError(f"unknown macro op {self.op!r}")
        arity = {
            **{name: 1 for name in _UNARY_OPS},
            **{name: 2 for name in _BINARY_OPS},
            "addi": 1, "muli": 1, "shr": 1, "shl": 1, "clip": 1, "const": 0,
            "shift_elems": 1,
            "matmul": 2, "matmul_t": 2, "reduce_sum": 1, "transpose": 1,
            "reduce_tail": 1,
        }[self.op]
        if len(self.srcs) != arity:
            raise SimulationError(
                f"macro op {self.op!r} takes {arity} sources, "
                f"got {len(self.srcs)}"
            )
        if (self.op in _IMM_OPS or self.op == "reduce_tail") \
                and self.imm is None:
            raise SimulationError(f"macro op {self.op!r} needs an immediate")


@dataclass(frozen=True)
class ContextProgram:
    """A kernel's computation as a macro-op sequence.

    Attributes:
        name: program identifier.
        inputs: register names bound from kernel input objects, in order.
        outputs: register names exported as kernel outputs, in order.
        ops: the macro-op sequence.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    ops: Tuple[MacroOp, ...]

    def __post_init__(self) -> None:
        defined = set(self.inputs)
        for op in self.ops:
            for src in op.srcs:
                if src not in defined:
                    raise SimulationError(
                        f"program {self.name!r}: op {op.op!r} reads "
                        f"undefined register {src!r}"
                    )
            defined.add(op.dst)
        for out in self.outputs:
            if out not in defined:
                raise SimulationError(
                    f"program {self.name!r}: output register {out!r} "
                    f"is never written"
                )


class RCArray:
    """The functional RC array: executes context programs."""

    def __init__(self, rows: int = 8, cols: int = 8):
        if rows <= 0 or cols <= 0:
            raise SimulationError(f"invalid RC array {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.macro_ops_executed = 0
        self.cycles_executed = 0

    @property
    def cells(self) -> int:
        return self.rows * self.cols

    # -- execution --------------------------------------------------------

    def execute(
        self,
        program: ContextProgram,
        operands: Mapping[str, np.ndarray],
    ) -> Dict[str, np.ndarray]:
        """Run a context program; returns its output registers.

        Operand arrays are promoted to ``int64`` (the model's word).
        """
        registers: Dict[str, np.ndarray] = {}
        for name in program.inputs:
            if name not in operands:
                raise SimulationError(
                    f"program {program.name!r}: missing operand {name!r}"
                )
            registers[name] = np.asarray(operands[name], dtype=np.int64)
        for op in program.ops:
            registers[op.dst] = self._apply(program.name, op, registers)
            self.macro_ops_executed += 1
            self.cycles_executed += self._op_cycles(op, registers[op.dst])
        return {name: registers[name] for name in program.outputs}

    def estimate_cycles(
        self,
        program: ContextProgram,
        operands: Mapping[str, np.ndarray],
    ) -> int:
        """Cycle count :meth:`execute` would accrue on these operands."""
        before = self.cycles_executed
        self.execute(program, operands)
        cycles = self.cycles_executed - before
        self.cycles_executed = before
        self.macro_ops_executed -= len(program.ops)
        return cycles

    # -- helpers ------------------------------------------------------------

    def _op_cycles(self, op: MacroOp, result: np.ndarray) -> int:
        issue = 1
        if op.op in ("matmul", "matmul_t"):
            # The MAC tree accumulates one product per cell per cycle.
            return issue + ceil_div(int(result.size) * _mac_depth(result), self.cells)
        elements = max(int(result.size), 1)
        return issue + ceil_div(elements, self.cells)

    def _apply(
        self,
        program_name: str,
        op: MacroOp,
        registers: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        def src(index: int) -> np.ndarray:
            return registers[op.srcs[index]]

        try:
            if op.op == "copy":
                return src(0).copy()
            if op.op == "neg":
                return -src(0)
            if op.op == "abs":
                return np.abs(src(0))
            if op.op == "add":
                return src(0) + src(1)
            if op.op == "sub":
                return src(0) - src(1)
            if op.op == "mul":
                return src(0) * src(1)
            if op.op == "min":
                return np.minimum(src(0), src(1))
            if op.op == "max":
                return np.maximum(src(0), src(1))
            if op.op == "addi":
                return src(0) + int(op.imm)
            if op.op == "muli":
                return src(0) * int(op.imm)
            if op.op == "shr":
                return src(0) >> int(op.imm)
            if op.op == "shl":
                return src(0) << int(op.imm)
            if op.op == "clip":
                bound = int(op.imm)
                return np.clip(src(0), -bound, bound)
            if op.op == "const":
                return np.asarray(int(op.imm), dtype=np.int64)
            if op.op == "shift_elems":
                # Shift along the last axis with zero fill (the express
                # lanes of the RC interconnect); positive = towards
                # higher indices.
                source = src(0)
                amount = int(op.imm)
                shifted = np.zeros_like(source)
                if amount == 0:
                    shifted[...] = source
                elif amount > 0:
                    shifted[..., amount:] = source[..., :-amount]
                else:
                    shifted[..., :amount] = source[..., -amount:]
                return shifted
            if op.op == "matmul":
                return src(0) @ src(1)
            if op.op == "matmul_t":
                return src(0) @ src(1).T
            if op.op == "reduce_sum":
                return np.asarray(int(np.sum(src(0))), dtype=np.int64)
            if op.op == "reduce_tail":
                # Sum over the last `imm` axes (per-candidate reduction
                # through the MAC tree).
                source = src(0)
                axes = tuple(range(source.ndim - int(op.imm), source.ndim))
                return np.sum(source, axis=axes)
            if op.op == "transpose":
                return src(0).T.copy()
        except ValueError as exc:
            raise SimulationError(
                f"program {program_name!r}: op {op.op!r} operand shape "
                f"mismatch: {exc}"
            ) from exc
        raise SimulationError(f"unhandled macro op {op.op!r}")  # pragma: no cover

    def reset_counters(self) -> None:
        """Zero the execution statistics."""
        self.macro_ops_executed = 0
        self.cycles_executed = 0


def _mac_depth(result: np.ndarray) -> int:
    """Accumulation depth estimate for matmul cycle counting."""
    if result.ndim >= 1 and result.size:
        return max(int(result.shape[-1]), 1)
    return 1
