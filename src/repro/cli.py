"""Command-line interface: ``python -m repro <command>`` or ``repro``.

Commands:

* ``table1``   — regenerate the paper's Table 1 (measured vs paper);
* ``figure6``  — regenerate Figure 6 as an ASCII bar chart;
* ``run <exp>`` — run one experiment and print the full comparison,
  schedules and Gantt charts;
* ``ablation <exp>`` — run the keep/RF/DMA ablations on one experiment;
* ``alloc <exp>`` — print the frame-buffer allocation walkthrough
  (Figure 5 style) for the CDS schedule of an experiment;
* ``sweep <exp>`` — trace RF/traffic/makespan against the FB size;
* ``corpus`` — robustness study over seeded random workloads;
* ``bench``   — time each pipeline stage and the scalability configs,
  writing/checking ``BENCH_pipeline.json``;
* ``trace <exp>`` — export one experiment's simulated timeline (and the
  scheduler's decision trace) as Chrome ``trace_event`` JSON for
  Perfetto / ``chrome://tracing``, raw JSON, or text;
* ``tinyrisc <exp>`` — emit the TinyRISC control-program listing;
* ``lint <exp>`` — run the static-analysis lint passes over an
  experiment's full pipeline (exit 1 when errors are found);
* ``analyze <target>`` — timing-aware hazard analysis (def-use IR +
  happens-before graph) of generated programs: DMA/compute races,
  live-range interference, dead transfers, retention liveness,
  capacity over time (exit 1 on any error-severity finding);
* ``fuzz``    — differential fuzzing: adversarial workload regimes
  cross-checked by the oracle stack, failures shrunk to minimal
  reproducers (exit 1 on any violation);
* ``gap``     — greedy-vs-exact optimality gap table: every workload
  scheduled by both the greedy CDS and the exact branch-and-bound
  solver, reporting the traffic words each moves (exit 1 on any
  unsound row — a case where greedy "beats" exact or the schedulers
  disagree on feasibility);
* ``cache``   — inspect (``stats``) or wipe (``clear``) the persistent
  cross-run pipeline cache used by ``--cache-dir``;
* ``serve``   — run the scheduler service: an asyncio HTTP/JSON server
  exposing the pipeline (``POST /v1/schedule``, ``POST /v1/batch``,
  ``GET /v1/metrics``, ``GET /v1/healthz``) over a worker pool with
  single-flight dedup and a shared pipeline cache;
* ``loadgen`` — drive a zipf-skewed concurrent load campaign against a
  running service (or a self-hosted one) and report latency
  percentiles, throughput and cache effectiveness;
* ``list``     — list the available experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.ablation import render_ablation
from repro.analysis.compare import compare_experiment
from repro.analysis.figure6 import render_figure6
from repro.analysis.table1 import build_table1, render_table1
from repro.alloc.allocator import FrameBufferAllocator
from repro.fuzz.generator import regime_names
from repro.fuzz.oracles import ORACLE_NAMES
from repro.workloads.spec import ExperimentSpec, paper_experiments

__all__ = ["main"]


def _jobs_count(text: str) -> int:
    """argparse type for ``--jobs``: a non-negative worker count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid jobs count {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"jobs must be >= 0 (0 = one worker per CPU), got {value}"
        )
    return value


def _find_spec(experiment_id: str) -> ExperimentSpec:
    for spec in paper_experiments():
        if spec.id.lower() == experiment_id.lower():
            return spec
    known = ", ".join(spec.id for spec in paper_experiments())
    raise SystemExit(f"unknown experiment {experiment_id!r}; known: {known}")


def _cmd_list(_args) -> None:
    for spec in paper_experiments():
        note = f"  ({spec.notes})" if spec.notes else ""
        print(f"{spec.id:<10} FB={spec.fb:<3} paper RF={spec.paper_rf}{note}")


def _cmd_table1(args) -> None:
    rows = build_table1()
    if getattr(args, "json", False):
        import json
        payload = {}
        for row in rows:
            comparison = row.comparison
            payload[row.id] = {
                "rf": row.measured_rf,
                "dt_words": row.measured_dt_words,
                "ds_pct": row.measured_ds_pct,
                "cds_pct": row.measured_cds_pct,
                "basic_cycles": comparison.basic.total_cycles,
                "ds_cycles": comparison.ds.total_cycles,
                "cds_cycles": comparison.cds.total_cycles,
                "cds_data_words": comparison.cds.data_words,
            }
        print(json.dumps(payload, indent=1))
        return
    print(render_table1(rows))


def _cmd_figure6(_args) -> None:
    print(render_figure6())


def _cmd_run(args) -> None:
    from repro.obs.metrics import get_registry, set_metrics_active

    profile = getattr(args, "profile", False)
    if profile:
        get_registry().reset()
        set_metrics_active(True)
    spec = _find_spec(args.experiment)
    try:
        row = compare_experiment(spec)
    finally:
        if profile:
            set_metrics_active(False)
    print(f"experiment {spec.id} on {row.architecture}")
    for outcome in (row.basic, row.ds, row.cds):
        if not outcome.feasible:
            print(f"\n[{outcome.scheduler}] INFEASIBLE: "
                  f"{outcome.infeasible_reason}")
            continue
        print(f"\n[{outcome.scheduler}] cycles={outcome.total_cycles} "
              f"data_words={outcome.data_words} RF={outcome.rf}")
        print(outcome.schedule.describe())
        if args.gantt:
            print(outcome.report.gantt())
    print(f"\nDS  improvement: {row.ds_improvement_pct:.1f}%"
          if row.ds_improvement_pct is not None else "\nDS  improvement: n/a")
    print(f"CDS improvement: {row.cds_improvement_pct:.1f}%"
          if row.cds_improvement_pct is not None else "CDS improvement: n/a")
    if profile:
        print("\npipeline profile (metrics registry):")
        print(get_registry().render())


def _cmd_trace(args) -> int:
    import json

    from repro.arch.machine import MorphoSysM1
    from repro.arch.params import Architecture
    from repro.codegen.generator import generate_program
    from repro.obs import (
        chrome_trace,
        render_text_timeline,
        report_to_dict,
        validate_chrome_trace,
    )
    from repro.schedule.base import ScheduleOptions
    from repro.schedule.basic import BasicScheduler
    from repro.schedule.complete import CompleteDataScheduler
    from repro.schedule.data_scheduler import DataScheduler
    from repro.sim.engine import Simulator

    schedulers = {
        "basic": BasicScheduler,
        "ds": DataScheduler,
        "cds": CompleteDataScheduler,
    }
    spec = _find_spec(args.experiment)
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    options = ScheduleOptions(decision_trace=True)
    schedule = schedulers[args.scheduler](architecture, options).schedule(
        application, clustering
    )
    # Extend the scheduler's decision trace with the Figure-4
    # placement/rollback events of both FB sets.
    FrameBufferAllocator(schedule, decisions=schedule.decisions).allocate()
    program = generate_program(schedule)
    report = Simulator(MorphoSysM1(architecture), trace=True).run(program)

    if args.format == "chrome":
        payload = chrome_trace(report, decisions=schedule.decisions)
        validate_chrome_trace(payload)
        text = json.dumps(payload, indent=1)
    elif args.format == "json":
        payload = {
            "report": report_to_dict(report),
            "decisions": schedule.decisions.to_dicts(),
        }
        text = json.dumps(payload, indent=1)
    else:
        lines = [
            f"{spec.id} ({args.scheduler}): {report.total_cycles} cycles, "
            f"{len(schedule.decisions)} recorded decisions",
            render_text_timeline(report),
        ]
        if args.decisions:
            lines.append("")
            lines.append("decision trace:")
            lines.append(schedule.decisions.render())
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_ablation(args) -> None:
    from repro.analysis.parallel import run_all_ablations

    spec = _find_spec(args.experiment)
    print(render_ablation(run_all_ablations(
        spec, jobs=args.jobs, cache_dir=args.cache_dir,
    )))


def _cmd_tinyrisc(args) -> None:
    from repro.arch.params import Architecture
    from repro.codegen.generator import generate_program
    from repro.codegen.tinyrisc import lower_to_tinyrisc
    from repro.schedule.complete import CompleteDataScheduler

    spec = _find_spec(args.experiment)
    application, clustering = spec.build()
    schedule = CompleteDataScheduler(Architecture.m1(spec.fb)).schedule(
        application, clustering
    )
    control = lower_to_tinyrisc(generate_program(schedule))
    listing = control.render().splitlines()
    limit = args.lines if args.lines > 0 else len(listing)
    print("\n".join(listing[:limit]))
    if limit < len(listing):
        print(f"    ... {len(listing) - limit} more instructions")
    print(
        f"\n{len(control.instructions)} instructions; data loaded "
        f"{control.data_words_loaded}w, stored "
        f"{control.data_words_stored}w, contexts "
        f"{control.context_words_loaded}w"
    )


def _cmd_sweep(args) -> None:
    from repro.analysis.sweep import render_sweep, sweep_fb_sizes
    from repro.units import kwords

    spec = _find_spec(args.experiment)
    application, clustering = spec.build()
    sizes = [kwords(k) for k in (0.5, 1, 1.5, 2, 3, 4, 6, 8, 12, 16)]
    points = sweep_fb_sizes(
        application, clustering, sizes, jobs=args.jobs,
        cache_dir=args.cache_dir, engine=args.engine,
    )
    print(render_sweep(
        points, title=f"frame-buffer sweep of {spec.id} "
                      f"(paper point: FB={spec.fb})"
    ))


def _cmd_corpus(args) -> None:
    from repro.analysis.corpus import corpus_study

    stats = corpus_study(
        range(args.seeds), fb=args.fb, iterations=args.iterations,
        jobs=args.jobs, cache_dir=args.cache_dir, engine=args.engine,
    )
    print(stats.summary())


def _cmd_alloc(args) -> None:
    from repro.arch.params import Architecture
    from repro.schedule.complete import CompleteDataScheduler

    spec = _find_spec(args.experiment)
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    schedule = CompleteDataScheduler(architecture).schedule(
        application, clustering
    )
    allocator = FrameBufferAllocator(schedule)
    for fb_set in (0, 1):
        allocation = allocator.allocate_set(fb_set)
        print(f"\n=== FB set {fb_set} "
              f"(peak {allocation.peak_words}/{allocation.capacity_words} "
              f"words, {allocation.splits} splits) ===")
        for snapshot in allocation.snapshots:
            regions = ", ".join(
                f"{name}#{instance}@{extents[0]}"
                for name, instance, extents in snapshot.regions
            )
            print(f"  {snapshot.label:<40} [{regions}]")


def _cmd_bench(args) -> int:
    import json
    import os

    from repro.analysis.bench import (
        STAGES,
        baseline_payload,
        compare_bench,
        load_baseline,
        profile_stages,
        render_bench,
        run_bench,
    )

    if args.profile_stages:
        # Diagnostic mode: cProfile the requested stages and exit —
        # no timed bench run, no baseline bookkeeping.
        if args.profile_stages.strip().lower() == "all":
            names = list(STAGES)
        else:
            names = [
                name.strip() for name in args.profile_stages.split(",")
                if name.strip()
            ]
        try:
            print(profile_stages(names, top=args.profile_top))
        except ValueError as exc:
            raise SystemExit(str(exc))
        return 0

    # Load the comparison baseline up front: a bad --compare path
    # should fail before the (expensive) measurement, not after.
    baseline = None
    if args.compare:
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read baseline {args.compare}: {exc}")
    # The speedup-column reference: a recorded baseline file when given
    # (and present), else the embedded pre-overhaul literal.  With
    # --update-baseline a missing file is expected — this run records
    # it.
    reference = None
    reference_source = "pre-overhaul"
    if args.baseline and os.path.exists(args.baseline):
        try:
            reference = load_baseline(args.baseline)
            reference_source = args.baseline
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read baseline {args.baseline}: {exc}")
    elif args.baseline and not args.update_baseline:
        raise SystemExit(f"baseline file {args.baseline} does not exist "
                         f"(record one with --update-baseline)")
    payload = run_bench(
        quick=args.quick, baseline=reference,
        baseline_source=reference_source,
    )
    print(render_bench(payload))
    if args.update_baseline:
        target = args.baseline or "BENCH_baseline.json"
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(baseline_payload(payload), handle, indent=2)
            handle.write("\n")
        print(f"\nrecorded baseline {target}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    if args.service_output:
        with open(args.service_output, "w", encoding="utf-8") as handle:
            json.dump(payload.get("service", {}), handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.service_output}")
    if baseline is not None:
        problems = compare_bench(
            payload, baseline, max_regression_pct=args.max_regression
        )
        if problems:
            print(f"\nREGRESSIONS vs {args.compare}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"\nno regressions vs {args.compare} "
              f"(limit +{args.max_regression:.0f}%)")
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.lint import (
        lint_experiment,
        lint_targets,
        render_json,
        render_text,
    )
    from repro.lint.reporters import severity_overrides_from_args

    try:
        overrides = severity_overrides_from_args(args.severity)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.experiment.lower() == "all":
        names = [target.id for target in lint_targets()]
    else:
        names = [args.experiment]

    exit_code = 0
    json_reports = []
    for name in names:
        context, collector = lint_experiment(
            name,
            scheduler=args.scheduler,
            severity_overrides=overrides,
            suppress=args.disable,
            corrupt=args.corrupt,
        )
        if collector.has_errors:
            exit_code = 1
        if args.json:
            json_reports.append(
                render_json(
                    collector,
                    extra={"experiment": name, "scheduler": args.scheduler},
                )
            )
        else:
            print(render_text(
                collector,
                title=f"{name} ({args.scheduler})",
                verbose=args.verbose,
            ))
            print()
    if args.json:
        payload = json_reports[0] if len(json_reports) == 1 else json_reports
        print(json.dumps(payload, indent=2))
    return exit_code


def _cmd_analyze(args) -> int:
    import json

    from repro.dataflow.analyzer import parse_policy
    from repro.dataflow.runner import (
        SCHEDULER_NAMES,
        analyze_targets,
        render_analysis_json,
        render_analysis_text,
    )

    schedulers = (
        list(SCHEDULER_NAMES) if args.scheduler == "all"
        else [args.scheduler]
    )
    if args.policy == "sound":
        policy_names = ["contexts_first", "stores_first"]
    elif args.policy == "all":
        policy_names = ["contexts_first", "stores_first", "loads_first",
                        "adaptive"]
    else:
        policy_names = [args.policy]
    policies = [parse_policy(name) for name in policy_names]

    results = analyze_targets(
        args.target,
        schedulers=schedulers,
        policies=policies,
        corpus_dir=args.corpus_dir,
    )
    if args.json or args.output:
        payload = render_analysis_json(results)
        text = json.dumps(payload, indent=2)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.write("\n")
            print(f"wrote {args.output}")
        if args.json or not args.output:
            print(text)
    if not args.json:
        print(render_analysis_text(results, verbose=args.verbose))
    return 1 if any(result.has_errors for result in results) else 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz.runner import run_fuzz

    report = run_fuzz(
        range(args.seeds),
        regimes=args.regime or None,
        quick=args.quick,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        failures_dir=args.failures_dir,
        include_paper=not args.no_paper,
        functional=not args.no_functional,
        cache_dir=args.cache_dir,
        oracles=args.oracle or None,
    )
    print(report.summary())
    if not report.ok and args.failures_dir:
        print(f"reproducers written to {args.failures_dir}/ — copy into "
              f"tests/corpus/ to pin them as regression tests")
    return 0 if report.ok else 1


def _cmd_gap(args) -> int:
    from repro.analysis.gap import (
        build_gap_table, gap_table_json, render_gap_table,
    )
    from repro.schedule.exact import DEFAULT_MAX_NODES

    specs = None
    if args.experiment:
        specs = [_find_spec(name) for name in args.experiment]
    rows = build_gap_table(
        specs,
        seeds=args.seeds,
        fb=args.fb,
        iterations=args.iterations,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        max_nodes=(DEFAULT_MAX_NODES if args.max_nodes is None
                   else args.max_nodes),
        budget_ms=args.budget_ms,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(gap_table_json(rows))
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.json:
        print(gap_table_json(rows))
    else:
        print(render_gap_table(rows))
    return 1 if any(not row.sound for row in rows) else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service.server import run_server

    def announce(service) -> None:
        print(
            f"repro service listening on "
            f"http://{service.host}:{service.port} "
            f"({service.cache_dir or 'no'} cache, "
            f"{args.mode} workers)",
            flush=True,
        )

    try:
        asyncio.run(run_server(
            host=args.host, port=args.port, cache_dir=args.cache_dir,
            jobs=args.jobs, mode=args.mode, ready=announce,
        ))
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.service.loadgen import (
        check_loadgen,
        render_loadgen,
        run_loadgen,
    )

    payload = run_loadgen(
        clients=args.clients,
        requests_per_client=args.requests,
        distinct=args.distinct,
        skew=args.skew,
        seed=args.seed,
        host=args.host,
        port=args.port,
        scheduler=args.scheduler,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        mode=args.mode,
    )
    print(render_loadgen(payload))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        findings = check_loadgen(payload, min_hit_rate=args.min_hit_rate)
        if findings:
            print("\nLOADGEN CHECK FAILED:")
            for finding in findings:
                print(f"  {finding}")
            return 1
        print(f"\nloadgen check passed (hit_rate "
              f"{payload['hit_rate']:.3f} > {args.min_hit_rate:.2f}, "
              f"0 errors)")
    return 0


def _cmd_cache(args) -> int:
    from repro.cache import CacheStore, default_cache_dir

    root = args.cache_dir if args.cache_dir else default_cache_dir()
    store = CacheStore(root)
    if args.action == "stats":
        stats = store.stats()
        print(f"cache root:        {stats['root']}")
        print(f"code fingerprint:  {stats['code_fingerprint']}")
        print(f"generations:       {stats['generations']}")
        print(f"entries (current): {stats['entries']}")
        print(f"entries (stale):   {stats['stale_entries']}")
        print(f"total size:        {stats['total_bytes']} bytes")
        return 0
    try:
        removed = store.clear()
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"cleared {removed} entries from {store.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Complete Data Scheduler reproduction (DATE 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments").set_defaults(func=_cmd_list)
    table1 = sub.add_parser("table1", help="regenerate Table 1")
    table1.add_argument("--json", action="store_true",
                        help="machine-readable output")
    table1.set_defaults(func=_cmd_table1)
    sub.add_parser("figure6", help="regenerate Figure 6").set_defaults(
        func=_cmd_figure6
    )
    run = sub.add_parser("run", help="run one experiment in detail")
    run.add_argument("experiment")
    run.add_argument("--gantt", action="store_true",
                     help="print per-scheduler Gantt charts")
    run.add_argument("--profile", action="store_true",
                     help="collect and print per-stage pipeline metrics")
    run.set_defaults(func=_cmd_run)
    trace = sub.add_parser(
        "trace",
        help="export a simulated timeline (Chrome trace_event / "
             "JSON / text)",
    )
    trace.add_argument("experiment")
    trace.add_argument("--scheduler", choices=("basic", "ds", "cds"),
                       default="cds", help="scheduler to trace")
    trace.add_argument("--format", choices=("chrome", "json", "text"),
                       default="chrome",
                       help="chrome: trace_event JSON for Perfetto / "
                            "chrome://tracing (default)")
    trace.add_argument("--output", metavar="PATH", default=None,
                       help="write to a file instead of stdout")
    trace.add_argument("--decisions", action="store_true",
                       help="include the full decision log in text "
                            "output")
    trace.set_defaults(func=_cmd_trace)
    ablation = sub.add_parser("ablation", help="design-choice ablations")
    ablation.add_argument("experiment")
    ablation.add_argument("--jobs", type=_jobs_count, default=None,
                          help="worker processes (0 = one per CPU; "
                               "default serial)")
    ablation.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="persistent pipeline cache directory")
    ablation.set_defaults(func=_cmd_ablation)
    alloc = sub.add_parser("alloc", help="FB allocation walkthrough")
    alloc.add_argument("experiment")
    alloc.set_defaults(func=_cmd_alloc)
    sweep = sub.add_parser("sweep", help="frame-buffer size sweep")
    sweep.add_argument("experiment")
    sweep.add_argument("--jobs", type=_jobs_count, default=None,
                       help="worker processes (0 = one per CPU; "
                            "default serial)")
    sweep.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="persistent pipeline cache directory")
    sweep.add_argument("--engine", choices=("batch", "reference"),
                       default="batch",
                       help="compile engine for cold points (default "
                            "batch; reference = per-case scheduler)")
    sweep.set_defaults(func=_cmd_sweep)
    corpus = sub.add_parser(
        "corpus", help="random-workload robustness study"
    )
    corpus.add_argument("--seeds", type=int, default=20,
                        help="number of seeded workloads (default 20)")
    corpus.add_argument("--fb", default="4K",
                        help="frame-buffer set size (default 4K)")
    corpus.add_argument("--iterations", type=int, default=6,
                        help="iterations per workload (default 6)")
    corpus.add_argument("--jobs", type=_jobs_count, default=None,
                        help="worker processes (0 = one per CPU; "
                             "default serial)")
    corpus.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="persistent pipeline cache directory")
    corpus.add_argument("--engine", choices=("batch", "reference"),
                        default="batch",
                        help="compile engine for cold seeds (default "
                             "batch; reference = per-case scheduler)")
    corpus.set_defaults(func=_cmd_corpus)
    tinyrisc = sub.add_parser(
        "tinyrisc", help="emit the TinyRISC control program"
    )
    tinyrisc.add_argument("experiment")
    tinyrisc.add_argument("--lines", type=int, default=40,
                          help="listing lines to print (0 = all)")
    tinyrisc.set_defaults(func=_cmd_tinyrisc)
    bench = sub.add_parser(
        "bench", help="time the compile pipeline stage by stage"
    )
    bench.add_argument("--quick", action="store_true",
                       help="fewer repeats (CI mode)")
    bench.add_argument("--output", metavar="PATH", default=None,
                       help="write the JSON payload (BENCH_pipeline.json)")
    bench.add_argument("--compare", metavar="PATH", default=None,
                       help="baseline JSON to compare against "
                            "(exit 1 on regression)")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="recorded baseline file for the speedup "
                            "column (default: the embedded pre-overhaul "
                            "literal)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="record this run as the --baseline file "
                            "(default BENCH_baseline.json)")
    bench.add_argument("--max-regression", type=float, default=25.0,
                       metavar="PCT",
                       help="allowed regression vs --compare baseline "
                            "(default 25%%)")
    bench.add_argument("--profile-stages", metavar="STAGES", default=None,
                       help="cProfile the named stages (comma-separated, "
                            "or 'all') over the bundled experiments and "
                            "exit instead of running the timed bench")
    bench.add_argument("--profile-top", type=int, default=25,
                       metavar="N",
                       help="rows per stage in the --profile-stages "
                            "report (default 25)")
    bench.add_argument("--service-output", metavar="PATH", default=None,
                       help="write the service loadgen payload "
                            "(BENCH_service.json)")
    bench.set_defaults(func=_cmd_bench)
    lint = sub.add_parser(
        "lint",
        help="static-analysis lint of an experiment's full pipeline",
    )
    lint.add_argument(
        "experiment",
        help="experiment id (see `repro list`), WAVELET, or `all`",
    )
    lint.add_argument("--scheduler", choices=("basic", "ds", "cds"),
                      default="cds", help="scheduler under lint")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report")
    lint.add_argument("--verbose", action="store_true",
                      help="also list every rule checked")
    lint.add_argument("--disable", metavar="CODE", action="append",
                      default=[], help="suppress a rule code (repeatable)")
    lint.add_argument("--severity", metavar="CODE=LEVEL", action="append",
                      default=[],
                      help="override a rule's severity (repeatable)")
    lint.add_argument("--corrupt", action="store_true",
                      help="deliberately corrupt the schedule first "
                           "(framework self-test)")
    lint.set_defaults(func=_cmd_lint)
    analyze = sub.add_parser(
        "analyze",
        help="timing-aware hazard analysis of generated programs",
    )
    analyze.add_argument(
        "target",
        help="experiment id, WAVELET, `all` (every bundled workload), "
             "or `corpus` (pinned reproducers)",
    )
    analyze.add_argument("--scheduler",
                         choices=("basic", "ds", "cds", "all"),
                         default="cds", help="scheduler(s) to analyze")
    analyze.add_argument("--policy",
                         choices=("contexts_first", "stores_first",
                                  "loads_first", "adaptive", "sound",
                                  "all"),
                         default="contexts_first",
                         help="DMA serialization policy for the "
                              "happens-before graph (`sound` = both "
                              "always-sound policies, `all` = every "
                              "policy incl. the loads_first ablation)")
    analyze.add_argument("--json", action="store_true",
                         help="machine-readable report on stdout")
    analyze.add_argument("--output", metavar="PATH", default=None,
                         help="write the JSON report to a file")
    analyze.add_argument("--verbose", action="store_true",
                         help="also print clean targets and rules "
                              "checked")
    analyze.add_argument("--corpus-dir", metavar="DIR",
                         default="tests/corpus",
                         help="reproducer directory for the `corpus` "
                              "target (default tests/corpus)")
    analyze.set_defaults(func=_cmd_analyze)
    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing with oracle cross-checks",
    )
    fuzz.add_argument("--seeds", type=int, default=100,
                      help="number of generator seeds to sweep (default 100)")
    fuzz.add_argument("--quick", action="store_true",
                      help="round-robin seeds across regimes instead of the "
                           "full regimes x seeds cross product")
    fuzz.add_argument("--regime", action="append", metavar="NAME",
                      choices=regime_names(),
                      help="restrict to one regime (repeatable; default all: "
                           f"{', '.join(regime_names())})")
    fuzz.add_argument("--jobs", type=_jobs_count, default=None,
                      help="parallel workers (0 = one per CPU; default "
                           "serial)")
    fuzz.add_argument("--failures-dir", metavar="DIR", default=None,
                      help="write shrunk reproducer JSON files here")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip shrinking failures to minimal reproducers")
    fuzz.add_argument("--no-paper", action="store_true",
                      help="skip the Table-1 experiment anchor cases")
    fuzz.add_argument("--no-functional", action="store_true",
                      help="skip the functional-simulation oracle (faster)")
    fuzz.add_argument("--cache-dir", metavar="DIR", default=None,
                      help="persistent pipeline cache directory (warm "
                           "reruns replay oracle verdicts from disk)")
    fuzz.add_argument("--oracle", action="append", metavar="NAME",
                      choices=ORACLE_NAMES,
                      help="restrict to one oracle (repeatable; default "
                           "the full stack) — e.g. --oracle batchcompile "
                           "for a wide batch-vs-reference compile sweep")
    fuzz.set_defaults(func=_cmd_fuzz)
    gap = sub.add_parser(
        "gap",
        help="greedy-vs-exact optimality gap table",
    )
    gap.add_argument("experiment", nargs="*", metavar="EXP",
                     help="restrict to these Table-1 experiments "
                          "(default: all twelve rows)")
    gap.add_argument("--seeds", type=int, default=0,
                     help="also sweep N seeded random workloads "
                          "(default 0)")
    gap.add_argument("--fb", default="4K", metavar="SIZE",
                     help="frame-buffer set size for the seeded sweep "
                          "(default 4K)")
    gap.add_argument("--iterations", type=int, default=6,
                     help="loop iterations for the seeded sweep "
                          "(default 6)")
    gap.add_argument("--corpus-dir", default="tests/corpus", metavar="DIR",
                     help="pinned-reproducer corpus to include "
                          "(default tests/corpus)")
    gap.add_argument("--no-corpus", action="store_true",
                     help="skip the pinned corpus workloads")
    gap.add_argument("--max-nodes", type=int, default=None,
                     help="branch-and-bound node budget (deterministic; "
                          "default 200000)")
    gap.add_argument("--budget-ms", type=float, default=None,
                     help="wall-clock budget per workload in ms "
                          "(anytime: still never worse than greedy)")
    gap.add_argument("--json", action="store_true",
                     help="print the JSON artifact instead of the table")
    gap.add_argument("--output", metavar="FILE", default=None,
                     help="also write the JSON artifact to FILE")
    gap.set_defaults(func=_cmd_gap)
    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent pipeline cache"
    )
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR "
                            "or .repro-cache)")
    cache.set_defaults(func=_cmd_cache)
    serve = sub.add_parser(
        "serve", help="run the scheduler service (HTTP/JSON)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8753,
                       help="bind port (default 8753; 0 = ephemeral)")
    serve.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="shared cross-request pipeline cache "
                            "directory (default: no persistent cache)")
    serve.add_argument("--jobs", type=_jobs_count, default=None,
                       help="worker-pool size (0 = one per CPU)")
    serve.add_argument("--mode", choices=("process", "thread"),
                       default="process",
                       help="worker pool kind (default process)")
    serve.set_defaults(func=_cmd_serve)
    loadgen = sub.add_parser(
        "loadgen", help="zipf-skewed load campaign against the service"
    )
    loadgen.add_argument("--clients", type=int, default=1000,
                         help="concurrent keep-alive clients "
                              "(default 1000)")
    loadgen.add_argument("--requests", type=int, default=3,
                         help="requests per client (default 3)")
    loadgen.add_argument("--distinct", type=int, default=32,
                         help="distinct generated workloads (default 32)")
    loadgen.add_argument("--skew", type=float, default=1.1,
                         help="zipf skew exponent (default 1.1)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="campaign seed (default 0)")
    loadgen.add_argument("--host", default=None,
                         help="target host (default: self-host a "
                              "service for the run)")
    loadgen.add_argument("--port", type=int, default=None,
                         help="target port (required with --host)")
    loadgen.add_argument("--scheduler", choices=("basic", "ds", "cds"),
                         default="cds", help="scheduler to request")
    loadgen.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache directory for the self-hosted "
                              "service (ignored with --host)")
    loadgen.add_argument("--jobs", type=_jobs_count, default=None,
                         help="self-hosted worker-pool size")
    loadgen.add_argument("--mode", choices=("process", "thread"),
                         default="thread",
                         help="self-hosted worker pool kind "
                              "(default thread)")
    loadgen.add_argument("--output", metavar="PATH", default=None,
                         help="write the JSON payload "
                              "(BENCH_service.json)")
    loadgen.add_argument("--check", action="store_true",
                         help="exit 1 unless the smoke gate passes "
                              "(healthz ok, zero errors, cache "
                              "hit-rate above --min-hit-rate)")
    loadgen.add_argument("--min-hit-rate", type=float, default=0.5,
                         metavar="FRACTION",
                         help="required hit rate for --check "
                              "(default 0.5)")
    loadgen.set_defaults(func=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    result = args.func(args)
    return int(result) if result else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
