"""The data and results allocation algorithm (paper Figure 4).

The allocator lays out one steady-state round of one frame-buffer set:
the clusters assigned to the set, in execution order, each running its
kernels ``RF`` consecutive times (loop fission — kernel-outer,
iteration-inner, as paper Figure 5's snapshot sequence shows: kernel 1
twice, then kernel 2 twice, then kernel 3 twice).

Placement rules, following the paper:

* **shared data first, from upper addresses** — data shared with the
  most distant cluster placed first ("As these data are going to remain
  longer in the FB than others input data, they are placed first to
  minimize fragmentation");
* **kernel input data next, from upper addresses** — scanned from the
  last kernel down to the first, so longer-lived inputs sit deeper;
* during execution, per kernel and iteration: **kept shared results
  from upper addresses**; **final and intermediate results from lower
  addresses**;
* after each kernel execution, ``release(c, k, iter)`` returns dead
  space to the free list;
* iteration instances are placed **adjacent to the previous iteration's
  instance** ("data and results are allocated from the addresses where
  was placed previous iteration of them") for addressing regularity;
* when no single free block fits, the object is **split** across blocks
  as a last resort (the paper reports zero splits across all its
  experiments — our benchmarks assert the same).

Because the algorithm is deterministic, every round of the application
produces the identical layout — the periodicity the paper's placement
policy promotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.frame_buffer import Extent, FrameBufferSet
from repro.alloc.free_list import FreeBlockList
from repro.core.dataflow import DataflowInfo, ObjectClass
from repro.core.reuse import SharedData, SharedResult
from repro.errors import AllocationError, FragmentationError
from repro.schedule.plan import Schedule

__all__ = ["AllocationRecord", "Snapshot", "AllocationMap", "FrameBufferAllocator"]


@dataclass(frozen=True)
class AllocationRecord:
    """Lifetime and placement of one object instance.

    Attributes:
        name: object name.
        instance: iteration index within the round (``0 .. RF-1``).
        cluster_index: cluster whose activity allocated it.
        extents: the address ranges occupied (len > 1 means split).
        direction: ``"high"`` or ``"low"`` growth direction.
        alloc_step: logical step at which it was placed.
        free_step: logical step at which it was released.
        regular: placement was adjacent to the previous instance (always
            True for instance 0).
    """

    name: str
    instance: int
    cluster_index: int
    extents: Tuple[Extent, ...]
    direction: str
    alloc_step: int
    free_step: int
    regular: bool

    @property
    def size(self) -> int:
        return sum(extent.size for extent in self.extents)

    @property
    def split(self) -> bool:
        """True if the object was split across free blocks."""
        return len(self.extents) > 1

    def live_at(self, step: int) -> bool:
        """True if the instance occupies memory at logical *step*."""
        return self.alloc_step <= step < self.free_step


@dataclass(frozen=True)
class Snapshot:
    """FB-set contents at one labelled point (for Figure-5 rendering)."""

    label: str
    step: int
    regions: Tuple[Tuple[str, int, Tuple[Extent, ...]], ...]

    @property
    def occupied_words(self) -> int:
        return sum(
            extent.size for _, _, extents in self.regions for extent in extents
        )


@dataclass
class AllocationMap:
    """Complete placement of one FB set for one steady-state round."""

    fb_set: int
    capacity_words: int
    rf: int
    records: List[AllocationRecord] = field(default_factory=list)
    snapshots: List[Snapshot] = field(default_factory=list)

    @property
    def splits(self) -> int:
        """Number of split placements (the paper reports zero)."""
        return sum(1 for record in self.records if record.split)

    @property
    def irregular_placements(self) -> int:
        """Placements that broke iteration adjacency."""
        return sum(1 for record in self.records if not record.regular)

    @property
    def peak_words(self) -> int:
        """Maximum simultaneous occupancy over the round."""
        events: List[Tuple[int, int]] = []
        for record in self.records:
            events.append((record.alloc_step, record.size))
            events.append((record.free_step, -record.size))
        events.sort(key=lambda pair: (pair[0], -pair[1]))
        best = 0
        current = 0
        for _, delta in events:
            current += delta
            best = max(best, current)
        return best

    @property
    def highest_address_used(self) -> int:
        """One past the highest word ever occupied."""
        return max(
            (extent.end for record in self.records for extent in record.extents),
            default=0,
        )

    def record_for(self, name: str, instance: int) -> AllocationRecord:
        """The record of one instance (there is exactly one per round)."""
        for record in self.records:
            if record.name == name and record.instance == instance:
                return record
        raise KeyError(f"no allocation record for {name}#{instance}")

    def verify(self) -> None:
        """Re-check that lifetime-overlapping records never share words.

        The allocator already enforces this online through
        :class:`~repro.arch.frame_buffer.FrameBufferSet`; this is an
        independent offline check used by the test suite.
        """
        for i, first in enumerate(self.records):
            for second in self.records[i + 1:]:
                overlap_in_time = (
                    first.alloc_step < second.free_step
                    and second.alloc_step < first.free_step
                )
                if not overlap_in_time:
                    continue
                for extent_a in first.extents:
                    for extent_b in second.extents:
                        if extent_a.overlaps(extent_b):
                            raise AllocationError(
                                f"{first.name}#{first.instance} and "
                                f"{second.name}#{second.instance} overlap in "
                                f"space ({extent_a} vs {extent_b}) and time"
                            )


class FrameBufferAllocator:
    """Runs the Figure-4 algorithm for one FB set of a schedule.

    Args:
        schedule: a schedule from any of the data schedulers.
        allow_split: permit multi-extent placement when no single free
            block fits (paper section 5); when False, such a situation
            raises :class:`FragmentationError`.
        fit_policy: ``"first"`` (the paper's choice — "as data and
            result sizes are similar, the chosen allocation method is
            first-fit") or ``"best"`` (smallest sufficient block;
            ablation baseline).
        debug_invariants: re-check the free list's structural
            invariants (sorted, coalesced, in-capacity, free-word
            counter consistent) after every allocate and free.  The
            check is a single O(n) pass, so it is cheap insurance; the
            test suite turns it on globally via
            :attr:`default_debug_invariants`.  ``None`` (the default)
            defers to that class attribute.
        decisions: optional :class:`~repro.obs.events.DecisionTrace`
            that receives one ``alloc.place``/``alloc.free`` event per
            instance, plus ``alloc.fallback`` when iteration-adjacent
            placement failed and ``alloc.split`` when a placement had
            to span several free blocks.  Pass ``schedule.decisions``
            to extend the scheduler's own trace.  Recording never
            changes a placement.
        free_list_factory: optional callable ``capacity -> free list``
            substituted for :class:`~repro.alloc.free_list.FreeBlockList`.
            Any object with the same interface works; the differential
            fuzz harness injects a wrapper that mirrors every operation
            onto :class:`~repro.alloc.reference.ReferenceFreeBlockList`
            and asserts the two agree.
    """

    #: Process-wide default for ``debug_invariants`` when the caller
    #: passes ``None``.  The test suite's conftest flips this to True so
    #: every allocator constructed anywhere under test self-checks.
    default_debug_invariants: bool = False

    def __init__(self, schedule: Schedule, *, allow_split: bool = True,
                 fit_policy: str = "first",
                 debug_invariants: Optional[bool] = None,
                 decisions=None, free_list_factory=None):
        if fit_policy not in ("first", "best"):
            raise AllocationError(f"unknown fit_policy {fit_policy!r}")
        self.schedule = schedule
        self.allow_split = allow_split
        self.fit_policy = fit_policy
        self.decisions = decisions
        self.free_list_factory = free_list_factory
        if debug_invariants is None:
            debug_invariants = self.default_debug_invariants
        self.debug_invariants = debug_invariants

    # -- public API -----------------------------------------------------

    def allocate_set(self, fb_set: int) -> AllocationMap:
        """Produce the :class:`AllocationMap` of one FB set's round."""
        run = _SetAllocation(self.schedule, fb_set, self.allow_split,
                             best_fit=(self.fit_policy == "best"),
                             debug_invariants=self.debug_invariants,
                             decisions=self.decisions,
                             free_list_factory=self.free_list_factory)
        return run.execute()

    def allocate(self) -> Tuple[AllocationMap, AllocationMap]:
        """Both sets' maps, ``(set0, set1)``."""
        return (self.allocate_set(0), self.allocate_set(1))


class _SetAllocation:
    """One execution of the Figure-4 algorithm (internal)."""

    def __init__(self, schedule: Schedule, fb_set: int, allow_split: bool,
                 *, best_fit: bool = False, debug_invariants: bool = False,
                 decisions=None, free_list_factory=None):
        self.schedule = schedule
        self.dataflow: DataflowInfo = schedule.dataflow
        self.fb_set = fb_set
        self.allow_split = allow_split
        self.best_fit = best_fit
        self.debug_invariants = debug_invariants
        self.decisions = decisions
        self.rf = schedule.rf
        self.capacity = schedule.fb_set_words
        if free_list_factory is None:
            free_list_factory = FreeBlockList
        self.free_list = free_list_factory(self.capacity)
        self.regions = FrameBufferSet(self.capacity, set_index=fb_set)
        self.map = AllocationMap(
            fb_set=fb_set, capacity_words=self.capacity, rf=self.rf
        )
        self.step = 0
        self._open: Dict[Tuple[str, int], Dict] = {}
        self._last_single_extent: Dict[str, Tuple[int, Extent]] = {}
        keeps = [k for k in schedule.keeps if k.fb_set == fb_set]
        self.kept_data: Dict[str, SharedData] = {
            k.name: k for k in keeps if isinstance(k, SharedData)
        }
        self.kept_results: Dict[str, SharedResult] = {
            k.name: k for k in keeps if isinstance(k, SharedResult)
        }

    # -- driver -----------------------------------------------------------

    def execute(self) -> AllocationMap:
        clusters = self.schedule.clustering.on_set(self.fb_set)
        for cluster in clusters:
            self._place_cluster_inputs(cluster)
            self._snapshot(f"after load {cluster.name} input data")
            self._run_cluster(cluster)
            self._finish_cluster(cluster)
            self._snapshot(f"after {cluster.name} stores complete")
        self._close_round(clusters)
        for key in list(self._open):
            raise AllocationError(
                f"region {key[0]}#{key[1]} still live at end of round"
            )
        return self.map

    # -- phases ------------------------------------------------------------

    def _place_cluster_inputs(self, cluster) -> None:
        """Figure 4, input placement: shared data first (most distant
        consumer first), then kernel data from the last kernel down."""
        plan = self.schedule.plan_for(cluster.index)
        loads = list(plan.loads)

        # 1. Kept shared data whose first consumer is this cluster,
        #    ordered by last consuming cluster, descending.
        kept_now = [
            self.kept_data[name]
            for name in loads
            if name in self.kept_data
            and self.kept_data[name].clusters[0] == cluster.index
        ]
        kept_now.sort(key=lambda keep: (-keep.span[1], keep.name))
        self.step += 1
        for keep in kept_now:
            instances = 1 if keep.invariant else self.rf
            for instance in range(instances):
                self._allocate(
                    keep.name, instance, cluster.index, keep.size, "high"
                )

        # 2. Non-kept inputs, scanned from the last kernel to the first;
        #    an input belongs to its last consuming kernel (paper d_j).
        kept_names = {keep.name for keep in kept_now}
        remaining = [name for name in loads if name not in kept_names]
        placed: Set[str] = set()
        for kernel_name in reversed(cluster.kernel_names):
            for obj_name in remaining:
                if obj_name in placed:
                    continue
                last = self.dataflow.last_use_in_cluster(obj_name, cluster.index)
                if last == kernel_name:
                    placed.add(obj_name)
                    info = self.dataflow[obj_name]
                    instances = 1 if info.invariant else self.rf
                    for instance in range(instances):
                        self._allocate(
                            obj_name, instance, cluster.index, info.size, "high"
                        )
        missing = set(remaining) - placed
        if missing:  # pragma: no cover — inputs always have a local use
            raise AllocationError(
                f"inputs {sorted(missing)} of {cluster.name} have no local use"
            )

    def _run_cluster(self, cluster) -> None:
        """Execution: kernels in order, each run ``RF`` times; results
        placed as produced, dead space released after each execution."""
        for kernel_name in cluster.kernel_names:
            kernel = self.dataflow.application.kernel(kernel_name)
            for instance in range(self.rf):
                self.step += 1
                for out_name in kernel.outputs:
                    info = self.dataflow[out_name]
                    keep = self.kept_results.get(out_name)
                    if keep is not None and keep.producer_cluster == cluster.index:
                        direction = "high"
                    elif info.object_class is ObjectClass.INTERMEDIATE_RESULT:
                        direction = "low"
                    else:
                        direction = "low"  # final and stored shared results
                    self._allocate(
                        out_name, instance, cluster.index, info.size, direction
                    )
                self._release_dead(cluster, kernel, instance)
                self._snapshot(
                    f"after execution {instance + 1} of {kernel_name}"
                )

    def _release_dead(self, cluster, kernel, instance: int) -> None:
        """Paper's ``release(c, k, iter)``."""
        for in_name in kernel.inputs:
            info = self.dataflow[in_name]
            if in_name in self.kept_data or in_name in self.kept_results:
                continue  # kept items persist to their span end
            last = self.dataflow.last_use_in_cluster(in_name, cluster.index)
            if last != kernel.name:
                continue
            produced_here = info.producer_cluster == cluster.index
            if produced_here and (
                info.is_final or info.consumed_after(cluster.index)
            ):
                # Outbound result: freed when its store completes
                # (cluster end), not at its last local use.
                continue
            if info.invariant:
                # Single shared copy (instance 0): released only after
                # the last concurrent iteration used it.
                if instance == self.rf - 1 and self.regions.is_bound(
                    in_name, 0
                ):
                    self._free(in_name, 0)
                continue
            if not self.regions.is_bound(in_name, instance):
                # Served from the other set (cross-set retention):
                # nothing was placed here.
                continue
            # Dead input or intermediate instance: release immediately.
            self._free(in_name, instance)

    def _finish_cluster(self, cluster) -> None:
        """Release stored results (their DMA stores complete before the
        next same-set cluster loads) and keeps whose span ends here."""
        plan = self.schedule.plan_for(cluster.index)
        self.step += 1
        for out_name in plan.stores:
            if out_name in self.kept_results:
                continue  # kept-and-stored: released at span end
            for instance in range(self.rf):
                if self.regions.is_bound(out_name, instance):
                    self._free(out_name, instance)
        # Keeps whose span ended at (or, for cross-set consumers,
        # before) this cluster are released now.
        for keep in list(self.kept_data.values()):
            if keep.span[1] <= cluster.index and self.regions.is_bound(
                keep.name, 0
            ):
                instances = 1 if keep.invariant else self.rf
                for instance in range(instances):
                    self._free(keep.name, instance)
        for keep in list(self.kept_results.values()):
            if keep.span[1] <= cluster.index and self.regions.is_bound(
                keep.name, 0
            ):
                for instance in range(self.rf):
                    self._free(keep.name, instance)

    def _close_round(self, clusters) -> None:
        """Free anything that survives the round boundary.

        Final results of the last cluster were freed in its finish
        phase.  Keeps whose last consumer sits on the *other* set (the
        cross-set-retention extension) have no same-set finish phase
        after their span ends, so they are released here.  Anything
        else live at the end of :meth:`execute` is a bookkeeping bug.
        """
        self.step += 1
        for keep in list(self.kept_data.values()):
            if self.regions.is_bound(keep.name, 0):
                instances = 1 if keep.invariant else self.rf
                for instance in range(instances):
                    self._free(keep.name, instance)
        for keep in list(self.kept_results.values()):
            if self.regions.is_bound(keep.name, 0):
                for instance in range(self.rf):
                    self._free(keep.name, instance)

    # -- placement ---------------------------------------------------------

    def _allocate(
        self,
        name: str,
        instance: int,
        cluster_index: int,
        size: int,
        direction: str,
    ) -> None:
        extents: Optional[Tuple[Extent, ...]] = None
        regular = True
        expected_start = self._expected_adjacent_start(name, instance, size, direction)
        if expected_start is not None:
            try:
                extents = (self.free_list.allocate_at(expected_start, size),)
            except FragmentationError:
                # The adjacency attempt is rolled back; fall through to
                # the direction-ordered free-list scan.
                self._record_alloc(
                    "alloc.fallback", name, instance,
                    expected_start=expected_start, size=size,
                    direction=direction,
                )
                extents = None
        if extents is None:
            regular = instance == 0 or expected_start is None
            try:
                if direction == "high":
                    extents = (
                        self.free_list.allocate_high(
                            size, best_fit=self.best_fit
                        ),
                    )
                else:
                    extents = (
                        self.free_list.allocate_low(
                            size, best_fit=self.best_fit
                        ),
                    )
            except FragmentationError:
                if not self.allow_split:
                    raise
                extents = self.free_list.allocate_split(
                    size, from_high=(direction == "high")
                )
                self._record_alloc(
                    "alloc.split", name, instance, size=size,
                    direction=direction,
                    extents=[[e.start, e.end] for e in extents],
                )
        self.regions.bind(name, instance, extents)
        self._record_alloc(
            "alloc.place", name, instance,
            cluster_index=cluster_index, size=size, direction=direction,
            regular=regular, split=len(extents) > 1,
            extents=[[e.start, e.end] for e in extents],
        )
        self._open[(name, instance)] = {
            "extents": extents,
            "direction": direction,
            "cluster_index": cluster_index,
            "alloc_step": self.step,
            "regular": regular,
        }
        if len(extents) == 1:
            self._last_single_extent[name] = (instance, extents[0])
        if self.debug_invariants:
            self.free_list.check_invariants()

    def _expected_adjacent_start(
        self, name: str, instance: int, size: int, direction: str
    ) -> Optional[int]:
        """Where iteration adjacency would put this instance."""
        if instance == 0:
            return None
        previous = self._last_single_extent.get(name)
        if previous is None or previous[0] != instance - 1:
            return None
        prev_extent = previous[1]
        if direction == "high":
            start = prev_extent.start - size
        else:
            start = prev_extent.start + prev_extent.size
        if start < 0 or start + size > self.capacity:
            return None
        return start

    def _record_alloc(self, kind: str, name: str, instance: int,
                      **detail) -> None:
        if self.decisions is not None:
            self.decisions.record(
                kind, name, instance=instance, fb_set=self.fb_set,
                step=self.step, **detail,
            )

    def _free(self, name: str, instance: int) -> None:
        key = (name, instance)
        meta = self._open.pop(key, None)
        if meta is None:
            raise AllocationError(f"free of unallocated region {name}#{instance}")
        extents = self.regions.release(name, instance)
        self.free_list.free_extents(extents)
        self._record_alloc(
            "alloc.free", name, instance,
            extents=[[e.start, e.end] for e in extents],
        )
        if self.debug_invariants:
            self.free_list.check_invariants()
        self.map.records.append(
            AllocationRecord(
                name=name,
                instance=instance,
                cluster_index=meta["cluster_index"],
                extents=meta["extents"],
                direction=meta["direction"],
                alloc_step=meta["alloc_step"],
                free_step=self.step,
                regular=meta["regular"],
            )
        )

    def _snapshot(self, label: str) -> None:
        regions = tuple(
            (name, instance, self.regions.extents_of(name, instance))
            for (name, instance) in self.regions.live_regions()
        )
        self.map.snapshots.append(
            Snapshot(label=label, step=self.step, regions=regions)
        )
