"""The paper's ``FB_list``: sorted free blocks with first-fit placement.

Supports the two growth directions Figure 4 uses — first-fit from
*upper* free addresses (long-lived data) and from *lower* free
addresses (results) — plus exact-placement for regularity, splitting
across several blocks when no single block fits, and coalescing on
free.

The block list is kept sorted by address and coalesced at all times,
which lets every address-directed operation locate its block with
:func:`bisect.bisect_right` instead of a scan:

* ``is_free`` / ``allocate_at`` find the covering block in O(log n);
* ``free`` finds the insertion point in O(log n), checks overlap
  against only the two neighbouring blocks, and coalesces locally —
  the historical append + sort + full-list merge is gone;
* ``allocate_split`` consumes whole blocks from one end in a single
  slice deletion instead of one list rewrite per block;
* ``free_words`` is maintained incrementally (O(1) query).

First-fit (``allocate_high``/``allocate_low``) still walks blocks from
the chosen end until one fits — that order *is* the first-fit
contract — but in the common non-fragmented case the end block fits
immediately.  The behaviour of every operation is byte-identical to
the retained linear oracle
(:class:`repro.alloc.reference.ReferenceFreeBlockList`), enforced by
property-based equivalence tests.

Invariants (checked by :meth:`FreeBlockList.check_invariants`, which is
O(n), and the property-based tests): blocks are sorted by address,
non-overlapping, non-empty, non-adjacent (always coalesced), within
capacity, and their sizes sum to the cached ``free_words``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.arch.frame_buffer import Extent
from repro.errors import AllocationError, FragmentationError

__all__ = ["FreeBlockList"]


class FreeBlockList:
    """Free-space bookkeeping for one frame-buffer set."""

    def __init__(self, capacity_words: int):
        if capacity_words <= 0:
            raise AllocationError(
                f"capacity must be positive, got {capacity_words}"
            )
        self.capacity_words = capacity_words
        # (start, size) blocks, sorted by start, coalesced.
        self._blocks: List[Tuple[int, int]] = [(0, capacity_words)]
        self._free_words = capacity_words

    # -- queries ---------------------------------------------------------

    @property
    def free_words(self) -> int:
        """Total free words."""
        return self._free_words

    @property
    def largest_block(self) -> int:
        """Size of the largest free block (0 when full)."""
        return max((size for _, size in self._blocks), default=0)

    def blocks(self) -> Tuple[Extent, ...]:
        """Snapshot of the free blocks, ascending by address."""
        return tuple(Extent(start, size) for start, size in self._blocks)

    def _covering_index(self, start: int) -> int:
        """Index of the last block with ``block_start <= start``, or -1.

        ``(start, capacity + 1)`` sorts after every real ``(start, size)``
        pair, so ``bisect_right`` lands just past any block starting at
        exactly *start*.
        """
        return bisect_right(
            self._blocks, (start, self.capacity_words + 1)
        ) - 1

    def is_free(self, start: int, size: int) -> bool:
        """True if ``[start, start+size)`` lies inside one free block."""
        if start < 0 or size <= 0 or start + size > self.capacity_words:
            return False
        index = self._covering_index(start)
        if index < 0:
            return False
        block_start, block_size = self._blocks[index]
        return start + size <= block_start + block_size

    # -- allocation -----------------------------------------------------

    def allocate_high(self, size: int, *, best_fit: bool = False) -> Extent:
        """Fit from upper free addresses.

        First fit (default) examines blocks from the highest address
        downwards and carves *size* words off the **top** of the first
        block that fits.  Best fit instead picks the *smallest* block
        that fits (highest such block on ties) — the ablation baseline
        for the paper's "the chosen allocation method is first-fit".
        """
        self._check_size(size)
        index = self._pick_block(size, from_high=True, best_fit=best_fit)
        if index is None:
            raise FragmentationError(
                f"no single free block of {size} words "
                f"(largest {self.largest_block}, free {self.free_words})"
            )
        block_start, block_size = self._blocks[index]
        start = block_start + block_size - size
        self._carve(index, start, size)
        return Extent(start, size)

    def allocate_low(self, size: int, *, best_fit: bool = False) -> Extent:
        """Fit from lower free addresses.

        First fit (default) examines blocks from the lowest address
        upwards and carves *size* words off the **bottom** of the first
        block that fits; best fit picks the smallest sufficient block.
        """
        self._check_size(size)
        index = self._pick_block(size, from_high=False, best_fit=best_fit)
        if index is None:
            raise FragmentationError(
                f"no single free block of {size} words "
                f"(largest {self.largest_block}, free {self.free_words})"
            )
        block_start, _ = self._blocks[index]
        self._carve(index, block_start, size)
        return Extent(block_start, size)

    def _pick_block(self, size: int, *, from_high: bool,
                    best_fit: bool) -> Optional[int]:
        """Index of the block to allocate from, or ``None``."""
        indices = (
            range(len(self._blocks) - 1, -1, -1) if from_high
            else range(len(self._blocks))
        )
        if not best_fit:
            for index in indices:
                if self._blocks[index][1] >= size:
                    return index
            return None
        best_index = None
        best_size = None
        for index in indices:
            block_size = self._blocks[index][1]
            if block_size >= size and (
                best_size is None or block_size < best_size
            ):
                best_index = index
                best_size = block_size
        return best_index

    def allocate_at(self, start: int, size: int) -> Extent:
        """Allocate an exact range (regularity placement).

        Raises:
            FragmentationError: if the range is not entirely free.
        """
        self._check_size(size)
        if start < 0 or start + size > self.capacity_words:
            raise FragmentationError(
                f"range [{start}..{start + size}) is not free"
            )
        index = self._covering_index(start)
        if index >= 0:
            block_start, block_size = self._blocks[index]
            if start + size <= block_start + block_size:
                self._carve(index, start, size)
                return Extent(start, size)
        raise FragmentationError(
            f"range [{start}..{start + size}) is not free"
        )

    def allocate_split(self, size: int, *, from_high: bool) -> Tuple[Extent, ...]:
        """Allocate *size* words as possibly multiple extents.

        Used when no single block fits: "to improve memory usage the
        Complete Data Scheduler split it into two or more parts, and as
        a consequence the access to it is complex."  Blocks are consumed
        whole (except the last) from the chosen end of the address
        space; the whole-block run is removed with one slice deletion.

        Raises:
            FragmentationError: if total free space is insufficient.
        """
        self._check_size(size)
        if self._free_words < size:
            raise FragmentationError(
                f"cannot place {size} words: only {self._free_words} free"
            )
        blocks = self._blocks
        extents: List[Extent] = []
        remaining = size
        if from_high:
            whole = 0  # blocks consumed entirely, counted from the end
            while remaining > 0 and blocks[-1 - whole][1] <= remaining:
                block_start, block_size = blocks[-1 - whole]
                extents.append(Extent(block_start, block_size))
                remaining -= block_size
                whole += 1
            if whole:
                del blocks[len(blocks) - whole:]
            if remaining > 0:
                block_start, block_size = blocks[-1]
                start = block_start + block_size - remaining
                blocks[-1] = (block_start, block_size - remaining)
                extents.append(Extent(start, remaining))
        else:
            whole = 0
            while remaining > 0 and blocks[whole][1] <= remaining:
                block_start, block_size = blocks[whole]
                extents.append(Extent(block_start, block_size))
                remaining -= block_size
                whole += 1
            if whole:
                del blocks[:whole]
            if remaining > 0:
                block_start, block_size = blocks[0]
                blocks[0] = (block_start + remaining, block_size - remaining)
                extents.append(Extent(block_start, remaining))
        self._free_words -= size
        return tuple(extents)

    # -- freeing -----------------------------------------------------------

    def free(self, start: int, size: int) -> None:
        """Return ``[start, start+size)`` to the free list, coalescing.

        The insertion point is found by bisection; overlap (double free)
        can only involve the blocks immediately below and above it, and
        coalescing merges with at most those two neighbours.
        """
        self._check_size(size)
        end = start + size
        if start < 0 or end > self.capacity_words:
            raise AllocationError(
                f"free of [{start}..{end}) outside capacity "
                f"{self.capacity_words}"
            )
        blocks = self._blocks
        index = bisect_right(blocks, (start, self.capacity_words + 1))
        prev_index = index - 1
        if prev_index >= 0:
            prev_start, prev_size = blocks[prev_index]
            if prev_start + prev_size > start:
                raise AllocationError(
                    f"double free: [{start}..{end}) overlaps free block "
                    f"[{prev_start}..{prev_start + prev_size})"
                )
        if index < len(blocks):
            next_start, next_size = blocks[index]
            if next_start < end:
                raise AllocationError(
                    f"double free: [{start}..{end}) overlaps free block "
                    f"[{next_start}..{next_start + next_size})"
                )
        merge_prev = (
            prev_index >= 0
            and blocks[prev_index][0] + blocks[prev_index][1] == start
        )
        merge_next = index < len(blocks) and blocks[index][0] == end
        if merge_prev and merge_next:
            prev_start, prev_size = blocks[prev_index]
            blocks[prev_index] = (
                prev_start, prev_size + size + blocks[index][1]
            )
            del blocks[index]
        elif merge_prev:
            prev_start, prev_size = blocks[prev_index]
            blocks[prev_index] = (prev_start, prev_size + size)
        elif merge_next:
            blocks[index] = (start, size + blocks[index][1])
        else:
            blocks.insert(index, (start, size))
        self._free_words += size

    def free_extents(self, extents: Tuple[Extent, ...]) -> None:
        """Free a (possibly split) region."""
        for extent in extents:
            self.free(extent.start, extent.size)

    # -- internals -----------------------------------------------------------

    def _check_size(self, size: int) -> None:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")

    def _carve(self, index: int, start: int, size: int) -> None:
        """Remove ``[start, start+size)`` from block *index*."""
        block_start, block_size = self._blocks[index]
        block_end = block_start + block_size
        end = start + size
        assert block_start <= start and end <= block_end, (
            block_start, block_size, start, size,
        )
        if start > block_start:
            self._blocks[index] = (block_start, start - block_start)
            if end < block_end:
                self._blocks.insert(index + 1, (end, block_end - end))
        elif end < block_end:
            self._blocks[index] = (end, block_end - end)
        else:
            del self._blocks[index]
        self._free_words -= size

    def check_invariants(self) -> None:
        """Assert structural invariants in one O(n) pass.

        Used by the property-based tests and by allocators constructed
        with ``debug_invariants=True`` (cheap enough to leave on in the
        whole test suite now that it is linear).
        """
        previous_end = None
        total = 0
        for start, size in self._blocks:
            if size <= 0:
                raise AllocationError(f"empty free block at {start}")
            if start < 0 or start + size > self.capacity_words:
                raise AllocationError(
                    f"free block [{start}..{start + size}) outside capacity"
                )
            if previous_end is not None and start <= previous_end:
                raise AllocationError(
                    f"free blocks unsorted or uncoalesced near {start}"
                )
            previous_end = start + size
            total += size
        if total != self._free_words:
            raise AllocationError(
                f"free-word counter drifted: cached {self._free_words}, "
                f"blocks sum to {total}"
            )

    def __str__(self) -> str:
        blocks = ", ".join(f"[{s}..{s + z})" for s, z in self._blocks)
        return f"FB_list({blocks or 'full'})"
