"""Allocation quality metrics.

The paper's section 6 claims about the allocator: "It achieves that the
memory size used is the minimum allowed by the architecture.  For all
examples no data or result has to be split into several parts.
Moreover, it simplifies accesses to FB, as well as, promotes regularity
in data allocation."  :func:`compute_stats` quantifies each claim so
the benchmarks can assert them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.alloc.allocator import AllocationMap

__all__ = ["AllocationStats", "compute_stats"]


@dataclass(frozen=True)
class AllocationStats:
    """Aggregated quality numbers for one :class:`AllocationMap`.

    Attributes:
        fb_set: which set the map describes.
        capacity_words: set capacity.
        peak_words: maximum simultaneous occupancy.
        highest_address_used: one past the highest word touched.
        placements: total object instances placed.
        splits: placements needing more than one extent.
        irregular_placements: placements that broke iteration adjacency.
        utilisation: ``peak_words / capacity_words``.
        mean_live_words: average occupancy over logical steps (how well
            the set is used across the round, not just at the peak).
    """

    fb_set: int
    capacity_words: int
    peak_words: int
    highest_address_used: int
    placements: int
    splits: int
    irregular_placements: int
    utilisation: float
    mean_live_words: float

    @property
    def split_free(self) -> bool:
        """The paper's headline allocator claim."""
        return self.splits == 0

    @property
    def fully_regular(self) -> bool:
        """All iteration instances placed adjacently."""
        return self.irregular_placements == 0


def compute_stats(allocation: AllocationMap) -> AllocationStats:
    """Derive :class:`AllocationStats` from a map."""
    records = allocation.records
    placements = len(records)
    peak = allocation.peak_words
    # Mean live words over logical steps, weighted by step span.
    max_step = max((record.free_step for record in records), default=0)
    live_per_step: List[int] = [0] * (max_step + 1)
    for record in records:
        for step in range(record.alloc_step, record.free_step):
            live_per_step[step] += record.size
    mean_live = (
        sum(live_per_step) / len(live_per_step) if live_per_step else 0.0
    )
    return AllocationStats(
        fb_set=allocation.fb_set,
        capacity_words=allocation.capacity_words,
        peak_words=peak,
        highest_address_used=allocation.highest_address_used,
        placements=placements,
        splits=allocation.splits,
        irregular_placements=allocation.irregular_placements,
        utilisation=peak / allocation.capacity_words if allocation.capacity_words else 0.0,
        mean_live_words=mean_live,
    )
