"""Reference linear-scan free-block list (the equivalence oracle).

This is the original ``FB_list`` implementation, kept verbatim after
:mod:`repro.alloc.free_list` was rewritten around :mod:`bisect`.  It is
deliberately simple — every operation scans the whole block list and
``free`` re-sorts and re-coalesces from scratch — which makes it easy
to audit and therefore the oracle the property-based equivalence tests
drive against the production list (see
``tests/alloc/test_free_list_equivalence.py``).

Do not use this class outside tests; the production
:class:`~repro.alloc.free_list.FreeBlockList` is behaviourally
identical and asymptotically faster.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.arch.frame_buffer import Extent
from repro.errors import AllocationError, FragmentationError

__all__ = ["ReferenceFreeBlockList"]


class ReferenceFreeBlockList:
    """Linear-scan free-space bookkeeping for one frame-buffer set."""

    def __init__(self, capacity_words: int):
        if capacity_words <= 0:
            raise AllocationError(
                f"capacity must be positive, got {capacity_words}"
            )
        self.capacity_words = capacity_words
        # (start, size) blocks, sorted by start, coalesced.
        self._blocks: List[Tuple[int, int]] = [(0, capacity_words)]

    # -- queries ---------------------------------------------------------

    @property
    def free_words(self) -> int:
        """Total free words."""
        return sum(size for _, size in self._blocks)

    @property
    def largest_block(self) -> int:
        """Size of the largest free block (0 when full)."""
        return max((size for _, size in self._blocks), default=0)

    def blocks(self) -> Tuple[Extent, ...]:
        """Snapshot of the free blocks, ascending by address."""
        return tuple(Extent(start, size) for start, size in self._blocks)

    def is_free(self, start: int, size: int) -> bool:
        """True if ``[start, start+size)`` lies inside one free block."""
        if start < 0 or size <= 0 or start + size > self.capacity_words:
            return False
        for block_start, block_size in self._blocks:
            if block_start <= start and start + size <= block_start + block_size:
                return True
        return False

    # -- allocation -----------------------------------------------------

    def allocate_high(self, size: int, *, best_fit: bool = False) -> Extent:
        """Fit from upper free addresses."""
        self._check_size(size)
        index = self._pick_block(size, from_high=True, best_fit=best_fit)
        if index is None:
            raise FragmentationError(
                f"no single free block of {size} words "
                f"(largest {self.largest_block}, free {self.free_words})"
            )
        block_start, block_size = self._blocks[index]
        start = block_start + block_size - size
        self._carve(index, start, size)
        return Extent(start, size)

    def allocate_low(self, size: int, *, best_fit: bool = False) -> Extent:
        """Fit from lower free addresses."""
        self._check_size(size)
        index = self._pick_block(size, from_high=False, best_fit=best_fit)
        if index is None:
            raise FragmentationError(
                f"no single free block of {size} words "
                f"(largest {self.largest_block}, free {self.free_words})"
            )
        block_start, _ = self._blocks[index]
        self._carve(index, block_start, size)
        return Extent(block_start, size)

    def _pick_block(self, size: int, *, from_high: bool,
                    best_fit: bool) -> Optional[int]:
        """Index of the block to allocate from, or ``None``."""
        indices = (
            range(len(self._blocks) - 1, -1, -1) if from_high
            else range(len(self._blocks))
        )
        if not best_fit:
            for index in indices:
                if self._blocks[index][1] >= size:
                    return index
            return None
        best_index = None
        best_size = None
        for index in indices:
            block_size = self._blocks[index][1]
            if block_size >= size and (
                best_size is None or block_size < best_size
            ):
                best_index = index
                best_size = block_size
        return best_index

    def allocate_at(self, start: int, size: int) -> Extent:
        """Allocate an exact range (regularity placement)."""
        self._check_size(size)
        if not self.is_free(start, size):
            raise FragmentationError(
                f"range [{start}..{start + size}) is not free"
            )
        for index, (block_start, block_size) in enumerate(self._blocks):
            if block_start <= start and start + size <= block_start + block_size:
                self._carve(index, start, size)
                return Extent(start, size)
        raise FragmentationError(
            f"range [{start}..{start + size}) is not free"
        )  # pragma: no cover — is_free above already rejected

    def allocate_split(self, size: int, *, from_high: bool) -> Tuple[Extent, ...]:
        """Allocate *size* words as possibly multiple extents."""
        self._check_size(size)
        if self.free_words < size:
            raise FragmentationError(
                f"cannot place {size} words: only {self.free_words} free"
            )
        extents: List[Extent] = []
        remaining = size
        while remaining > 0:
            if not self._blocks:  # pragma: no cover — free_words guard above
                raise FragmentationError("free list exhausted mid-split")
            index = len(self._blocks) - 1 if from_high else 0
            block_start, block_size = self._blocks[index]
            take = min(block_size, remaining)
            if from_high:
                start = block_start + block_size - take
            else:
                start = block_start
            self._carve(index, start, take)
            extents.append(Extent(start, take))
            remaining -= take
        return tuple(extents)

    # -- freeing -----------------------------------------------------------

    def free(self, start: int, size: int) -> None:
        """Return ``[start, start+size)`` to the free list, coalescing."""
        self._check_size(size)
        if start < 0 or start + size > self.capacity_words:
            raise AllocationError(
                f"free of [{start}..{start + size}) outside capacity "
                f"{self.capacity_words}"
            )
        end = start + size
        for block_start, block_size in self._blocks:
            block_end = block_start + block_size
            if start < block_end and block_start < end:
                raise AllocationError(
                    f"double free: [{start}..{end}) overlaps free block "
                    f"[{block_start}..{block_end})"
                )
        self._blocks.append((start, size))
        self._blocks.sort()
        self._coalesce()

    def free_extents(self, extents: Tuple[Extent, ...]) -> None:
        """Free a (possibly split) region."""
        for extent in extents:
            self.free(extent.start, extent.size)

    # -- internals -----------------------------------------------------------

    def _check_size(self, size: int) -> None:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")

    def _carve(self, index: int, start: int, size: int) -> None:
        """Remove ``[start, start+size)`` from block *index*."""
        block_start, block_size = self._blocks[index]
        block_end = block_start + block_size
        end = start + size
        assert block_start <= start and end <= block_end, (
            block_start, block_size, start, size,
        )
        replacement: List[Tuple[int, int]] = []
        if start > block_start:
            replacement.append((block_start, start - block_start))
        if end < block_end:
            replacement.append((end, block_end - end))
        self._blocks[index:index + 1] = replacement

    def _coalesce(self) -> None:
        merged: List[Tuple[int, int]] = []
        for start, size in self._blocks:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_size = merged[-1]
                merged[-1] = (prev_start, prev_size + size)
            else:
                merged.append((start, size))
        self._blocks = merged

    def check_invariants(self) -> None:
        """Assert structural invariants."""
        previous_end = None
        for start, size in self._blocks:
            if size <= 0:
                raise AllocationError(f"empty free block at {start}")
            if start < 0 or start + size > self.capacity_words:
                raise AllocationError(
                    f"free block [{start}..{start + size}) outside capacity"
                )
            if previous_end is not None and start <= previous_end:
                raise AllocationError(
                    f"free blocks unsorted or uncoalesced near {start}"
                )
            previous_end = start + size

    def __str__(self) -> str:
        blocks = ", ".join(f"[{s}..{s + z})" for s, z in self._blocks)
        return f"FB_list({blocks or 'full'})"
