"""Frame-buffer placement: the paper's allocation algorithm (Figure 4).

"As FB is not a large memory and as data and result sizes are similar,
the chosen allocation method is first-fit.  It keeps track of which
parts are free through a linear list of all free blocks (FB_list)."

The algorithm places long-lived objects (kept shared data, kernel input
data) from **upper** free addresses and short-lived ones (intermediate
and final results) from **lower** free addresses, releases space eagerly
after each kernel execution, keeps iteration instances of the same
object adjacent for addressing regularity, and splits an object across
free blocks only as a last resort.
"""

from repro.alloc.allocator import AllocationMap, AllocationRecord, FrameBufferAllocator
from repro.alloc.free_list import FreeBlockList
from repro.alloc.reference import ReferenceFreeBlockList
from repro.alloc.stats import AllocationStats, compute_stats

__all__ = [
    "AllocationMap",
    "AllocationRecord",
    "AllocationStats",
    "FrameBufferAllocator",
    "FreeBlockList",
    "ReferenceFreeBlockList",
    "compute_stats",
]
