"""Size arithmetic for the frame buffer and external memory.

Throughout the library sizes are expressed in **words** — the native
transfer unit of the MorphoSys frame buffer (the paper quotes sizes such
as ``1K``, ``2K``, ``8K`` for one frame-buffer set).  This module
provides parsing of human-readable size strings (``"2K"``, ``"0.3K"``,
``"512"``), formatting back into the paper's notation, and a couple of
small helpers used by capacity checks.
"""

from __future__ import annotations

import math
from typing import Union

__all__ = [
    "WORDS_PER_K",
    "parse_size",
    "format_size",
    "format_words_pair",
    "kwords",
    "ceil_div",
    "align_up",
]

#: One "K" in the paper's tables equals 1024 words.
WORDS_PER_K = 1024

SizeLike = Union[int, float, str]


def parse_size(value: SizeLike) -> int:
    """Parse a size into an integer number of words.

    Accepts plain integers, floats (rounded up to a whole word) and
    strings in the paper's notation::

        >>> parse_size(512)
        512
        >>> parse_size("2K")
        2048
        >>> parse_size("0.3K")
        308
        >>> parse_size("1.5k")
        1536

    Raises:
        ValueError: if the value is negative or not parseable.
    """
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise ValueError(f"not a size: {value!r}")
    if isinstance(value, int):
        words = value
    elif isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"not a size: {value!r}")
        words = math.ceil(value)
    elif isinstance(value, str):
        text = value.strip()
        if not text:
            raise ValueError("empty size string")
        multiplier = 1
        if text[-1] in ("k", "K"):
            multiplier = WORDS_PER_K
            text = text[:-1]
        try:
            numeric = float(text)
        except ValueError as exc:
            raise ValueError(f"not a size: {value!r}") from exc
        if math.isnan(numeric) or math.isinf(numeric):
            raise ValueError(f"not a size: {value!r}")
        words = math.ceil(numeric * multiplier)
    else:
        raise ValueError(f"not a size: {value!r}")
    if words < 0:
        raise ValueError(f"size must be non-negative, got {value!r}")
    return words


def format_size(words: int) -> str:
    """Format a word count using the paper's ``K`` notation when exact.

    >>> format_size(2048)
    '2K'
    >>> format_size(512)
    '512'
    >>> format_size(1536)
    '1.5K'
    """
    if words < 0:
        raise ValueError(f"size must be non-negative, got {words}")
    if words and words % WORDS_PER_K == 0:
        return f"{words // WORDS_PER_K}K"
    if words >= WORDS_PER_K:
        value = words / WORDS_PER_K
        text = f"{value:.2f}".rstrip("0").rstrip(".")
        return f"{text}K"
    return str(words)


def format_words_pair(required: int, available: int) -> tuple:
    """Format a (need, capacity) pair without rounding contradictions.

    :func:`format_size` rounds to two decimals of a K, so 1029 and 1024
    both render as ``1K`` — an infeasibility message built from them
    would claim "needs 1K but holds 1K".  Whenever the two counts would
    round to the same string while being different numbers, both are
    rendered as exact word counts instead:

    >>> format_words_pair(2048, 1024)
    ('2K', '1K')
    >>> format_words_pair(1029, 1024)
    ('1029 words', '1024 words')
    """
    required_text = format_size(required)
    available_text = format_size(available)
    if required != available and required_text == available_text:
        return f"{required} words", f"{available} words"
    return required_text, available_text


def kwords(value: float) -> int:
    """Shorthand for ``parse_size(f"{value}K")``: ``kwords(2) == 2048``."""
    return parse_size(f"{value}K")


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division; used for round counts ``ceil(n / RF)``."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return ceil_div(value, alignment) * alignment
