"""Dataflow analysis: classify objects and compute liveness.

This module plays the role of the *information extractor* in the
paper's compilation framework (Figure 2): given an application and a
clustering, it derives for every data object

* its producer kernel / cluster (``None`` for external data),
* its consumer kernels / clusters,
* its classification — external data, intermediate result (``r_jt``),
  shared result (``rout_j``) or final result,
* its last use inside each cluster (for release/liveness).

The classification follows section 3 of the paper:

* ``d_j``  — external input data of kernel ``k_j``;
* ``r_jt`` — intermediate result of ``k_j``, "which are data for ``k_t``
  and not for any kernel executed after ``k_t``" (within the cluster);
* ``rout_j`` — result of ``k_j`` "that will be used as data by kernels
  of clusters executed later";
* final results — results "that have to be transferred in the external
  memory".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.application import Application
from repro.core.cluster import Cluster, Clustering
from repro.errors import DataflowError

__all__ = ["ObjectClass", "ObjectInfo", "DataflowInfo", "analyze_dataflow"]


class ObjectClass(enum.Enum):
    """Primary classification of a data object under a clustering."""

    #: Loaded from external memory; has no producer kernel.
    EXTERNAL_DATA = "external_data"
    #: Produced and fully consumed within a single cluster; never leaves
    #: the frame buffer (paper's ``r_jt``).
    INTERMEDIATE_RESULT = "intermediate_result"
    #: Produced in one cluster and consumed by later clusters (paper's
    #: ``rout_j``); may additionally be a final output.
    SHARED_RESULT = "shared_result"
    #: A final output that is not consumed by any later cluster.
    FINAL_RESULT = "final_result"


@dataclass(frozen=True)
class ObjectInfo:
    """Everything the schedulers need to know about one object.

    Attributes:
        name: object name.
        size: size in words of one iteration instance.
        producer: producing kernel name, or ``None`` for external data.
        producer_cluster: index of the producing cluster, or ``None``.
        consumers: consuming kernel names, in execution order.
        consumer_clusters: sorted, de-duplicated consuming cluster indices.
        is_final: True if the object is an application output.
        object_class: primary classification.
        invariant: iteration-invariant external data (one copy serves
            every concurrent iteration).
    """

    name: str
    size: int
    producer: Optional[str]
    producer_cluster: Optional[int]
    consumers: Tuple[str, ...]
    consumer_clusters: Tuple[int, ...]
    is_final: bool
    object_class: ObjectClass
    invariant: bool = False

    def words_for(self, iterations: int) -> int:
        """Words one cluster visit moves/holds for this object when the
        visit spans *iterations* concurrent iterations."""
        return self.size if self.invariant else self.size * iterations

    @property
    def is_external(self) -> bool:
        return self.producer is None

    @property
    def is_result(self) -> bool:
        return self.producer is not None

    def used_by_cluster(self, cluster_index: int) -> bool:
        return cluster_index in self.consumer_clusters

    def consumed_after(self, cluster_index: int) -> bool:
        """True if some cluster strictly after *cluster_index* consumes it."""
        return any(c > cluster_index for c in self.consumer_clusters)

    def last_consumer_cluster(self) -> Optional[int]:
        return self.consumer_clusters[-1] if self.consumer_clusters else None


class DataflowInfo:
    """Dataflow facts for one (application, clustering) pair.

    Obtain via :func:`analyze_dataflow`.  All per-cluster queries take a
    cluster index (0-based) and return object names in a deterministic
    order (execution order of first touch).
    """

    def __init__(
        self,
        application: Application,
        clustering: Clustering,
        info: Dict[str, ObjectInfo],
    ):
        self.application = application
        self.clustering = clustering
        self._info = info
        # Memo tables for the per-cluster queries below: dataflow facts
        # are immutable once analyzed, and the schedulers/codegen re-ask
        # the same questions thousands of times on large workloads.
        self._last_use_memo: Dict[Tuple[str, int], Optional[str]] = {}
        self._inputs_memo: Dict[int, Tuple[str, ...]] = {}
        self._produced_memo: Dict[int, Tuple[str, ...]] = {}

    def __eq__(self, other: object) -> bool:
        # Structural equality: dataflow facts are a pure function of the
        # (application, clustering) pair, so two analyses are equal when
        # those inputs and the derived object table match.  Needed so
        # schedules survive pickle round-trips (cache hits, worker
        # processes) comparing equal to their in-process originals.
        if not isinstance(other, DataflowInfo):
            return NotImplemented
        return (
            self.application == other.application
            and self.clustering == other.clustering
            and self._info == other._info
        )

    def __hash__(self) -> int:
        # Keep identity hashing: instances are mutated-free but hold
        # dict state; identity is cheap and correct for memo keys.
        return object.__hash__(self)

    def __getitem__(self, obj_name: str) -> ObjectInfo:
        try:
            return self._info[obj_name]
        except KeyError:
            raise KeyError(
                f"no dataflow info for object {obj_name!r} in "
                f"{self.application.name!r}"
            ) from None

    def __contains__(self, obj_name: str) -> bool:
        return obj_name in self._info

    def __iter__(self):
        return iter(self._info.values())

    @property
    def objects(self) -> Tuple[ObjectInfo, ...]:
        return tuple(self._info.values())

    # -- per-cluster queries ---------------------------------------------

    def _cluster(self, cluster_index: int) -> Cluster:
        return self.clustering[cluster_index]

    def inputs_of_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """Objects consumed by the cluster but produced outside it.

        These are the objects that must be present in the cluster's FB
        set before it starts: external data plus results imported from
        earlier clusters.
        """
        cached = self._inputs_memo.get(cluster_index)
        if cached is not None:
            return cached
        cluster = self._cluster(cluster_index)
        ordered: List[str] = []
        seen = set()
        for kernel_name in cluster.kernel_names:
            kernel = self.application.kernel(kernel_name)
            for obj_name in kernel.inputs:
                info = self._info[obj_name]
                produced_here = info.producer_cluster == cluster_index
                if not produced_here and obj_name not in seen:
                    ordered.append(obj_name)
                    seen.add(obj_name)
        result = tuple(ordered)
        self._inputs_memo[cluster_index] = result
        return result

    def external_inputs_of_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """External data consumed by the cluster."""
        return tuple(
            name for name in self.inputs_of_cluster(cluster_index)
            if self._info[name].is_external
        )

    def imported_results_of_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """Results of earlier clusters consumed by this cluster."""
        return tuple(
            name for name in self.inputs_of_cluster(cluster_index)
            if self._info[name].is_result
        )

    def produced_by_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """Objects produced inside the cluster, in production order."""
        cached = self._produced_memo.get(cluster_index)
        if cached is not None:
            return cached
        cluster = self._cluster(cluster_index)
        ordered: List[str] = []
        for kernel_name in cluster.kernel_names:
            ordered.extend(self.application.kernel(kernel_name).outputs)
        result = tuple(ordered)
        self._produced_memo[cluster_index] = result
        return result

    def shared_results_of_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """Results produced in the cluster and consumed by later clusters."""
        return tuple(
            name for name in self.produced_by_cluster(cluster_index)
            if self._info[name].consumed_after(cluster_index)
        )

    def final_results_of_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """Final outputs produced in the cluster."""
        return tuple(
            name for name in self.produced_by_cluster(cluster_index)
            if self._info[name].is_final
        )

    def intermediates_of_cluster(self, cluster_index: int) -> Tuple[str, ...]:
        """Results produced and fully consumed inside the cluster that are
        not final outputs."""
        return tuple(
            name for name in self.produced_by_cluster(cluster_index)
            if self._info[name].object_class is ObjectClass.INTERMEDIATE_RESULT
        )

    # -- liveness ----------------------------------------------------------

    def last_use_in_cluster(self, obj_name: str, cluster_index: int) -> Optional[str]:
        """Name of the last kernel of the cluster consuming *obj_name*,
        or ``None`` if the cluster does not consume it."""
        key = (obj_name, cluster_index)
        try:
            return self._last_use_memo[key]
        except KeyError:
            pass
        cluster = self._cluster(cluster_index)
        last = None
        for kernel_name in cluster.kernel_names:
            if self.application.kernel(kernel_name).reads(obj_name):
                last = kernel_name
        self._last_use_memo[key] = last
        return last

    def dead_after_kernel(self, cluster_index: int, kernel_name: str) -> Tuple[str, ...]:
        """Objects whose storage may be released once *kernel_name* of
        cluster *cluster_index* has executed (paper's ``release(c,k,iter)``):
        objects whose last use anywhere (this cluster and all later
        clusters) is this kernel, and that are not final outputs still
        awaiting their store.

        Final outputs and shared results are **not** reported dead here:
        their space is released when their external store completes or
        when their last consuming cluster finishes, respectively — that
        is the transfer plan's decision, not a dataflow fact.
        """
        cluster = self._cluster(cluster_index)
        if kernel_name not in cluster.kernel_names:
            raise DataflowError(
                f"kernel {kernel_name!r} is not in cluster {cluster.name}"
            )
        dead: List[str] = []
        kernel = self.application.kernel(kernel_name)
        for obj_name in kernel.inputs:
            info = self._info[obj_name]
            if info.is_final:
                continue
            if info.consumed_after(cluster_index):
                continue
            if self.last_use_in_cluster(obj_name, cluster_index) == kernel_name:
                dead.append(obj_name)
        return tuple(dead)


def analyze_dataflow(application: Application, clustering: Clustering) -> DataflowInfo:
    """Run the information extractor for a clustered application."""
    if clustering.application is not application:
        if clustering.application.kernel_names != application.kernel_names:
            raise DataflowError(
                "clustering was built for a different application "
                f"({clustering.application.name!r} vs {application.name!r})"
            )
    info: Dict[str, ObjectInfo] = {}
    for obj_name, obj in application.objects.items():
        producer = application.producer_of(obj_name)
        consumers = application.consumers_of(obj_name)
        producer_cluster = (
            clustering.cluster_of(producer.name).index if producer else None
        )
        consumer_clusters = tuple(
            sorted({clustering.cluster_of(k.name).index for k in consumers})
        )
        is_final = obj_name in application.final_outputs
        object_class = _classify(
            producer_cluster, consumer_clusters, is_final, obj_name
        )
        info[obj_name] = ObjectInfo(
            name=obj_name,
            size=obj.size,
            producer=producer.name if producer else None,
            producer_cluster=producer_cluster,
            consumers=tuple(k.name for k in consumers),
            consumer_clusters=consumer_clusters,
            is_final=is_final,
            object_class=object_class,
            invariant=obj.invariant,
        )
    return DataflowInfo(application, clustering, info)


def _classify(
    producer_cluster: Optional[int],
    consumer_clusters: Tuple[int, ...],
    is_final: bool,
    obj_name: str,
) -> ObjectClass:
    if producer_cluster is None:
        return ObjectClass.EXTERNAL_DATA
    consumed_later = any(c > producer_cluster for c in consumer_clusters)
    if consumed_later:
        return ObjectClass.SHARED_RESULT
    if is_final:
        return ObjectClass.FINAL_RESULT
    if not consumer_clusters:
        raise DataflowError(
            f"result {obj_name!r} is neither consumed nor a final output; "
            f"it would be dead on arrival"
        )
    return ObjectClass.INTERMEDIATE_RESULT
