"""Application model: kernels, data objects, dataflow and clustering.

This subpackage implements the abstraction level the paper works at: an
application is a sequence of *kernels* (macro-tasks) characterised by
their contexts and their input/output data, partitioned into *clusters*
that alternate between the two frame-buffer sets.
"""

from repro.core.application import Application, ApplicationBuilder
from repro.core.cluster import Cluster, Clustering
from repro.core.dataflow import DataflowInfo, ObjectClass, analyze_dataflow
from repro.core.dataobj import DataObject
from repro.core.kernel import Kernel
from repro.core.metrics import cluster_data_size, cluster_footprint, total_data_size
from repro.core.reuse import SharedData, SharedResult, find_shared_data, find_shared_results

__all__ = [
    "Application",
    "ApplicationBuilder",
    "Cluster",
    "Clustering",
    "DataObject",
    "DataflowInfo",
    "Kernel",
    "ObjectClass",
    "SharedData",
    "SharedResult",
    "analyze_dataflow",
    "cluster_data_size",
    "cluster_footprint",
    "find_shared_data",
    "find_shared_results",
    "total_data_size",
]
