"""Peak frame-buffer occupancy ``DS(C_c)`` and related size metrics.

Section 3 of the paper defines the *maximum data size* of a cluster::

    DS(C_c) = MAX_{i=1..n} [ sum_{j=i..n} d_j  +  sum_{j=1..i} rout_j
                             + sum_{j<=i} sum_{t>=i} r_jt ]

i.e. the worst-case simultaneous occupancy over the execution of the
cluster's kernels, where

* ``d_j``   — input data whose **last** use inside the cluster is kernel
  ``k_j`` (each input is charged until its last local consumer, because
  the Data Scheduler *replaces* dead data with new results);
* ``rout_j`` — results of ``k_j`` that leave the cluster (final outputs
  and results consumed by later clusters), which accumulate until the
  cluster finishes;
* ``r_jt``  — intermediate results produced by ``k_j`` and last consumed
  by ``k_t`` within the cluster.

This module provides three related quantities:

* :func:`cluster_data_size` — the exact peak via an event sweep, for any
  reuse factor ``RF`` and any set of inter-cluster *keep* decisions
  (the quantity the Complete Data Scheduler checks against ``FBS``);
* :func:`cluster_data_size_formula` — the paper's closed form, for
  ``RF = 1`` without keeps (cross-checked against the sweep in tests);
* :func:`cluster_footprint` — the Basic Scheduler's occupancy, with no
  replacement at all (every input and every result of the cluster is
  simultaneously resident).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.core.dataflow import DataflowInfo, ObjectClass
from repro.core.reuse import SharedData, SharedResult

__all__ = [
    "KeepDecision",
    "cluster_data_size",
    "cluster_data_size_naive",
    "cluster_data_size_formula",
    "cluster_footprint",
    "cluster_sweep_peak",
    "max_cluster_data_size",
    "resident_keep_words",
    "total_data_size",
]

KeepDecision = Union[SharedData, SharedResult]


def total_data_size(dataflow: DataflowInfo) -> int:
    """``TDS`` — total data and result size of the application, per
    iteration (the normaliser in the paper's TF formulas)."""
    return sum(info.size for info in dataflow)


def cluster_footprint(dataflow: DataflowInfo, cluster_index: int) -> int:
    """Occupancy of the Basic Scheduler [3] for one cluster iteration.

    The Basic Scheduler performs no replacement: all input data plus all
    results of the cluster are simultaneously resident in the FB set.
    """
    inputs = dataflow.inputs_of_cluster(cluster_index)
    produced = dataflow.produced_by_cluster(cluster_index)
    return sum(dataflow[name].size for name in inputs) + sum(
        dataflow[name].size for name in produced
    )


def _kept_names_for_set(keeps: Iterable[KeepDecision], fb_set: int) -> Set[str]:
    return {keep.name for keep in keeps if keep.fb_set == fb_set}


def _resident_keep_words(
    dataflow: DataflowInfo,
    cluster_index: int,
    rf: int,
    keeps: Sequence[KeepDecision],
) -> Tuple[int, Set[str]]:
    """Constant occupancy contributed by kept items resident during the
    cluster, and the set of kept object names relevant to this cluster's
    FB set.

    A kept item contributes ``RF * size`` words for every same-set
    cluster inside its residency span (it holds one instance per
    concurrent iteration).  The item also stays resident through the
    cluster that loads/produces it and the cluster that last consumes
    it, so inputs/outputs of this cluster that are kept must not be
    double-counted by the sweep — they are returned in the second
    element so the sweep can skip them.
    """
    clustering = dataflow.clustering
    fb_set = clustering[cluster_index].fb_set
    resident_words = 0
    local_kept: Set[str] = set()
    for keep in keeps:
        if keep.fb_set == fb_set:
            if keep.resident_for(cluster_index):
                if getattr(keep, "invariant", False):
                    resident_words += keep.size
                else:
                    resident_words += rf * keep.size
                local_kept.add(keep.name)
            continue
        # A keep homed in the *other* set can still serve this cluster
        # (cross-set retention): the object then occupies no space here
        # but must not be double-counted as a local input/output.
        consumers = getattr(keep, "clusters", None)
        if consumers is None:
            consumers = keep.consumer_clusters
        if cluster_index in consumers:
            local_kept.add(keep.name)
    return resident_words, local_kept


#: Public alias used by the incremental occupancy engine.
resident_keep_words = _resident_keep_words


def cluster_sweep_peak(
    dataflow: DataflowInfo,
    cluster_index: int,
    rf: int,
    local_kept: Set[str],
) -> int:
    """Peak of the load/execute/release sweep, excluding kept-resident
    words, in ``O(kernels)`` regardless of ``rf``.

    Within one kernel's ``RF`` consecutive executions the occupancy
    trace is affine in the iteration index: every iteration allocates
    the kernel's (non-kept) outputs and releases the same set of dead
    instances — non-invariant inputs whose last local use is this
    kernel, plus intermediates whose last consumer is this kernel.  The
    per-kernel peak is therefore reached at either the first or the
    last iteration, which collapses the naive ``O(kernels * rf)`` sweep
    (:func:`cluster_data_size_naive`) to a closed form evaluated once
    per kernel.  Both paths produce identical integers — the
    equivalence is property-tested.
    """
    cluster = dataflow.clustering[cluster_index]
    kernel_names = list(cluster.kernel_names)
    position = {name: idx for idx, name in enumerate(kernel_names)}

    inputs = [
        name for name in dataflow.inputs_of_cluster(cluster_index)
        if name not in local_kept
    ]
    last_local_use: Dict[str, int] = {}
    for obj_name in inputs:
        last = dataflow.last_use_in_cluster(obj_name, cluster_index)
        assert last is not None, (obj_name, cluster_index)
        last_local_use[obj_name] = position[last]

    occupancy = sum(dataflow[name].words_for(rf) for name in inputs)
    peak = occupancy

    # Per-kernel totals, each charged once per iteration:
    #   out_k — non-kept output words allocated;
    #   rel_k — words released after the peak check (dead non-invariant
    #           inputs with last local use here, plus intermediates
    #           whose last in-cluster consumer is here);
    #   inv_k — invariant inputs released only on the final iteration.
    intermediate_release_at: Dict[int, int] = {}
    for k_idx, kernel_name in enumerate(kernel_names):
        kernel = dataflow.application.kernel(kernel_name)
        for out_name in kernel.outputs:
            info = dataflow[out_name]
            if out_name in local_kept:
                continue
            if info.object_class is ObjectClass.INTERMEDIATE_RESULT:
                consumer_pos = max(
                    position[c] for c in info.consumers if c in position
                )
                intermediate_release_at[consumer_pos] = (
                    intermediate_release_at.get(consumer_pos, 0) + info.size
                )

    for k_idx, kernel_name in enumerate(kernel_names):
        kernel = dataflow.application.kernel(kernel_name)
        out_words = sum(
            dataflow[name].size for name in kernel.outputs
            if name not in local_kept
        )
        released = intermediate_release_at.get(k_idx, 0)
        invariant_words = 0
        for in_name in kernel.inputs:
            if in_name in local_kept:
                continue
            if last_local_use.get(in_name) == k_idx:
                info = dataflow[in_name]
                if info.invariant:
                    invariant_words += info.size
                else:
                    released += info.size
        # Affine trace: occupancy after allocating iteration i's outputs
        # is start + (i+1)*out - i*released, maximal at i=0 or i=rf-1.
        peak = max(
            peak,
            occupancy + out_words + max(0, (rf - 1) * (out_words - released)),
        )
        occupancy += rf * (out_words - released) - invariant_words
    return peak


def cluster_data_size(
    dataflow: DataflowInfo,
    cluster_index: int,
    rf: int = 1,
    keeps: Sequence[KeepDecision] = (),
) -> int:
    """Exact peak FB-set occupancy of one cluster round (``RF`` fissioned
    iterations), in words.

    Model (paper sections 3-5):

    * all input instances for the ``RF`` iterations are loaded before the
      cluster starts (Figure 4 allocates kernel data ``RF`` times up
      front); a non-kept input instance is released after the last local
      kernel consuming it executes that iteration;
    * results bound for outside the cluster (final outputs, shared
      results) accumulate until the cluster finishes (their stores are
      overlapped with the next cluster's computation);
    * an intermediate result instance lives from its producing kernel's
      execution of that iteration to its last consuming kernel's
      execution of the same iteration;
    * kept items (``keeps``) resident during this cluster contribute a
      constant ``RF * size`` each for the whole round, and are excluded
      from the load/release sweep.

    Computed via the ``O(kernels)`` closed form
    (:func:`cluster_sweep_peak`); :func:`cluster_data_size_naive` keeps
    the original event sweep as the property-tested reference.

    Args:
        dataflow: output of :func:`repro.core.dataflow.analyze_dataflow`.
        cluster_index: which cluster.
        rf: reuse (loop fission) factor, >= 1.
        keeps: inter-cluster retention decisions in effect.

    Returns:
        Peak occupancy in words.
    """
    if rf < 1:
        raise ValueError(f"rf must be >= 1, got {rf}")
    kept_resident, local_kept = _resident_keep_words(
        dataflow, cluster_index, rf, keeps
    )
    return kept_resident + cluster_sweep_peak(
        dataflow, cluster_index, rf, local_kept
    )


def cluster_data_size_naive(
    dataflow: DataflowInfo,
    cluster_index: int,
    rf: int = 1,
    keeps: Sequence[KeepDecision] = (),
) -> int:
    """Reference implementation of :func:`cluster_data_size`.

    The original ``O(kernels * rf)`` event sweep, retained verbatim so
    property tests can assert the closed form and the incremental
    occupancy engine reproduce it exactly.
    """
    if rf < 1:
        raise ValueError(f"rf must be >= 1, got {rf}")
    cluster = dataflow.clustering[cluster_index]
    kept_resident, local_kept = _resident_keep_words(
        dataflow, cluster_index, rf, keeps
    )

    inputs = [
        name for name in dataflow.inputs_of_cluster(cluster_index)
        if name not in local_kept
    ]
    kernel_names = list(cluster.kernel_names)
    position = {name: idx for idx, name in enumerate(kernel_names)}

    last_local_use: Dict[str, int] = {}
    for obj_name in inputs:
        last = dataflow.last_use_in_cluster(obj_name, cluster_index)
        assert last is not None, (obj_name, cluster_index)
        last_local_use[obj_name] = position[last]

    occupancy = kept_resident + sum(
        dataflow[name].words_for(rf) for name in inputs
    )
    peak = occupancy

    # Sweep: iterations outer-to-inner per kernel?  Loop fission executes
    # kernel k RF times, then kernel k+1 RF times (Figure 3b).  The sweep
    # follows that order.
    outbound_accumulated = 0  # final + shared results, never released here
    live_intermediate: Dict[Tuple[str, int], int] = {}

    for k_idx, kernel_name in enumerate(kernel_names):
        kernel = dataflow.application.kernel(kernel_name)
        for iteration in range(rf):
            # Allocate this kernel's outputs for this iteration.
            for out_name in kernel.outputs:
                info = dataflow[out_name]
                if out_name in local_kept:
                    # Already charged as a kept-resident instance.
                    continue
                occupancy += info.size
                if info.object_class is ObjectClass.INTERMEDIATE_RESULT:
                    consumer_pos = max(
                        position[c] for c in info.consumers
                        if c in position
                    )
                    live_intermediate[(out_name, iteration)] = consumer_pos
                else:
                    outbound_accumulated += info.size
            peak = max(peak, occupancy)
            # Release dead inputs (this iteration's instances).
            for in_name in kernel.inputs:
                if in_name in local_kept:
                    continue
                if in_name in last_local_use and last_local_use[in_name] == k_idx:
                    info = dataflow[in_name]
                    if info.invariant:
                        # One shared copy: released only after the last
                        # concurrent iteration's use.
                        if iteration == rf - 1:
                            occupancy -= info.size
                    elif _releasable_input(dataflow, info, cluster_index):
                        occupancy -= info.size
                key = (in_name, iteration)
                if key in live_intermediate and live_intermediate[key] == k_idx:
                    occupancy -= dataflow[in_name].size
                    del live_intermediate[key]
    return peak


def _releasable_input(dataflow: DataflowInfo, info, cluster_index: int) -> bool:
    """A non-kept input instance can be released after its last local
    use.  This holds for external data (later clusters reload their own
    copy) and for imported results (they were loaded from external
    memory, the external copy persists)."""
    del dataflow, cluster_index  # uniform signature; decision is local
    return True


def cluster_data_size_formula(dataflow: DataflowInfo, cluster_index: int) -> int:
    """The paper's closed-form ``DS(C_c)`` for ``RF = 1`` and no keeps.

    ``MAX_i [ sum_{j>=i} d_j + sum_{j<=i} rout_j + live intermediates at i ]``
    evaluated at the moment kernel ``k_i`` executes (its outputs already
    allocated, its dead inputs not yet released).
    """
    cluster = dataflow.clustering[cluster_index]
    kernel_names = list(cluster.kernel_names)
    position = {name: idx for idx, name in enumerate(kernel_names)}
    inputs = dataflow.inputs_of_cluster(cluster_index)

    # d_j: input charged at its last local consumer.
    d_at: List[int] = [0] * len(kernel_names)
    for obj_name in inputs:
        last = dataflow.last_use_in_cluster(obj_name, cluster_index)
        d_at[position[last]] += dataflow[obj_name].size

    # rout_j: outbound results (final or consumed by later clusters).
    rout_at: List[int] = [0] * len(kernel_names)
    # r_jt: intermediates, keyed by (producer pos, last consumer pos).
    intermediates: List[Tuple[int, int, int]] = []  # (j, t, size)
    for k_idx, kernel_name in enumerate(kernel_names):
        kernel = dataflow.application.kernel(kernel_name)
        for out_name in kernel.outputs:
            info = dataflow[out_name]
            if info.object_class is ObjectClass.INTERMEDIATE_RESULT:
                consumer_pos = max(position[c] for c in info.consumers)
                intermediates.append((k_idx, consumer_pos, info.size))
            else:
                rout_at[k_idx] += info.size

    best = 0
    for i in range(len(kernel_names)):
        live_inputs = sum(d_at[j] for j in range(i, len(kernel_names)))
        outbound = sum(rout_at[j] for j in range(0, i + 1))
        live_inter = sum(
            size for (j, t, size) in intermediates if j <= i <= t
        )
        best = max(best, live_inputs + outbound + live_inter)
    return best


def max_cluster_data_size(
    dataflow: DataflowInfo,
    rf: int = 1,
    keeps: Sequence[KeepDecision] = (),
    fb_set: Optional[int] = None,
) -> int:
    """Maximum ``DS(C_c)`` over all clusters (optionally of one set)."""
    clusters = (
        dataflow.clustering.clusters if fb_set is None
        else dataflow.clustering.on_set(fb_set)
    )
    return max(
        cluster_data_size(dataflow, cluster.index, rf, keeps)
        for cluster in clusters
    )
