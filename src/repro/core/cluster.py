"""Clusters: groups of kernels assigned to one frame-buffer set.

"The term cluster is used here to refer to a set of kernels that is
assigned to the same FB set and whose components are consecutively
executed" (paper, section 2).  While one cluster executes out of one
frame-buffer set, the contexts and data of the next cluster are
transferred into the context memory and the other set.

A :class:`Clustering` is an ordered partition of the application's
kernel sequence into contiguous clusters; clusters alternate between the
two FB sets (cluster ``i`` uses set ``i % 2``) unless explicit set
assignments are given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.application import Application
from repro.core.kernel import Kernel
from repro.errors import ClusteringError

__all__ = ["Cluster", "Clustering"]


@dataclass(frozen=True)
class Cluster:
    """One cluster: an index, its kernels, and its FB set.

    Attributes:
        index: position of the cluster in the execution order (0-based;
            the paper's ``Cl_1`` is index 0).
        kernel_names: names of the kernels, in execution order.
        fb_set: frame-buffer set (0 or 1) the cluster executes from.
    """

    index: int
    kernel_names: Tuple[str, ...]
    fb_set: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ClusteringError(f"cluster index must be >= 0, got {self.index}")
        if self.fb_set not in (0, 1):
            raise ClusteringError(
                f"cluster {self.index}: fb_set must be 0 or 1, got {self.fb_set}"
            )
        if not self.kernel_names:
            raise ClusteringError(f"cluster {self.index} is empty")
        object.__setattr__(self, "kernel_names", tuple(self.kernel_names))

    @property
    def name(self) -> str:
        """Paper-style name, ``Cl1`` for index 0."""
        return f"Cl{self.index + 1}"

    @property
    def size(self) -> int:
        """Number of kernels in the cluster."""
        return len(self.kernel_names)

    def __contains__(self, kernel_name: str) -> bool:
        return kernel_name in self.kernel_names

    def __str__(self) -> str:
        members = ", ".join(self.kernel_names)
        return f"{self.name}(set{self.fb_set}: {members})"


class Clustering:
    """An ordered partition of an application's kernels into clusters.

    Args:
        application: the application being partitioned.
        groups: sequence of kernel-name groups, each becoming a cluster.
            Groups must cover the application's kernel sequence exactly,
            contiguously and in order.
        fb_sets: optional explicit FB-set assignment per cluster; defaults
            to alternating ``0, 1, 0, 1, ...``.
    """

    def __init__(
        self,
        application: Application,
        groups: Sequence[Sequence[str]],
        fb_sets: Optional[Sequence[int]] = None,
    ):
        self.application = application
        flattened = [name for group in groups for name in group]
        expected = list(application.kernel_names)
        if flattened != expected:
            raise ClusteringError(
                f"clustering of {application.name!r} must be a contiguous, "
                f"in-order partition of its kernels; got {flattened}, "
                f"expected {expected}"
            )
        if fb_sets is None:
            fb_sets = [index % 2 for index in range(len(groups))]
        if len(fb_sets) != len(groups):
            raise ClusteringError(
                f"{len(fb_sets)} fb_set assignments for {len(groups)} clusters"
            )
        self.clusters: Tuple[Cluster, ...] = tuple(
            Cluster(index=i, kernel_names=tuple(group), fb_set=fb_sets[i])
            for i, group in enumerate(groups)
        )
        self._cluster_of = {
            name: cluster for cluster in self.clusters for name in cluster.kernel_names
        }
        self._kernels_of: Dict[int, Tuple[Kernel, ...]] = {
            cluster.index: tuple(
                application.kernel(name) for name in cluster.kernel_names
            )
            for cluster in self.clusters
        }
        self._on_set: Dict[int, Tuple[Cluster, ...]] = {}

    # -- construction helpers -------------------------------------------

    @classmethod
    def single(cls, application: Application) -> "Clustering":
        """All kernels in one cluster (degenerate but legal)."""
        return cls(application, [list(application.kernel_names)])

    @classmethod
    def per_kernel(cls, application: Application) -> "Clustering":
        """One cluster per kernel."""
        return cls(application, [[name] for name in application.kernel_names])

    @classmethod
    def from_sizes(cls, application: Application, sizes: Sequence[int]) -> "Clustering":
        """Partition by consecutive group sizes, e.g. ``[2, 3]``."""
        if sum(sizes) != len(application.kernels):
            raise ClusteringError(
                f"group sizes {list(sizes)} do not sum to "
                f"{len(application.kernels)} kernels"
            )
        if any(size <= 0 for size in sizes):
            raise ClusteringError(f"group sizes must be positive, got {list(sizes)}")
        names = list(application.kernel_names)
        groups: List[List[str]] = []
        cursor = 0
        for size in sizes:
            groups.append(names[cursor:cursor + size])
            cursor += size
        return cls(application, groups)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    def __getitem__(self, index: int) -> Cluster:
        return self.clusters[index]

    def cluster_of(self, kernel_name: str) -> Cluster:
        """The cluster containing *kernel_name*."""
        try:
            return self._cluster_of[kernel_name]
        except KeyError:
            raise KeyError(
                f"kernel {kernel_name!r} not in clustering of "
                f"{self.application.name!r}"
            ) from None

    def kernels_of(self, cluster: Cluster) -> Tuple[Kernel, ...]:
        """The :class:`Kernel` objects of a cluster, in order."""
        return self._kernels_of[cluster.index]

    def on_set(self, fb_set: int) -> Tuple[Cluster, ...]:
        """Clusters assigned to a frame-buffer set, in execution order."""
        found = self._on_set.get(fb_set)
        if found is None:
            found = tuple(c for c in self.clusters if c.fb_set == fb_set)
            self._on_set[fb_set] = found
        return found

    def same_set(self, first: Cluster, second: Cluster) -> bool:
        """True if two clusters share a frame-buffer set."""
        return first.fb_set == second.fb_set

    def context_words_of(self, cluster: Cluster) -> int:
        """Total context words of a cluster's kernels."""
        return sum(k.context_words for k in self.kernels_of(cluster))

    def sizes(self) -> Tuple[int, ...]:
        """Cluster sizes, e.g. ``(2, 3)``."""
        return tuple(cluster.size for cluster in self.clusters)

    def __str__(self) -> str:
        return " | ".join(str(cluster) for cluster in self.clusters)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        return (
            self.application.name == other.application.name
            and self.clusters == other.clusters
        )

    def __hash__(self) -> int:
        return hash((self.application.name, self.clusters))
