"""Data objects: the unit of storage and transfer.

A :class:`DataObject` names a block of words that lives in the external
memory and/or in a frame-buffer set.  At the abstraction level of the
paper an object has a compile-time-known size; whether it is an external
input, an intermediate result, a shared result or a final result is not
a property of the object itself but of the dataflow and the clustering
(see :mod:`repro.core.dataflow`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ApplicationError
from repro.units import SizeLike, format_size, parse_size

__all__ = ["DataObject"]

_NAME_FORBIDDEN = set(" \t\n,;:[]{}()")


def _validate_name(name: str, what: str) -> str:
    if not isinstance(name, str) or not name:
        raise ApplicationError(f"{what} name must be a non-empty string, got {name!r}")
    if any(ch in _NAME_FORBIDDEN for ch in name):
        raise ApplicationError(f"{what} name {name!r} contains forbidden characters")
    return name


@dataclass(frozen=True)
class DataObject:
    """A named block of data with a compile-time-known size.

    Attributes:
        name: unique identifier within the application.
        size: size in words of **one iteration instance** of the object.
            With a reuse factor ``RF > 1`` the frame buffer holds ``RF``
            instances of the object simultaneously — except for
            iteration-invariant objects, which always occupy one copy.
        invariant: the object's contents are identical for every
            iteration (coefficient tables, target-template banks, filter
            banks, LUTs).  An invariant object is loaded once per round
            per consuming cluster instead of once per iteration, and a
            *kept* invariant object occupies ``size`` words rather than
            ``RF * size``.  Only external data may be invariant.
        element_shape: optional logical shape (e.g. ``(8, 8)`` for a DCT
            block) used by the functional kernel library; irrelevant to
            the scheduler, which only sees ``size``.
        description: free-form documentation string.
    """

    name: str
    size: int
    invariant: bool = False
    element_shape: Optional[tuple] = None
    description: str = ""

    def __post_init__(self) -> None:
        _validate_name(self.name, "data object")
        object.__setattr__(self, "size", parse_size(self.size))
        if self.size <= 0:
            raise ApplicationError(
                f"data object {self.name!r} must have positive size, got {self.size}"
            )
        if self.element_shape is not None:
            shape = tuple(int(dim) for dim in self.element_shape)
            if any(dim <= 0 for dim in shape):
                raise ApplicationError(
                    f"data object {self.name!r} has non-positive shape {shape}"
                )
            object.__setattr__(self, "element_shape", shape)

    @classmethod
    def of(cls, name: str, size: SizeLike, **kwargs) -> "DataObject":
        """Convenience constructor accepting ``"0.3K"``-style sizes."""
        return cls(name=name, size=parse_size(size), **kwargs)

    def __str__(self) -> str:
        return f"{self.name}[{format_size(self.size)}]"
