"""Kernels: the macro-tasks an application is composed of.

"At the abstraction level on which we are working a kernel is
characterized by its contexts, as well as, its input and output data"
(paper, section 1).  A kernel here additionally carries its per-iteration
execution time (produced by the information extractor in the paper's
framework, by the kernel library in ours) so schedulers can estimate the
computation window available for overlapping transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.dataobj import _validate_name
from repro.errors import ApplicationError

__all__ = ["Kernel"]


@dataclass(frozen=True)
class Kernel:
    """One macro-task mapped onto the RC array.

    Attributes:
        name: unique identifier within the application.
        context_words: number of 32-bit context words needed to configure
            the RC array for this kernel.  These are loaded from external
            memory into the context memory (CM) through the DMA channel.
        cycles: RC-array cycles for **one iteration** of the kernel.
        inputs: names of the data objects the kernel reads.
        outputs: names of the data objects the kernel produces.
        library_op: optional key into :mod:`repro.kernels` identifying a
            functional implementation, for end-to-end functional runs.
    """

    name: str
    context_words: int
    cycles: int
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    library_op: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_name(self.name, "kernel")
        if not isinstance(self.context_words, int) or self.context_words <= 0:
            raise ApplicationError(
                f"kernel {self.name!r}: context_words must be a positive int, "
                f"got {self.context_words!r}"
            )
        if not isinstance(self.cycles, int) or self.cycles <= 0:
            raise ApplicationError(
                f"kernel {self.name!r}: cycles must be a positive int, "
                f"got {self.cycles!r}"
            )
        inputs = tuple(self.inputs)
        outputs = tuple(self.outputs)
        for group, label in ((inputs, "input"), (outputs, "output")):
            seen = set()
            for obj_name in group:
                _validate_name(obj_name, f"kernel {self.name!r} {label}")
                if obj_name in seen:
                    raise ApplicationError(
                        f"kernel {self.name!r} lists {label} {obj_name!r} twice"
                    )
                seen.add(obj_name)
        overlap = set(inputs) & set(outputs)
        if overlap:
            raise ApplicationError(
                f"kernel {self.name!r} reads and writes the same object(s) "
                f"{sorted(overlap)}; in-place updates must be modelled as a "
                f"new output object"
            )
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "outputs", outputs)

    def reads(self, obj_name: str) -> bool:
        """True if this kernel consumes *obj_name*."""
        return obj_name in self.inputs

    def writes(self, obj_name: str) -> bool:
        """True if this kernel produces *obj_name*."""
        return obj_name in self.outputs

    def __str__(self) -> str:
        return (
            f"{self.name}(ctx={self.context_words}w, {self.cycles}cyc, "
            f"in={list(self.inputs)}, out={list(self.outputs)})"
        )
