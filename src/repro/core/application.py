"""Applications: an ordered kernel sequence plus its data objects.

The paper's execution model: "Multimedia applications, such as DSP or
MPEG, are composed of a sequence of kernels that are consecutively
executed over a part of the input data, until all the data are
processed."  An :class:`Application` captures one such sequence, the
data objects flowing between kernels, the set of *final* outputs that
must land in external memory, and the total number of iterations
(data blocks, e.g. macroblocks or image tiles) to process.

Validation enforced at construction time:

* every object referenced by a kernel is declared;
* an object is produced by at most one kernel (single assignment);
* every consumer of a produced object runs **after** its producer;
* final outputs are produced by some kernel;
* names are unique across kernels and objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.dataobj import DataObject
from repro.core.kernel import Kernel
from repro.errors import ApplicationError, DataflowError
from repro.units import SizeLike, parse_size

__all__ = ["Application", "ApplicationBuilder"]


@dataclass(frozen=True)
class Application:
    """An immutable, validated application description.

    Use :class:`ApplicationBuilder` (or :meth:`Application.build`) for
    incremental construction.

    Attributes:
        name: application identifier (used in reports).
        kernels: the kernel sequence in execution order.
        objects: mapping from object name to :class:`DataObject`.
        final_outputs: names of objects that must be stored to external
            memory (the application's results).
        total_iterations: number of data blocks the application processes
            (``n`` in the paper: without loop fission each kernel's
            contexts would be loaded ``n`` times).
    """

    name: str
    kernels: Tuple[Kernel, ...]
    objects: Mapping[str, DataObject]
    final_outputs: frozenset
    total_iterations: int

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ApplicationError(f"application {self.name!r} has no kernels")
        if self.total_iterations <= 0:
            raise ApplicationError(
                f"application {self.name!r}: total_iterations must be positive, "
                f"got {self.total_iterations}"
            )
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "objects", dict(self.objects))
        object.__setattr__(self, "final_outputs", frozenset(self.final_outputs))
        self._validate()
        self._build_indexes()

    def _build_indexes(self) -> None:
        """Constant-time lookup tables over the validated kernel list.

        The accessors below sit on every hot path of the compile
        pipeline (occupancy sweeps, codegen, simulation), so linear
        scans over ``kernels`` are replaced by dict lookups built once
        at construction.
        """
        by_name: Dict[str, Kernel] = {}
        position: Dict[str, int] = {}
        producer: Dict[str, Kernel] = {}
        consumers: Dict[str, List[Kernel]] = {}
        for index, kernel in enumerate(self.kernels):
            by_name[kernel.name] = kernel
            position[kernel.name] = index
            for obj_name in kernel.outputs:
                producer[obj_name] = kernel
            for obj_name in kernel.inputs:
                consumers.setdefault(obj_name, []).append(kernel)
        object.__setattr__(self, "_kernel_by_name", by_name)
        object.__setattr__(self, "_kernel_position", position)
        object.__setattr__(self, "_producer_by_object", producer)
        object.__setattr__(
            self,
            "_consumers_by_object",
            {name: tuple(found) for name, found in consumers.items()},
        )

    # -- validation -----------------------------------------------------

    def _validate(self) -> None:
        seen_kernels = set()
        for kernel in self.kernels:
            if kernel.name in seen_kernels:
                raise ApplicationError(
                    f"application {self.name!r} has two kernels named "
                    f"{kernel.name!r}"
                )
            seen_kernels.add(kernel.name)
        for obj_name, obj in self.objects.items():
            if obj_name != obj.name:
                raise ApplicationError(
                    f"object registered under {obj_name!r} is named {obj.name!r}"
                )
            if obj_name in seen_kernels:
                raise ApplicationError(
                    f"name {obj_name!r} is used both for a kernel and an object"
                )
        producers: Dict[str, int] = {}
        for position, kernel in enumerate(self.kernels):
            for obj_name in kernel.inputs + kernel.outputs:
                if obj_name not in self.objects:
                    raise ApplicationError(
                        f"kernel {kernel.name!r} references undeclared object "
                        f"{obj_name!r}"
                    )
            for obj_name in kernel.outputs:
                if obj_name in producers:
                    other = self.kernels[producers[obj_name]].name
                    raise DataflowError(
                        f"object {obj_name!r} produced by both {other!r} and "
                        f"{kernel.name!r} (single assignment required)"
                    )
                producers[obj_name] = position
        for position, kernel in enumerate(self.kernels):
            for obj_name in kernel.inputs:
                producer_pos = producers.get(obj_name)
                if producer_pos is not None and producer_pos >= position:
                    raise DataflowError(
                        f"kernel {kernel.name!r} consumes {obj_name!r} before "
                        f"its producer "
                        f"{self.kernels[producer_pos].name!r} runs"
                    )
        for obj_name in self.final_outputs:
            if obj_name not in self.objects:
                raise ApplicationError(
                    f"final output {obj_name!r} is not a declared object"
                )
            if obj_name not in producers:
                raise DataflowError(
                    f"final output {obj_name!r} is not produced by any kernel"
                )
        consumed = {name for k in self.kernels for name in k.inputs}
        for obj_name, obj in self.objects.items():
            if obj_name not in consumed and obj_name not in producers:
                raise ApplicationError(
                    f"object {obj_name!r} is neither read nor written by any "
                    f"kernel"
                )
            if obj.invariant and obj_name in producers:
                raise DataflowError(
                    f"object {obj_name!r} is produced by "
                    f"{self.kernels[producers[obj_name]].name!r} but marked "
                    f"iteration-invariant; only external data may be invariant"
                )

    # -- accessors ------------------------------------------------------

    @property
    def kernel_names(self) -> Tuple[str, ...]:
        """Kernel names in execution order."""
        return tuple(kernel.name for kernel in self.kernels)

    def kernel(self, name: str) -> Kernel:
        """Look up a kernel by name."""
        try:
            return self._kernel_by_name[name]
        except KeyError:
            raise KeyError(
                f"no kernel named {name!r} in application {self.name!r}"
            ) from None

    def kernel_index(self, name: str) -> int:
        """Position of a kernel in the execution order."""
        try:
            return self._kernel_position[name]
        except KeyError:
            raise KeyError(
                f"no kernel named {name!r} in application {self.name!r}"
            ) from None

    def object(self, name: str) -> DataObject:
        """Look up a data object by name."""
        try:
            return self.objects[name]
        except KeyError:
            raise KeyError(
                f"no object named {name!r} in application {self.name!r}"
            ) from None

    def producer_of(self, obj_name: str) -> Optional[Kernel]:
        """The kernel producing *obj_name*, or ``None`` for external data."""
        return self._producer_by_object.get(obj_name)

    def consumers_of(self, obj_name: str) -> Tuple[Kernel, ...]:
        """Kernels consuming *obj_name*, in execution order."""
        return self._consumers_by_object.get(obj_name, ())

    def external_inputs(self) -> Tuple[str, ...]:
        """Names of objects with no producer (loaded from external memory)."""
        produced = {name for kernel in self.kernels for name in kernel.outputs}
        ordered: List[str] = []
        seen = set()
        for kernel in self.kernels:
            for name in kernel.inputs:
                if name not in produced and name not in seen:
                    ordered.append(name)
                    seen.add(name)
        return tuple(ordered)

    def total_context_words(self) -> int:
        """Sum of context words over all kernels."""
        return sum(kernel.context_words for kernel in self.kernels)

    @classmethod
    def build(cls, name: str, *, total_iterations: int = 1) -> "ApplicationBuilder":
        """Start an :class:`ApplicationBuilder` for fluent construction."""
        return ApplicationBuilder(name, total_iterations=total_iterations)

    def __str__(self) -> str:
        return (
            f"Application({self.name!r}, {len(self.kernels)} kernels, "
            f"{len(self.objects)} objects, n={self.total_iterations})"
        )


class ApplicationBuilder:
    """Incrementally assemble an :class:`Application`.

    Example::

        app = (
            Application.build("demo", total_iterations=16)
            .data("d1", "0.5K")
            .data("d2", 256)
            .kernel("k1", context_words=32, cycles=400,
                    inputs=["d1"], outputs=["r12"], result_sizes={"r12": 128})
            .kernel("k2", context_words=24, cycles=300,
                    inputs=["d2", "r12"], outputs=["out"],
                    result_sizes={"out": 128})
            .final("out")
            .finish()
        )
    """

    def __init__(self, name: str, *, total_iterations: int = 1):
        self._name = name
        self._total_iterations = total_iterations
        self._kernels: List[Kernel] = []
        self._objects: Dict[str, DataObject] = {}
        self._finals: List[str] = []

    def data(self, name: str, size: SizeLike, **kwargs) -> "ApplicationBuilder":
        """Declare a data object (external input or result)."""
        if name in self._objects:
            raise ApplicationError(f"object {name!r} declared twice")
        self._objects[name] = DataObject.of(name, size, **kwargs)
        return self

    def kernel(
        self,
        name: str,
        *,
        context_words: int,
        cycles: int,
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
        result_sizes: Optional[Mapping[str, SizeLike]] = None,
        library_op: Optional[str] = None,
    ) -> "ApplicationBuilder":
        """Append a kernel to the execution sequence.

        ``result_sizes`` lets a kernel declare the sizes of the objects
        it produces inline, instead of calling :meth:`data` separately.
        """
        for obj_name, size in (result_sizes or {}).items():
            if obj_name not in outputs:
                raise ApplicationError(
                    f"kernel {name!r}: result_sizes mentions {obj_name!r} "
                    f"which is not in outputs"
                )
            self.data(obj_name, size)
        self._kernels.append(
            Kernel(
                name=name,
                context_words=context_words,
                cycles=cycles,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                library_op=library_op,
            )
        )
        return self

    def final(self, *names: str) -> "ApplicationBuilder":
        """Mark objects as final outputs (must be stored externally)."""
        self._finals.extend(names)
        return self

    def iterations(self, count: int) -> "ApplicationBuilder":
        """Set the total iteration count."""
        self._total_iterations = count
        return self

    def finish(self) -> Application:
        """Validate and return the immutable :class:`Application`."""
        return Application(
            name=self._name,
            kernels=tuple(self._kernels),
            objects=dict(self._objects),
            final_outputs=frozenset(self._finals),
            total_iterations=self._total_iterations,
        )
