"""Detection of data and results shared among clusters.

Section 4 of the paper: "The Complete Data Scheduler finds the shared
data and the shared results among clusters.  For these cases, ``D_i..j``
stands for the size of the data shared among clusters ``{C_i,...,C_j}``
which are assigned to the same FB set.  And ``R_i,j..k`` (shared
results) stands for the size of cluster ``i`` results that are input
data for clusters ``{C_j,...,C_k}`` which are assigned to the same FB
set."

Sharing is only exploitable **within one frame-buffer set**: keeping an
object in set 0 cannot save a transfer into set 1 (reuse among clusters
assigned to different sets is the paper's future work).  An external
datum consumed by clusters of both sets therefore yields up to two
independent :class:`SharedData` candidates, one per set, each requiring
at least two consuming clusters on that set.  A result produced in
cluster ``i`` can only be retained for consumers on cluster ``i``'s own
set; consumers on the other set always go through external memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.dataflow import DataflowInfo, ObjectClass

__all__ = ["SharedData", "SharedResult", "find_shared_data", "find_shared_results"]


@dataclass(frozen=True)
class SharedData:
    """External data consumed by several clusters of one FB set (``D_i..j``).

    Attributes:
        name: object name.
        size: words per iteration instance.
        fb_set: the frame-buffer set shared on.
        clusters: consuming cluster indices on that set, ascending.
        invariant: iteration-invariant contents — when kept it occupies
            one copy regardless of ``RF``.
    """

    name: str
    size: int
    fb_set: int
    clusters: Tuple[int, ...]
    invariant: bool = False

    @property
    def n_users(self) -> int:
        """``N`` in the paper's TF formula: clusters using the item."""
        return len(self.clusters)

    @property
    def transfers_avoided(self) -> int:
        """Loads avoided per iteration if kept: ``N - 1`` (the first
        consuming cluster still performs the one load)."""
        return self.n_users - 1

    @property
    def words_avoided(self) -> int:
        """Words of external traffic avoided per iteration if kept."""
        return self.size * self.transfers_avoided

    @property
    def span(self) -> Tuple[int, int]:
        """``(first, last)`` consuming cluster indices: the object must
        stay resident in the set for all same-set clusters in between."""
        return (self.clusters[0], self.clusters[-1])

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``D1..3`` (1-based cluster numbers)."""
        first, last = self.span
        return f"D{first + 1}..{last + 1}"

    def resident_for(self, cluster_index: int) -> bool:
        """True if, when kept, the object occupies the set while cluster
        *cluster_index* (on the same set) executes."""
        first, last = self.span
        return first <= cluster_index <= last


@dataclass(frozen=True)
class SharedResult:
    """A result retained for later clusters of the same set (``R_i,j..k``).

    Attributes:
        name: object name.
        size: words per iteration instance.
        fb_set: the producing (and consuming) frame-buffer set.
        producer_cluster: index of the producing cluster.
        consumer_clusters: same-set consuming cluster indices, ascending,
            all strictly greater than ``producer_cluster``.
        is_final: the object is additionally an application output and
            must be stored externally even when kept.
        store_required: the store to external memory happens even when
            the result is kept — because it is a final output and/or
            some consumer sits on the *other* FB set and must reload it
            from external memory.
    """

    name: str
    size: int
    fb_set: int
    producer_cluster: int
    consumer_clusters: Tuple[int, ...]
    is_final: bool = False
    store_required: bool = False

    @property
    def n_users(self) -> int:
        """``N`` in the paper's TF formula: consuming clusters."""
        return len(self.consumer_clusters)

    @property
    def transfers_avoided(self) -> int:
        """Transfers avoided per iteration if kept: ``N + 1`` — the store
        by the producer plus one reload per same-set consuming cluster.
        When the store happens anyway (final output, or a cross-set
        consumer reloads from external memory) only the ``N`` reloads
        are avoided."""
        if self.store_required:
            return self.n_users
        return self.n_users + 1

    @property
    def words_avoided(self) -> int:
        """Words of external traffic avoided per iteration if kept."""
        return self.size * self.transfers_avoided

    @property
    def span(self) -> Tuple[int, int]:
        """``(producer, last consumer)`` cluster indices."""
        return (self.producer_cluster, self.consumer_clusters[-1])

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``R3,5`` (1-based cluster numbers)."""
        consumers = ",".join(str(c + 1) for c in self.consumer_clusters)
        return f"R{self.producer_cluster + 1},{consumers}"

    def resident_for(self, cluster_index: int) -> bool:
        """True if, when kept, the object occupies the set while cluster
        *cluster_index* (on the same set) executes."""
        first, last = self.span
        return first <= cluster_index <= last


def find_shared_data(
    dataflow: DataflowInfo, *, include_cross_set: bool = False
) -> List[SharedData]:
    """Enumerate all :class:`SharedData` candidates.

    With ``include_cross_set=False`` (M1): one candidate per FB set with
    at least two consuming clusters on that set.  With
    ``include_cross_set=True`` (the paper's future-work architecture):
    one candidate per object with at least two consuming clusters on
    *any* sets, homed in the first consumer's set — clusters on the
    other set read it in place.

    Candidates are returned in a deterministic order: by FB set, then by
    first consuming cluster, then by name.
    """
    candidates: List[SharedData] = []
    for info in dataflow:
        if info.object_class is not ObjectClass.EXTERNAL_DATA:
            continue
        if include_cross_set:
            if len(info.consumer_clusters) >= 2:
                home_set = dataflow.clustering[info.consumer_clusters[0]].fb_set
                candidates.append(
                    SharedData(
                        name=info.name,
                        size=info.size,
                        fb_set=home_set,
                        clusters=info.consumer_clusters,
                        invariant=info.invariant,
                    )
                )
            continue
        for fb_set in (0, 1):
            consumers_on_set = tuple(
                c for c in info.consumer_clusters
                if dataflow.clustering[c].fb_set == fb_set
            )
            if len(consumers_on_set) >= 2:
                candidates.append(
                    SharedData(
                        name=info.name,
                        size=info.size,
                        fb_set=fb_set,
                        clusters=consumers_on_set,
                        invariant=info.invariant,
                    )
                )
    candidates.sort(key=lambda c: (c.fb_set, c.span[0], c.name))
    return candidates


def find_shared_results(
    dataflow: DataflowInfo, *, include_cross_set: bool = False
) -> List[SharedResult]:
    """Enumerate all :class:`SharedResult` candidates.

    With ``include_cross_set=False`` (M1) a result qualifies when at
    least one **later** cluster on the producer's own FB set consumes
    it; consumers on the other set are served through external memory
    regardless, which also forces the store.  With
    ``include_cross_set=True`` (future-work architecture) all later
    consumers are served from the producer's set, and the store is only
    forced for final outputs.
    """
    candidates: List[SharedResult] = []
    for info in dataflow:
        if info.object_class is not ObjectClass.SHARED_RESULT:
            continue
        producer_cluster = info.producer_cluster
        assert producer_cluster is not None
        fb_set = dataflow.clustering[producer_cluster].fb_set
        later_consumers = tuple(
            c for c in info.consumer_clusters if c > producer_cluster
        )
        if include_cross_set:
            if later_consumers:
                candidates.append(
                    SharedResult(
                        name=info.name,
                        size=info.size,
                        fb_set=fb_set,
                        producer_cluster=producer_cluster,
                        consumer_clusters=later_consumers,
                        is_final=info.is_final,
                        store_required=info.is_final,
                    )
                )
            continue
        same_set_consumers = tuple(
            c for c in later_consumers
            if dataflow.clustering[c].fb_set == fb_set
        )
        has_cross_set_consumer = any(
            dataflow.clustering[c].fb_set != fb_set for c in later_consumers
        )
        if same_set_consumers:
            candidates.append(
                SharedResult(
                    name=info.name,
                    size=info.size,
                    fb_set=fb_set,
                    producer_cluster=producer_cluster,
                    consumer_clusters=same_set_consumers,
                    is_final=info.is_final,
                    store_required=info.is_final or has_cross_set_consumer,
                )
            )
    candidates.sort(key=lambda c: (c.fb_set, c.producer_cluster, c.name))
    return candidates
