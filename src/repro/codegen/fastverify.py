"""Vectorized program verification over codegen templates.

The reference verifier (:mod:`repro.codegen.verifier`) replays every
emitted op against dict/set state — O(total ops) per program.  For a
template-compiled program the same replay collapses: visits of one
cluster differ only in their iteration window, and rounds repeat a
fixed cluster sequence, so the whole-program verdict is decided by

* an integer replay of CM-block residency and capacity over the visit
  sequence (parity and ``reuse_resident_contexts`` are the only
  per-visit state), plus
* an FB-set replay of **three sampled rounds** — the first (iteration
  0 is special: invariant operands read instance 0, which only round
  0's windows produce), one steady-state round, and the last (its
  window may be partial) — with per-object presence and external-store
  timelines held as NumPy bitmask arrays advanced template-by-template
  instead of op-by-op.

Every middle round is bitwise-identical in shape and state to the
sampled steady round (windows are disjoint, FB sets drain at round
end, and the external-store timeline a round queries is written either
by round 0 or within the round itself), so the sampled verdict equals
the full replay's — the batched per-kernel membership checks are exact
because presence bits are only ever added mid-visit, never removed.

The fast path only decides *clean or not*.  A clean program returns no
violations, byte-identical to the reference by construction; any
detected (or structurally unprovable) condition falls back to the
reference replay, which produces the identical ordered
:class:`ProgramViolation` list and first-violation error payloads.
The reference therefore remains the oracle — ``progequiv`` fuzz
campaigns and the golden equivalence suite hold the two together.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.codegen.program import Program
from repro.codegen.templated import ClusterTemplate, TemplateVisits
from repro.codegen.verifier import _survivors

__all__ = ["fast_violation_free"]


def fast_violation_free(program: Program) -> bool:
    """True when *program* is template-compiled and provably free of
    violations; False means "use the reference replay" (the program is
    either not templated, or has at least one violation)."""
    visits = program.visits
    if not isinstance(visits, TemplateVisits):
        return False
    templates = visits.templates
    flags = visits.context_flags
    schedule = program.schedule
    application = schedule.application
    total = application.total_iterations
    n_clusters = len(templates)
    count = len(visits)
    if count == 0 or n_clusters == 0:
        return False

    if not _context_state_clean(schedule, templates, flags, count):
        return False
    if not _final_store_totals_clean(application, templates):
        return False

    dataflow = schedule.dataflow
    kernel_inputs: Dict[str, Tuple[Tuple[str, bool], ...]] = {
        kernel.name: tuple(
            (in_name, dataflow[in_name].invariant)
            for in_name in kernel.inputs
        )
        for kernel in application.kernels
    }
    kernel_outputs = {
        kernel.name: kernel.outputs for kernel in application.kernels
    }
    external_names = set(application.external_inputs())
    keeps_by_name = {keep.name: keep for keep in schedule.keeps}
    survivors_memo: Dict[Tuple[int, int], Set[str]] = {}

    # Rounds 0, one steady-state round, and the last round decide the
    # FB verdict for every round (module docstring).
    rounds = schedule.rounds
    sampled = sorted({0, min(1, rounds - 1), rounds - 1})
    stored: Dict[str, np.ndarray] = {}
    for round_index in sampled:
        start = round_index * schedule.rf
        stop = start + schedule.iterations_in_round(round_index)
        if not _replay_round(
            templates, start, stop, total, stored,
            kernel_inputs, kernel_outputs, external_names,
            keeps_by_name, survivors_memo, application, schedule,
        ):
            return False
    return True


def _context_state_clean(
    schedule,
    templates: Tuple[ClusterTemplate, ...],
    flags: Optional[Tuple[bool, ...]],
    count: int,
) -> bool:
    """CM capacity and residency over the full visit sequence: every
    refill must fit the block, and a visit that skips its context loads
    must find its own cluster still resident."""
    n_clusters = len(templates)
    capacity = schedule.context_block_words
    if not capacity:
        # Mirror the reference's derived bound: the largest context
        # volume any visit actually loads.
        if flags is None:
            loaded = [template.context_total for template in templates]
        else:
            loaded = [
                templates[index % n_clusters].context_total
                for index in range(count)
                if flags[index]
            ]
        capacity = max(loaded, default=0) or 1
    block_holds: List[Optional[int]] = [None, None]
    for index in range(count):
        template = templates[index % n_clusters]
        block = index % 2
        if flags is None or flags[index]:
            if template.context_total > capacity:
                return False
            block_holds[block] = template.cluster_index
        elif block_holds[block] != template.cluster_index:
            return False
    return True


def _final_store_totals_clean(
    application, templates: Tuple[ClusterTemplate, ...]
) -> bool:
    """Every final output must be stored exactly once per iteration.
    Templates store their full window every round, so the per-iteration
    count is simply the number of store entries naming the object."""
    store_counts: Dict[str, int] = {}
    for template in templates:
        for name, _words in template.stores:
            store_counts[name] = store_counts.get(name, 0) + 1
    return all(
        store_counts.get(name, 0) == 1
        for name in application.final_outputs
    )


def _replay_round(
    templates: Tuple[ClusterTemplate, ...],
    start: int,
    stop: int,
    total: int,
    stored: Dict[str, np.ndarray],
    kernel_inputs: Dict[str, Tuple[Tuple[str, bool], ...]],
    kernel_outputs: Dict[str, Tuple[str, ...]],
    external_names: Set[str],
    keeps_by_name: Dict[str, object],
    survivors_memo: Dict[Tuple[int, int], Set[str]],
    application,
    schedule,
) -> bool:
    """Replay one round's visits at template granularity.  Returns
    False on the first condition the reference would flag."""
    present: List[Dict[str, np.ndarray]] = [{}, {}]
    for template in templates:
        fb_set = template.fb_set
        in_set = present[fb_set]

        # Data loads: redundant-load and load-of-never-stored checks.
        for name, _words, fixed in template.loads:
            # ``fixed`` is the template's invariant marker: truthy
            # ``(0,)`` pins the object to instance 0.
            lo, hi = (0, 1) if fixed else (start, stop)
            arr = in_set.get(name)
            if arr is not None and arr[lo:hi].any():
                return False
            if name not in external_names:
                timeline = stored.get(name)
                if timeline is None or not timeline[lo:hi].all():
                    return False
            if arr is None:
                arr = in_set[name] = np.zeros(total, dtype=bool)
            arr[lo:hi] = True

        # Compute: operand presence.  Presence bits are only added
        # during a visit, so checking a kernel's whole window before
        # publishing its outputs matches the reference's per-iteration
        # interleaving exactly (a kernel can never satisfy its own
        # window mid-flight).
        for kernel, _cycles in template.compute:
            for in_name, invariant in kernel_inputs[kernel]:
                lo, hi = (0, 1) if invariant else (start, stop)
                arr = in_set.get(in_name)
                if arr is not None and arr[lo:hi].all():
                    continue
                keep = keeps_by_name.get(in_name)
                if keep is None or keep.fb_set == fb_set:
                    return False
                other = present[keep.fb_set].get(in_name)
                if other is None:
                    return False
                if arr is None:
                    if not other[lo:hi].all():
                        return False
                elif not (arr[lo:hi] | other[lo:hi]).all():
                    return False
            for out_name in kernel_outputs[kernel]:
                arr = in_set.get(out_name)
                if arr is None:
                    arr = in_set[out_name] = np.zeros(total, dtype=bool)
                arr[start:stop] = True

        # Stores: presence and external-data checks, then publish to
        # the store timeline later loads consult.
        for name, _words in template.stores:
            arr = in_set.get(name)
            if arr is None or not arr[start:stop].all():
                return False
            if application.producer_of(name) is None:
                return False
            timeline = stored.get(name)
            if timeline is None:
                timeline = stored[name] = np.zeros(total, dtype=bool)
            timeline[start:stop] = True

        # Visit end: only kept survivors stay resident.
        memo_key = (template.cluster_index, fb_set)
        survivors = survivors_memo.get(memo_key)
        if survivors is None:
            survivors = _survivors(schedule, template.cluster_index, fb_set)
            survivors_memo[memo_key] = survivors
        present[fb_set] = {
            name: arr for name, arr in in_set.items() if name in survivors
        }
    return True
