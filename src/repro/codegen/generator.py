"""Lowering a :class:`Schedule` to a :class:`Program`.

For every round and cluster the generator emits one :class:`VisitOps`:

* context loads for all of the cluster's kernels (one CM block per
  visit, alternating);
* data loads for each object in the cluster plan's ``loads``, one per
  iteration of the round.  Kept inputs produce **no** load — that is
  the Complete Data Scheduler's saving made concrete;
* kernel launches in loop-fission order (kernel-outer,
  iteration-inner);
* stores for each object in the plan's ``stores``, one per iteration.

Loads are emitted in first-use order (shared data with the most
distant consumer first, then inputs by their last consuming kernel,
mirroring the allocator's placement order) so the DMA delivers data in
the order the cluster needs it.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro.codegen.ops import LoadContext, LoadData, RunKernel, StoreData, Visit, VisitOps
from repro.codegen.program import Program
from repro.errors import CodegenError
from repro.schedule.plan import Schedule

__all__ = ["generate_program", "cluster_codegen_facts"]

ENGINES = ("auto", "templated", "reference")


def generate_program(
    schedule: Schedule,
    *,
    reuse_resident_contexts: bool = False,
    engine: str = "auto",
) -> Program:
    """Lower *schedule* into an executable :class:`Program`.

    Args:
        schedule: the schedule to lower.
        reuse_resident_contexts: skip a visit's context loads when its
            CM block still holds exactly that cluster's contexts from
            two visits ago (possible for applications with one or two
            clusters, where the blocks never get displaced).  Off by
            default — the paper's accounting assumes contexts are
            loaded once per visit (``n/RF`` times per kernel).
        engine: ``"templated"`` compiles each cluster once and stamps
            visits lazily (:mod:`repro.codegen.templated`);
            ``"reference"`` emits every op eagerly.  ``"auto"`` (the
            default) selects the templated backend — the two are
            byte-identical (enforced by the equivalence suite and the
            ``progequiv`` fuzz oracle).
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown codegen engine {engine!r}; expected one of {ENGINES}"
        )
    if engine != "reference":
        from repro.codegen.templated import generate_templated_program

        return generate_templated_program(
            schedule, reuse_resident_contexts=reuse_resident_contexts
        )

    visits: List[VisitOps] = []
    clustering = schedule.clustering
    application = schedule.application
    dataflow = schedule.dataflow

    # Round-invariant per-cluster facts, computed once.  Only the visit
    # index, the iteration window and the CM-block parity change between
    # a cluster's visits.
    facts: Dict[int, Tuple[Tuple[str, ...], Tuple[Tuple[LoadContext, ...], ...]]] = {
        cluster.index: cluster_codegen_facts(schedule, cluster)
        for cluster in clustering
    }
    load_order = {index: fact[0] for index, fact in facts.items()}

    visit_index = 0
    next_iteration = 0
    block_holds: List[Optional[int]] = [None, None]  # cluster per CM block
    for round_index in range(schedule.rounds):
        round_iterations = schedule.iterations_in_round(round_index)
        iterations = tuple(
            range(next_iteration, next_iteration + round_iterations)
        )
        next_iteration += round_iterations
        for cluster in clustering:
            plan = schedule.plan_for(cluster.index)
            visit = Visit(
                index=visit_index,
                round_index=round_index,
                cluster_index=cluster.index,
                fb_set=cluster.fb_set,
                iterations=iterations,
            )
            visit_index += 1

            if (
                reuse_resident_contexts
                and block_holds[visit.cm_block] == cluster.index
            ):
                context_loads = ()
            else:
                context_loads = facts[cluster.index][1][visit.cm_block]
                block_holds[visit.cm_block] = cluster.index

            # Leaf ops are built with ``tuple.__new__`` to skip the
            # validating constructors: sizes, cycles and iteration
            # indices here come from already-validated Kernel /
            # DataflowInfo objects and ``range``.
            fb_set = cluster.fb_set
            new = tuple.__new__
            data_loads = []
            for name in load_order[cluster.index]:
                info = dataflow[name]
                size = info.size
                if info.invariant:
                    # One shared copy serves every concurrent iteration;
                    # instance 0 is the conventional index.
                    data_loads.append(
                        new(LoadData, (name, 0, size, fb_set))
                    )
                else:
                    data_loads.extend(
                        new(LoadData, (name, iteration, size, fb_set))
                        for iteration in iterations
                    )
            data_loads = tuple(data_loads)

            compute = tuple(
                new(RunKernel, (kernel.name, iteration, kernel.cycles, fb_set))
                for kernel in clustering.kernels_of(cluster)
                for iteration in iterations
            )
            if not compute:
                raise CodegenError(
                    f"cluster {cluster.name} generates no compute"
                )

            stores = tuple(
                new(StoreData, (name, iteration, dataflow[name].size, fb_set))
                for name in plan.stores
                for iteration in iterations
            )

            visits.append(
                VisitOps(
                    visit=visit,
                    context_loads=context_loads,
                    data_loads=data_loads,
                    compute=compute,
                    stores=stores,
                )
            )
    return Program(schedule=schedule, visits=tuple(visits))


# Cluster codegen facts (load order + per-parity context loads) are
# pure functions of the cluster plan, the keep set and the dataflow.
# They are memoized so repeated ``generate_program`` calls over the
# same workload — warm corpus replays, service followers, the three
# schedulers of one comparison sharing an application/clustering —
# skip the O(kernels x loads) ordering work even on the reference
# path.  Keys carry content (plan loads, keeps, kernel names) plus the
# identity of the application/clustering objects; weak references
# guard against id() reuse after garbage collection.
_FACTS_MEMO: Dict[tuple, tuple] = {}
_FACTS_MEMO_CAP = 4096


def cluster_codegen_facts(
    schedule: Schedule, cluster
) -> Tuple[Tuple[str, ...], Tuple[Tuple[LoadContext, ...], ...]]:
    """``(load_order, context_loads_per_cm_block)`` for one cluster."""
    plan = schedule.plan_for(cluster.index)
    key = (
        cluster.index,
        cluster.fb_set,
        cluster.kernel_names,
        plan.loads,
        schedule.keeps,
        id(schedule.application),
        id(schedule.clustering),
    )
    entry = _FACTS_MEMO.get(key)
    if entry is not None:
        app_ref, clustering_ref, facts = entry
        if (
            app_ref() is schedule.application
            and clustering_ref() is schedule.clustering
        ):
            return facts
    order = _load_order(schedule, cluster)
    context_loads = tuple(
        tuple(
            LoadContext(
                kernel=kernel.name,
                words=kernel.context_words,
                cm_block=block,
            )
            for kernel in schedule.clustering.kernels_of(cluster)
        )
        for block in (0, 1)
    )
    facts = (order, context_loads)
    if len(_FACTS_MEMO) >= _FACTS_MEMO_CAP:
        _FACTS_MEMO.clear()
    _FACTS_MEMO[key] = (
        weakref.ref(schedule.application),
        weakref.ref(schedule.clustering),
        facts,
    )
    return facts


def _load_order(schedule: Schedule, cluster) -> Tuple[str, ...]:
    """Plan loads ordered the way the allocator places them: kept shared
    data (most distant last consumer first), then other inputs from the
    last kernel's down to the first kernel's."""
    plan = schedule.plan_for(cluster.index)
    dataflow = schedule.dataflow
    kept_by_name = {
        keep.name: keep
        for keep in schedule.keeps
        if keep.fb_set == cluster.fb_set
    }
    kept_first = [
        name for name in plan.loads
        if name in kept_by_name
        and getattr(kept_by_name[name], "clusters", (None,))[0] == cluster.index
    ]
    kept_first.sort(key=lambda name: (-kept_by_name[name].span[1], name))
    rest = [name for name in plan.loads if name not in kept_first]
    ordered_rest: List[str] = []
    for kernel_name in reversed(cluster.kernel_names):
        for name in rest:
            if name in ordered_rest:
                continue
            if dataflow.last_use_in_cluster(name, cluster.index) == kernel_name:
                ordered_rest.append(name)
    leftovers = [name for name in rest if name not in ordered_rest]
    return tuple(kept_first + ordered_rest + leftovers)
