"""Code generation: lowering a schedule to an op-level program.

The code generator plays the role of the last stage of the paper's
compilation framework (Figure 2): it turns a :class:`Schedule` into an
explicit sequence of *visits* — (round, cluster) pairs — each carrying
its context loads, data loads, kernel launches and result stores.  The
program is what the event-driven simulator executes and what the static
verifier checks.
"""

from repro.codegen.fastverify import fast_violation_free
from repro.codegen.generator import generate_program
from repro.codegen.ops import (
    LoadContext,
    LoadData,
    RunKernel,
    StoreData,
    Visit,
    VisitOps,
)
from repro.codegen.program import Program
from repro.codegen.templated import TemplateVisits, generate_templated_program
from repro.codegen.verifier import (
    ProgramViolation,
    collect_program_violations,
    iter_program_violations,
    verify_program,
)

__all__ = [
    "LoadContext",
    "LoadData",
    "Program",
    "ProgramViolation",
    "RunKernel",
    "StoreData",
    "TemplateVisits",
    "Visit",
    "VisitOps",
    "collect_program_violations",
    "fast_violation_free",
    "generate_program",
    "generate_templated_program",
    "iter_program_violations",
    "verify_program",
]
