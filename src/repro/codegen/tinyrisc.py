"""TinyRISC control-program emission.

"MorphoSys operation is controlled by a RISC processor" (paper,
section 2).  In the real system the TinyRISC core issues the special
instructions that start DMA bursts (``DMAC``: external memory <-> FB or
CM), select the active context block and launch RC-array execution
(``CBCAST``-style broadcast of a context).  This module lowers an
op-level :class:`~repro.codegen.program.Program` into that control
stream: a linear list of :class:`ControlInstruction` with symbolic
external-memory addresses resolved by a tiny linker, round loops
expressed explicitly, and an assembly-like textual rendering.

The emitted program is *checkable*: :func:`lower_to_tinyrisc` also
returns per-instruction word counts that must (and are tested to)
match the op-level program's traffic exactly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.program import Program
from repro.errors import CodegenError

__all__ = [
    "ControlOp",
    "ControlInstruction",
    "TinyRiscProgram",
    "TinyRiscInterpreter",
    "InterpreterStats",
    "lower_to_tinyrisc",
]


class ControlOp(enum.Enum):
    """TinyRISC special instructions (modelled subset)."""

    #: DMA burst: external memory -> frame-buffer set.
    LDFB = "ldfb"
    #: DMA burst: frame-buffer set -> external memory.
    STFB = "stfb"
    #: DMA burst: external memory -> context-memory block.
    LDCTXT = "ldctxt"
    #: Launch kernel execution from a context-memory block.
    EXEC = "exec"
    #: Wait until all issued DMA bursts completed (synchronisation).
    DSYNC = "dsync"
    #: Wait until RC-array execution completed.
    ESYNC = "esync"
    #: Comment/label pseudo-instruction for readability.
    LABEL = "label"


@dataclass(frozen=True)
class ControlInstruction:
    """One TinyRISC special instruction.

    Attributes:
        op: the instruction.
        target: object or kernel name the instruction refers to.
        address: resolved external-memory word address (transfers only).
        words: transfer size in words (transfers only).
        fb_set: frame-buffer set operand (FB transfers / EXEC).
        cm_block: context-memory block operand (LDCTXT / EXEC).
        iteration: global iteration index (data transfers / EXEC).
        comment: free-form annotation.
    """

    op: ControlOp
    target: str = ""
    address: Optional[int] = None
    words: int = 0
    fb_set: Optional[int] = None
    cm_block: Optional[int] = None
    iteration: Optional[int] = None
    comment: str = ""

    def render(self) -> str:
        """Assembly-like textual form."""
        if self.op is ControlOp.LABEL:
            return f"{self.target}:"
        parts = [self.op.value]
        if self.op in (ControlOp.LDFB, ControlOp.STFB):
            parts.append(f"fb{self.fb_set}")
            parts.append(f"0x{self.address:06x}")
            parts.append(f"#{self.words}")
            parts.append(f"; {self.target}[{self.iteration}]")
        elif self.op is ControlOp.LDCTXT:
            parts.append(f"cm{self.cm_block}")
            parts.append(f"0x{self.address:06x}")
            parts.append(f"#{self.words}")
            parts.append(f"; {self.target}")
        elif self.op is ControlOp.EXEC:
            parts.append(f"cm{self.cm_block}")
            parts.append(f"fb{self.fb_set}")
            parts.append(f"; {self.target}[{self.iteration}]")
        if self.comment:
            parts.append(f"; {self.comment}")
        return "    " + " ".join(parts)


@dataclass(frozen=True)
class TinyRiscProgram:
    """A lowered control program plus its memory map."""

    instructions: Tuple[ControlInstruction, ...]
    #: (object name, iteration) -> external word address.
    data_map: Dict[Tuple[str, int], int]
    #: kernel name -> external address of its context words.
    context_map: Dict[str, int]

    def render(self) -> str:
        """Full assembly listing."""
        return "\n".join(ins.render() for ins in self.instructions)

    def count(self, op: ControlOp) -> int:
        """Number of instructions of one kind."""
        return sum(1 for ins in self.instructions if ins.op is op)

    @property
    def data_words_loaded(self) -> int:
        return sum(
            ins.words for ins in self.instructions
            if ins.op is ControlOp.LDFB
        )

    @property
    def data_words_stored(self) -> int:
        return sum(
            ins.words for ins in self.instructions
            if ins.op is ControlOp.STFB
        )

    @property
    def context_words_loaded(self) -> int:
        return sum(
            ins.words for ins in self.instructions
            if ins.op is ControlOp.LDCTXT
        )


def _build_memory_map(program: Program):
    """Assign external-memory word addresses: contexts first, then all
    data/result instances in name order (deterministic layout)."""
    application = program.schedule.application
    dataflow = program.schedule.dataflow
    cursor = 0
    context_map: Dict[str, int] = {}
    for kernel in application.kernels:
        context_map[kernel.name] = cursor
        cursor += kernel.context_words
    data_map: Dict[Tuple[str, int], int] = {}
    total = application.total_iterations
    for name in sorted(application.objects):
        info = dataflow[name]
        instances = 1 if info.invariant else total
        for iteration in range(instances):
            data_map[(name, iteration)] = cursor
            cursor += info.size
    return data_map, context_map


def lower_to_tinyrisc(program: Program) -> TinyRiscProgram:
    """Lower an op-level program to the TinyRISC control stream.

    Per visit: a label, the context loads, the data loads, one DSYNC
    (transfers must land before compute), the kernel launches, one
    ESYNC, then the stores.  The simulator's overlap comes from the
    hardware executing DMA bursts asynchronously; the control stream
    only encodes ordering constraints, which is why the sync points sit
    where the verifier's presence checks are.
    """
    data_map, context_map = _build_memory_map(program)
    instructions: List[ControlInstruction] = []
    for ops in program.visits:
        visit = ops.visit
        instructions.append(
            ControlInstruction(
                op=ControlOp.LABEL,
                target=(
                    f"visit_{visit.index}_round{visit.round_index}"
                    f"_cl{visit.cluster_index + 1}"
                ),
            )
        )
        for load in ops.context_loads:
            instructions.append(
                ControlInstruction(
                    op=ControlOp.LDCTXT,
                    target=load.kernel,
                    address=context_map[load.kernel],
                    words=load.words,
                    cm_block=load.cm_block,
                )
            )
        for load in ops.data_loads:
            key = (load.name, load.iteration)
            if key not in data_map:
                raise CodegenError(
                    f"no external address for {load.name}#{load.iteration}"
                )
            instructions.append(
                ControlInstruction(
                    op=ControlOp.LDFB,
                    target=load.name,
                    address=data_map[key],
                    words=load.words,
                    fb_set=load.fb_set,
                    iteration=load.iteration,
                )
            )
        instructions.append(ControlInstruction(op=ControlOp.DSYNC))
        for run in ops.compute:
            instructions.append(
                ControlInstruction(
                    op=ControlOp.EXEC,
                    target=run.kernel,
                    fb_set=run.fb_set,
                    cm_block=visit.cm_block,
                    iteration=run.iteration,
                )
            )
        instructions.append(ControlInstruction(op=ControlOp.ESYNC))
        for store in ops.stores:
            key = (store.name, store.iteration)
            if key not in data_map:
                raise CodegenError(
                    f"no external address for {store.name}#{store.iteration}"
                )
            instructions.append(
                ControlInstruction(
                    op=ControlOp.STFB,
                    target=store.name,
                    address=data_map[key],
                    words=store.words,
                    fb_set=store.fb_set,
                    iteration=store.iteration,
                )
            )
    return TinyRiscProgram(
        instructions=tuple(instructions),
        data_map=data_map,
        context_map=context_map,
    )


@dataclass
class InterpreterStats:
    """Traffic observed while interpreting a control program."""

    instructions_executed: int = 0
    data_words_loaded: int = 0
    data_words_stored: int = 0
    context_words_loaded: int = 0
    kernels_launched: int = 0


class TinyRiscInterpreter:
    """Executes a :class:`TinyRiscProgram` against an abstract machine
    state: two CM blocks and an external-memory address map.

    The interpreter enforces the control-stream contract independently
    of the op-level verifier:

    * ``EXEC`` requires the named kernel's contexts resident in the
      named CM block (loaded by an earlier ``LDCTXT`` and not displaced);
    * ``LDCTXT`` displaces the block's previous contents when a new
      cluster's contexts arrive, and must not overflow the block;
    * ``LDFB``/``STFB`` addresses must match the program's memory map
      (no wild transfers), and sizes must match the mapped object.

    Tests cross-check the interpreter's traffic totals against the
    event-driven simulator's — the lowering loses nothing.
    """

    def __init__(self, program: TinyRiscProgram, *, block_words: int = 0):
        self.program = program
        self.block_words = block_words
        self._address_to_data = {
            address: key for key, address in program.data_map.items()
        }
        self._address_to_context = {
            address: kernel for kernel, address in program.context_map.items()
        }

    def run(self) -> InterpreterStats:
        """Interpret the whole program; raise :class:`CodegenError` on
        any contract violation."""
        stats = InterpreterStats()
        block_kernels = [dict(), dict()]  # kernel -> words, per block
        current_label = "<start>"
        refilled_this_visit = [False, False]
        for instruction in self.program.instructions:
            stats.instructions_executed += 1
            if instruction.op is ControlOp.LABEL:
                current_label = instruction.target
                refilled_this_visit = [False, False]
                continue
            if instruction.op is ControlOp.LDCTXT:
                kernel = self._address_to_context.get(instruction.address)
                if kernel != instruction.target:
                    raise CodegenError(
                        f"{current_label}: LDCTXT address "
                        f"0x{instruction.address:x} does not map to "
                        f"{instruction.target!r}"
                    )
                block = instruction.cm_block
                # A visit refills its block wholesale: the first LDCTXT
                # of a visit evicts the block's previous cluster (the
                # whole-block reconfiguration model shared with the
                # verifier and the ContextMemory component).
                if not refilled_this_visit[block]:
                    block_kernels[block] = {}
                    refilled_this_visit[block] = True
                block_kernels[block][instruction.target] = instruction.words
                if self.block_words and sum(
                    block_kernels[block].values()
                ) > self.block_words:
                    raise CodegenError(
                        f"{current_label}: CM block {block} overflows"
                    )
                stats.context_words_loaded += instruction.words
                continue
            if instruction.op is ControlOp.EXEC:
                if instruction.target not in block_kernels[instruction.cm_block]:
                    raise CodegenError(
                        f"{current_label}: EXEC {instruction.target!r} "
                        f"without contexts in cm{instruction.cm_block}"
                    )
                stats.kernels_launched += 1
                continue
            if instruction.op in (ControlOp.LDFB, ControlOp.STFB):
                key = self._address_to_data.get(instruction.address)
                if key is None or key[0] != instruction.target:
                    raise CodegenError(
                        f"{current_label}: {instruction.op.value} address "
                        f"0x{instruction.address:x} does not map to "
                        f"{instruction.target!r}"
                    )
                if instruction.op is ControlOp.LDFB:
                    stats.data_words_loaded += instruction.words
                else:
                    stats.data_words_stored += instruction.words
                continue
            # DSYNC / ESYNC are pure ordering barriers here.
        return stats
