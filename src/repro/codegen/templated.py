"""Template-compiled program generation.

Visits are round-invariant per cluster: between two visits of the same
cluster only the visit index, the iteration window and the CM-block
parity change.  The reference generator (:mod:`repro.codegen.generator`)
still re-emits every leaf op ``rounds x clusters`` times; this backend
compiles each cluster **once** into a :class:`ClusterTemplate` — load
order, context loads, kernel launches and stores as small per-cluster
tables — and stamps the template per visit on demand.

``generate_templated_program`` returns an ordinary :class:`Program`
whose ``visits`` field is a :class:`TemplateVisits` lazy sequence:
downstream consumers (simulator, verifier, hazard IR, tests that slice
``program.visits``) see exactly the tuple of :class:`VisitOps` the
reference generator would have produced — materialized on first access
and byte-identical (the golden suite and the ``progequiv`` fuzz oracle
enforce this).  Consumers that never touch the ops — notably the fast
verifier (:mod:`repro.codegen.fastverify`) — read the templates
directly and skip materialization entirely.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import List, Optional, Tuple

from repro.codegen.ops import LoadContext, LoadData, RunKernel, StoreData, Visit, VisitOps
from repro.codegen.program import Program
from repro.errors import CodegenError
from repro.schedule.plan import Schedule

__all__ = ["ClusterTemplate", "TemplateVisits", "generate_templated_program"]


class ClusterTemplate:
    """Round-invariant codegen facts for one cluster.

    Attributes:
        cluster_index: the cluster this template stamps visits for.
        fb_set: frame-buffer set the cluster executes from.
        context_loads: the context-load op tuple per CM block parity
            (index 0 and 1) — complete, validated ops shared by every
            stamped visit of matching parity.
        context_total: context words one full refill moves.
        loads: ``(name, words, fixed_iterations)`` per planned load, in
            the allocator's placement order; ``fixed_iterations`` is
            ``(0,)`` for iteration-invariant objects (always moved as
            instance 0, truthy) and ``None`` for per-iteration objects
            (falsy — stamp over the visit's window).
        compute: ``(kernel_name, cycles)`` per kernel, execution order.
        stores: ``(name, words)`` per planned store.
    """

    __slots__ = (
        "cluster_index", "fb_set", "context_loads", "context_total",
        "loads", "compute", "stores",
    )

    def __init__(
        self,
        cluster_index: int,
        fb_set: int,
        context_loads: Tuple[Tuple[LoadContext, ...], Tuple[LoadContext, ...]],
        loads: Tuple[Tuple[str, int, Optional[Tuple[int, ...]]], ...],
        compute: Tuple[Tuple[str, int], ...],
        stores: Tuple[Tuple[str, int], ...],
    ) -> None:
        self.cluster_index = cluster_index
        self.fb_set = fb_set
        self.context_loads = context_loads
        self.context_total = sum(load.words for load in context_loads[0])
        self.loads = loads
        self.compute = compute
        self.stores = stores


def build_templates(schedule: Schedule) -> Tuple[ClusterTemplate, ...]:
    """Compile every cluster of *schedule* into its template, in
    clustering order.  Raises :class:`CodegenError` exactly where the
    reference generator would (a cluster with no compute)."""
    from repro.codegen.generator import cluster_codegen_facts

    dataflow = schedule.dataflow
    templates: List[ClusterTemplate] = []
    for cluster in schedule.clustering:
        if not cluster.kernel_names:
            raise CodegenError(f"cluster {cluster.name} generates no compute")
        plan = schedule.plan_for(cluster.index)
        load_order, context_loads = cluster_codegen_facts(schedule, cluster)
        loads = tuple(
            (
                name,
                dataflow[name].size,
                (0,) if dataflow[name].invariant else None,
            )
            for name in load_order
        )
        compute = tuple(
            (kernel.name, kernel.cycles)
            for kernel in schedule.clustering.kernels_of(cluster)
        )
        stores = tuple(
            (name, dataflow[name].size) for name in plan.stores
        )
        templates.append(
            ClusterTemplate(
                cluster.index, cluster.fb_set, context_loads,
                loads, compute, stores,
            )
        )
    return tuple(templates)


def _context_flags(
    schedule: Schedule, n_clusters: int, reuse: bool
) -> Optional[Tuple[bool, ...]]:
    """Per-visit "this visit loads contexts" flags, or ``None`` when
    every visit does (the default accounting)."""
    if not reuse:
        return None
    flags: List[bool] = []
    block_holds: List[Optional[int]] = [None, None]
    for index in range(schedule.rounds * n_clusters):
        cluster_index = index % n_clusters
        block = index % 2
        if block_holds[block] == cluster_index:
            flags.append(False)
        else:
            flags.append(True)
            block_holds[block] = cluster_index
    return tuple(flags)


class TemplateVisits(Sequence):
    """Lazy visit sequence of a template-compiled program.

    Behaves exactly like the tuple of :class:`VisitOps` the reference
    generator produces — equality, hashing, indexing and slicing all
    materialize on demand and compare by value, so ``Program`` equality
    across engines holds.  Slices return plain tuples (callers splice
    mutated visits back together as tuples).
    """

    __slots__ = ("schedule", "templates", "context_flags", "_count", "_ops")

    def __init__(
        self,
        schedule: Schedule,
        templates: Tuple[ClusterTemplate, ...],
        context_flags: Optional[Tuple[bool, ...]],
    ) -> None:
        self.schedule = schedule
        self.templates = templates
        self.context_flags = context_flags
        self._count = schedule.rounds * len(templates)
        self._ops: Optional[Tuple[VisitOps, ...]] = None

    # -- materialization ---------------------------------------------------

    def materialize(self) -> Tuple[VisitOps, ...]:
        """The full op tuple, stamped from the templates (cached)."""
        ops = self._ops
        if ops is None:
            ops = self._ops = self._stamp()
            # The templates have served their purpose; the cached tuple
            # now answers every access.
        return ops

    def _stamp(self) -> Tuple[VisitOps, ...]:
        # Stamping is correct by construction — windows are non-empty
        # ascending ranges and the template tables are pre-validated —
        # so the frozen-dataclass constructors (generated __init__,
        # per-field object.__setattr__, __post_init__ re-validation)
        # are bypassed with direct __dict__ assignment, and the leaf
        # ops skip their validating __new__ the same way.
        schedule = self.schedule
        templates = self.templates
        flags = self.context_flags
        new = tuple.__new__
        obj_new = object.__new__
        visits: List[VisitOps] = []
        append = visits.append
        visit_index = 0
        next_iteration = 0
        for round_index in range(schedule.rounds):
            round_iterations = schedule.iterations_in_round(round_index)
            iterations = tuple(
                range(next_iteration, next_iteration + round_iterations)
            )
            next_iteration += round_iterations
            for template in templates:
                fb_set = template.fb_set
                if flags is not None and not flags[visit_index]:
                    context_loads: Tuple[LoadContext, ...] = ()
                else:
                    context_loads = template.context_loads[visit_index % 2]
                visit = obj_new(Visit)
                # Frozen dataclasses veto __setattr__, but mutating
                # the instance dict directly is allowed — and skips
                # the generated __init__ entirely.
                visit.__dict__.update(
                    index=visit_index,
                    round_index=round_index,
                    cluster_index=template.cluster_index,
                    fb_set=fb_set,
                    iterations=iterations,
                )
                visit_index += 1
                ops = obj_new(VisitOps)
                ops.__dict__.update(
                    visit=visit,
                    context_loads=context_loads,
                    data_loads=tuple([
                        new(LoadData, (name, iteration, size, fb_set))
                        for name, size, fixed in template.loads
                        for iteration in (fixed or iterations)
                    ]),
                    compute=tuple([
                        new(RunKernel, (kernel, iteration, cycles, fb_set))
                        for kernel, cycles in template.compute
                        for iteration in iterations
                    ]),
                    stores=tuple([
                        new(StoreData, (name, iteration, size, fb_set))
                        for name, size in template.stores
                        for iteration in iterations
                    ]),
                )
                append(ops)
        return tuple(visits)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return iter(self.materialize())

    def __getitem__(self, index):
        # Slices return plain tuples: callers splice visit tuples
        # together (``visits[:i] + (mutated,) + visits[i + 1:]``).
        return self.materialize()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TemplateVisits):
            return self.materialize() == other.materialize()
        if isinstance(other, tuple):
            return self.materialize() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash(self.materialize())

    def __repr__(self) -> str:
        return repr(self.materialize())

    def __reduce__(self):
        # Pickle (and deepcopy) as the plain tuple: transported
        # programs are indistinguishable from reference ones.
        return (tuple, (self.materialize(),))


def generate_templated_program(
    schedule: Schedule, *, reuse_resident_contexts: bool = False
) -> Program:
    """Template-compiled equivalent of the reference
    :func:`repro.codegen.generator.generate_program`."""
    templates = build_templates(schedule)
    flags = _context_flags(schedule, len(templates), reuse_resident_contexts)
    return Program(
        schedule=schedule,
        visits=TemplateVisits(schedule, templates, flags),
    )
