"""Static verification of generated programs.

The verifier replays a program symbolically, tracking frame-buffer-set
contents and context-memory residency across visits, and rejects any
program that:

* launches a kernel whose contexts are not in the visit's CM block, or
  overflows a CM block;
* launches a kernel before one of its input instances is present in
  the executing FB set (use-before-load — the bug class retention
  decisions could introduce);
* stores an instance that is not present, or was never produced;
* fails to store some final output instance, or stores one twice;
* skips or duplicates an iteration of any kernel.

Two entry points share one replay:

* :func:`verify_program` raises :class:`ProgramVerificationError` on
  the **first** violation (the historical contract — callers gate on
  it before simulation);
* :func:`collect_program_violations` replays the whole program and
  returns every violation as a structured :class:`ProgramViolation`,
  which the lint framework (:mod:`repro.lint`) converts into
  diagnostics with rule codes ``PROG001``-``PROG006``.

A program that passes the verifier is guaranteed to be *functionally*
executable; the simulator then adds timing (and, in functional mode,
actually computes values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Set, Tuple

from repro.codegen.program import Program
from repro.errors import ProgramVerificationError

__all__ = [
    "ProgramViolation",
    "verify_program",
    "collect_program_violations",
    "iter_program_violations",
]


@dataclass(frozen=True)
class ProgramViolation:
    """One invariant violation found while replaying a program.

    Attributes:
        code: lint rule code (``PROG001``-``PROG006``, see
            ``docs/lint_rules.md``).
        message: human-readable description (identical wording to the
            historical :class:`ProgramVerificationError` messages).
        location: where in the program, e.g. ``"visit 7"``.
        cost_words: words of traffic or capacity implicated.
        details: JSON-safe extra facts.
    """

    code: str
    message: str
    location: str
    cost_words: int = 0
    details: Mapping[str, object] = field(default_factory=dict)


def verify_program(program: Program) -> None:
    """Raise :class:`ProgramVerificationError` on the first violation.

    Template-compiled programs take the vectorized clean-check first
    (:mod:`repro.codegen.fastverify`); anything it cannot prove clean
    falls back to the reference replay, so raised payloads are always
    the reference's.
    """
    from repro.codegen.fastverify import fast_violation_free

    if fast_violation_free(program):
        return
    for violation in iter_program_violations(program):
        raise ProgramVerificationError(violation.message)


def collect_program_violations(program: Program) -> List[ProgramViolation]:
    """Replay the whole program and return every violation found.

    Unlike :func:`verify_program` the replay continues past a violation
    (assuming the intended state where possible), so one broken visit
    does not hide later, independent bugs.  Template-compiled programs
    short-circuit through the vectorized clean-check; the violation
    list itself always comes from the reference replay.
    """
    from repro.codegen.fastverify import fast_violation_free

    if fast_violation_free(program):
        return []
    return list(iter_program_violations(program))


def iter_program_violations(program: Program) -> Iterator[ProgramViolation]:
    """Lazily yield violations in replay order."""
    schedule = program.schedule
    application = schedule.application
    clustering = schedule.clustering
    total_iterations = application.total_iterations

    # Instances present per FB set, bucketed by object name so the
    # visit-end survivor filter is O(names), not O(instances).
    present: List[Dict[str, Set[int]]] = [{}, {}]
    stored: Dict[Tuple[str, int], int] = {}
    runs: Dict[Tuple[str, int], int] = {}
    cm_block_words = [0, 0]
    cm_block_kernels: List[Set[str]] = [set(), set()]
    block_capacity = schedule.context_block_words or _block_capacity(program)
    external_names = set(application.external_inputs())
    keeps_by_name = {keep.name: keep for keep in schedule.keeps}
    # Replay-invariant lookups, precomputed: each kernel's inputs with
    # their invariant flag (invariant operands always read instance 0),
    # and the kept survivors per (cluster, FB set).
    kernel_inputs: Dict[str, Tuple[Tuple[str, bool], ...]] = {
        kernel.name: tuple(
            (in_name, schedule.dataflow[in_name].invariant)
            for in_name in kernel.inputs
        )
        for kernel in application.kernels
    }
    kernel_by_name = {kernel.name: kernel for kernel in application.kernels}
    survivors_memo: Dict[Tuple[int, int], Set[str]] = {}

    for ops in program.visits:
        visit = ops.visit
        location = f"visit {visit.index}"
        cluster = clustering[visit.cluster_index]
        if cluster.fb_set != visit.fb_set:
            yield ProgramViolation(
                "PROG006",
                f"visit {visit.index}: cluster {cluster.name} is on set "
                f"{cluster.fb_set}, visit claims set {visit.fb_set}",
                location,
                details={"cluster": cluster.name},
            )

        # Context loads: the visit's block is evicted and refilled.
        # A visit without context loads relies on block residency from
        # an earlier visit (generator's reuse_resident_contexts).
        block = visit.cm_block
        if ops.context_loads:
            cm_block_words[block] = 0
            cm_block_kernels[block] = set()
        for load in ops.context_loads:
            cm_block_words[block] += load.words
            if cm_block_words[block] > block_capacity:
                yield ProgramViolation(
                    "PROG002",
                    f"visit {visit.index}: CM block {block} overflows "
                    f"({cm_block_words[block]} > {block_capacity} words)",
                    location,
                    cost_words=cm_block_words[block] - block_capacity,
                    details={"cm_block": block},
                )
            cm_block_kernels[block].add(load.kernel)

        # Data loads.  The generator emits a run of instances per
        # object, so the bucket and external flag of the previous load
        # usually carry over.
        in_set = present[visit.fb_set]
        prev_name = None
        bucket = None
        external = False
        for load in ops.data_loads:
            if load.name != prev_name:
                prev_name = load.name
                bucket = in_set.get(load.name)
                if bucket is None:
                    bucket = in_set[load.name] = set()
                external = load.name in external_names
            if load.iteration in bucket:
                yield ProgramViolation(
                    "PROG005",
                    f"visit {visit.index}: redundant load of "
                    f"{load.name}#{load.iteration} (already in set"
                    f"{visit.fb_set})",
                    location,
                    cost_words=load.words,
                    details={"object": load.name,
                             "iteration": load.iteration},
                )
            if not external and (load.name, load.iteration) not in stored:
                yield ProgramViolation(
                    "PROG005",
                    f"visit {visit.index}: load of result "
                    f"{load.name}#{load.iteration} which was never stored "
                    f"to external memory",
                    location,
                    cost_words=load.words,
                    details={"object": load.name,
                             "iteration": load.iteration},
                )
            bucket.add(load.iteration)

        # Compute.
        for run in ops.compute:
            kernel = kernel_by_name[run.kernel]
            if run.kernel not in cm_block_kernels[block]:
                yield ProgramViolation(
                    "PROG002",
                    f"visit {visit.index}: kernel {run.kernel!r} launched "
                    f"without contexts in CM block {block}",
                    location,
                    details={"kernel": run.kernel, "cm_block": block},
                )
            for in_name, invariant in kernel_inputs[run.kernel]:
                instance = 0 if invariant else run.iteration
                bucket = in_set.get(in_name)
                if bucket is not None and instance in bucket:
                    continue
                # Cross-set retention: a kept operand may live in the
                # other set (requires fb_cross_set_access).
                keep = keeps_by_name.get(in_name)
                if keep is not None and keep.fb_set != visit.fb_set:
                    other = present[keep.fb_set].get(in_name)
                    if other is not None and instance in other:
                        continue
                yield ProgramViolation(
                    "PROG001",
                    f"visit {visit.index}: kernel {run.kernel!r} "
                    f"iteration {run.iteration} reads "
                    f"{in_name}#{instance} which is not in set"
                    f"{visit.fb_set}",
                    location,
                    cost_words=schedule.dataflow[in_name].size
                    if in_name in schedule.dataflow else 0,
                    details={"kernel": run.kernel, "object": in_name,
                             "iteration": run.iteration},
                )
            for out_name in kernel.outputs:
                bucket = in_set.get(out_name)
                if bucket is None:
                    bucket = in_set[out_name] = set()
                bucket.add(run.iteration)
            run_key = (run.kernel, run.iteration)
            runs[run_key] = runs.get(run_key, 0) + 1

        # Stores.
        for store in ops.stores:
            key = (store.name, store.iteration)
            bucket = in_set.get(store.name)
            if bucket is None or store.iteration not in bucket:
                yield ProgramViolation(
                    "PROG003",
                    f"visit {visit.index}: store of "
                    f"{store.name}#{store.iteration} which is not in set"
                    f"{visit.fb_set}",
                    location,
                    cost_words=store.words,
                    details={"object": store.name,
                             "iteration": store.iteration},
                )
            if application.producer_of(store.name) is None:
                yield ProgramViolation(
                    "PROG003",
                    f"visit {visit.index}: store of external data "
                    f"{store.name!r}",
                    location,
                    cost_words=store.words,
                    details={"object": store.name},
                )
            stored[key] = stored.get(key, 0) + 1

        # Visit end: release everything except surviving kept items.
        memo_key = (visit.cluster_index, visit.fb_set)
        survivors = survivors_memo.get(memo_key)
        if survivors is None:
            survivors = _survivors(schedule, visit.cluster_index, visit.fb_set)
            survivors_memo[memo_key] = survivors
        present[visit.fb_set] = {
            name: bucket
            for name, bucket in in_set.items()
            if name in survivors
        }
        # Round end on the last cluster: both sets drain completely.
        if visit.cluster_index == len(clustering) - 1:
            present = [{}, {}]

    yield from _check_totals(application, total_iterations, runs, stored)


def _block_capacity(program: Program) -> int:
    """CM block capacity recorded with the schedule's architecture."""
    # The schedule does not carry the Architecture object; the block
    # capacity is re-derived from the largest per-visit context volume
    # permitted at scheduling time.  Verification uses the scheduler's
    # invariant: context words per visit were checked against the block
    # size, so the strictest consistent bound is the maximum seen.
    return max(
        (ops.context_words for ops in program.visits),
        default=0,
    ) or 1


def _survivors(schedule, cluster_index: int, fb_set: int) -> Set[str]:
    """Kept object names that remain resident in *fb_set* after the
    cluster's visit ends."""
    survivors: Set[str] = set()
    for keep in schedule.keeps:
        if keep.fb_set != fb_set:
            continue
        first, last = keep.span
        if first <= cluster_index < last:
            survivors.add(keep.name)
    return survivors


def _check_totals(
    application, total_iterations, runs, stored
) -> Iterator[ProgramViolation]:
    for kernel in application.kernels:
        for iteration in range(total_iterations):
            count = runs.get((kernel.name, iteration), 0)
            if count != 1:
                yield ProgramViolation(
                    "PROG004",
                    f"kernel {kernel.name!r} iteration {iteration} executed "
                    f"{count} times (expected once)",
                    "program",
                    details={"kernel": kernel.name, "iteration": iteration,
                             "count": count},
                )
    for name in application.final_outputs:
        size = application.objects[name].size if name in application.objects else 0
        for iteration in range(total_iterations):
            count = stored.get((name, iteration), 0)
            if count != 1:
                yield ProgramViolation(
                    "PROG004",
                    f"final output {name!r} iteration {iteration} stored "
                    f"{count} times (expected once)",
                    "program",
                    cost_words=size * abs(count - 1),
                    details={"object": name, "iteration": iteration,
                             "count": count},
                )
