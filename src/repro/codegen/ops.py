"""The op-level intermediate representation.

A program is a sequence of :class:`VisitOps`; a *visit* is one cluster
executing one round's worth of iterations out of its frame-buffer set.
All data movement is expressed against **global iteration indices** —
iteration ``g`` of object ``x`` is a distinct block of words for every
``g`` (a new macroblock, tile, ...), which is what makes store/load
round-trips of shared results observable in the functional simulator.
"""

from __future__ import annotations

from collections import namedtuple
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CodegenError

__all__ = ["Visit", "LoadContext", "LoadData", "StoreData", "RunKernel", "VisitOps"]


@dataclass(frozen=True)
class Visit:
    """One (round, cluster) execution slot.

    Attributes:
        index: global visit index (round-major).
        round_index: which round of ``RF`` iterations.
        cluster_index: which cluster.
        fb_set: the frame-buffer set the cluster computes from.
        iterations: the global iteration indices processed, ascending.
    """

    index: int
    round_index: int
    cluster_index: int
    fb_set: int
    iterations: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.iterations:
            raise CodegenError(f"visit {self.index} processes no iterations")
        if list(self.iterations) != sorted(self.iterations):
            raise CodegenError(f"visit {self.index} iterations unsorted")

    @property
    def cm_block(self) -> int:
        """Context-memory block used by this visit (blocks alternate)."""
        return self.index % 2


# The four leaf ops below are the hottest allocations in the whole
# pipeline (a program holds tens of thousands).  They are plain
# namedtuple subclasses — immutable and field-validated like the frozen
# dataclasses they replaced, but with tuple-speed construction.


class LoadContext(namedtuple("LoadContext", ("kernel", "words", "cm_block"))):
    """Load one kernel's contexts into a CM block."""

    __slots__ = ()

    def __new__(cls, kernel: str, words: int, cm_block: int) -> "LoadContext":
        if words <= 0:
            raise CodegenError(f"context load of {kernel!r} has no words")
        return tuple.__new__(cls, (kernel, words, cm_block))


class LoadData(namedtuple("LoadData", ("name", "iteration", "words", "fb_set"))):
    """Move one object instance from external memory into an FB set."""

    __slots__ = ()

    def __new__(cls, name: str, iteration: int, words: int,
                fb_set: int) -> "LoadData":
        if words <= 0:
            raise CodegenError(f"data load of {name!r} has no words")
        if iteration < 0:
            raise CodegenError(f"data load of {name!r}: bad iteration")
        return tuple.__new__(cls, (name, iteration, words, fb_set))


class StoreData(namedtuple("StoreData", ("name", "iteration", "words", "fb_set"))):
    """Move one result instance from an FB set to external memory."""

    __slots__ = ()

    def __new__(cls, name: str, iteration: int, words: int,
                fb_set: int) -> "StoreData":
        if words <= 0:
            raise CodegenError(f"store of {name!r} has no words")
        if iteration < 0:
            raise CodegenError(f"store of {name!r}: bad iteration")
        return tuple.__new__(cls, (name, iteration, words, fb_set))


class RunKernel(namedtuple("RunKernel", ("kernel", "iteration", "cycles", "fb_set"))):
    """Execute one kernel for one iteration on the RC array."""

    __slots__ = ()

    def __new__(cls, kernel: str, iteration: int, cycles: int,
                fb_set: int) -> "RunKernel":
        if cycles <= 0:
            raise CodegenError(f"kernel {kernel!r} run has no cycles")
        return tuple.__new__(cls, (kernel, iteration, cycles, fb_set))


@dataclass(frozen=True)
class VisitOps:
    """All operations of one visit, grouped by phase.

    ``compute`` is kernel-outer, iteration-inner (loop fission order).
    """

    visit: Visit
    context_loads: Tuple[LoadContext, ...]
    data_loads: Tuple[LoadData, ...]
    compute: Tuple[RunKernel, ...]
    stores: Tuple[StoreData, ...]

    @property
    def compute_cycles(self) -> int:
        """Total RC-array cycles of the visit."""
        return sum(run.cycles for run in self.compute)

    @property
    def load_words(self) -> int:
        """Data words loaded ahead of the visit."""
        return sum(load.words for load in self.data_loads)

    @property
    def store_words(self) -> int:
        """Result words stored after the visit."""
        return sum(store.words for store in self.stores)

    @property
    def context_words(self) -> int:
        """Context words loaded ahead of the visit."""
        return sum(load.words for load in self.context_loads)
