"""The op-level intermediate representation.

A program is a sequence of :class:`VisitOps`; a *visit* is one cluster
executing one round's worth of iterations out of its frame-buffer set.
All data movement is expressed against **global iteration indices** —
iteration ``g`` of object ``x`` is a distinct block of words for every
``g`` (a new macroblock, tile, ...), which is what makes store/load
round-trips of shared results observable in the functional simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import CodegenError

__all__ = ["Visit", "LoadContext", "LoadData", "StoreData", "RunKernel", "VisitOps"]


@dataclass(frozen=True)
class Visit:
    """One (round, cluster) execution slot.

    Attributes:
        index: global visit index (round-major).
        round_index: which round of ``RF`` iterations.
        cluster_index: which cluster.
        fb_set: the frame-buffer set the cluster computes from.
        iterations: the global iteration indices processed, ascending.
    """

    index: int
    round_index: int
    cluster_index: int
    fb_set: int
    iterations: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.iterations:
            raise CodegenError(f"visit {self.index} processes no iterations")
        if list(self.iterations) != sorted(self.iterations):
            raise CodegenError(f"visit {self.index} iterations unsorted")

    @property
    def cm_block(self) -> int:
        """Context-memory block used by this visit (blocks alternate)."""
        return self.index % 2


@dataclass(frozen=True)
class LoadContext:
    """Load one kernel's contexts into a CM block."""

    kernel: str
    words: int
    cm_block: int

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise CodegenError(f"context load of {self.kernel!r} has no words")


@dataclass(frozen=True)
class LoadData:
    """Move one object instance from external memory into an FB set."""

    name: str
    iteration: int
    words: int
    fb_set: int

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise CodegenError(f"data load of {self.name!r} has no words")
        if self.iteration < 0:
            raise CodegenError(f"data load of {self.name!r}: bad iteration")


@dataclass(frozen=True)
class StoreData:
    """Move one result instance from an FB set to external memory."""

    name: str
    iteration: int
    words: int
    fb_set: int

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise CodegenError(f"store of {self.name!r} has no words")
        if self.iteration < 0:
            raise CodegenError(f"store of {self.name!r}: bad iteration")


@dataclass(frozen=True)
class RunKernel:
    """Execute one kernel for one iteration on the RC array."""

    kernel: str
    iteration: int
    cycles: int
    fb_set: int

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise CodegenError(f"kernel {self.kernel!r} run has no cycles")


@dataclass(frozen=True)
class VisitOps:
    """All operations of one visit, grouped by phase.

    ``compute`` is kernel-outer, iteration-inner (loop fission order).
    """

    visit: Visit
    context_loads: Tuple[LoadContext, ...]
    data_loads: Tuple[LoadData, ...]
    compute: Tuple[RunKernel, ...]
    stores: Tuple[StoreData, ...]

    @property
    def compute_cycles(self) -> int:
        """Total RC-array cycles of the visit."""
        return sum(run.cycles for run in self.compute)

    @property
    def load_words(self) -> int:
        """Data words loaded ahead of the visit."""
        return sum(load.words for load in self.data_loads)

    @property
    def store_words(self) -> int:
        """Result words stored after the visit."""
        return sum(store.words for store in self.stores)

    @property
    def context_words(self) -> int:
        """Context words loaded ahead of the visit."""
        return sum(load.words for load in self.context_loads)
