"""The program container produced by the code generator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.codegen.ops import VisitOps
from repro.schedule.plan import Schedule

__all__ = ["Program"]


@dataclass(frozen=True)
class Program:
    """An executable lowering of one schedule.

    Attributes:
        schedule: the schedule the program implements.
        visits: the visit sequence, round-major.
    """

    schedule: Schedule
    visits: Tuple[VisitOps, ...]

    def __iter__(self) -> Iterator[VisitOps]:
        return iter(self.visits)

    def __len__(self) -> int:
        return len(self.visits)

    # -- aggregate accounting ------------------------------------------------

    @property
    def total_load_words(self) -> int:
        """All data words loaded over the program."""
        return sum(visit.load_words for visit in self.visits)

    @property
    def total_store_words(self) -> int:
        """All data words stored over the program."""
        return sum(visit.store_words for visit in self.visits)

    @property
    def total_context_words(self) -> int:
        """All context words loaded over the program."""
        return sum(visit.context_words for visit in self.visits)

    @property
    def total_compute_cycles(self) -> int:
        """All RC-array cycles (a lower bound on the makespan)."""
        return sum(visit.compute_cycles for visit in self.visits)

    def listing(self, *, max_visits: int = 0) -> str:
        """Human-readable program listing (for examples and debugging)."""
        lines = [
            f"program[{self.schedule.scheduler}] of "
            f"{self.schedule.application.name!r}: {len(self.visits)} visits, "
            f"RF={self.schedule.rf}"
        ]
        shown = self.visits if max_visits <= 0 else self.visits[:max_visits]
        for ops in shown:
            visit = ops.visit
            iter_range = (
                f"{visit.iterations[0]}..{visit.iterations[-1]}"
                if len(visit.iterations) > 1 else str(visit.iterations[0])
            )
            lines.append(
                f"visit {visit.index}: round {visit.round_index}, "
                f"Cl{visit.cluster_index + 1}, set{visit.fb_set}, "
                f"iterations {iter_range}"
            )
            for load in ops.context_loads:
                lines.append(
                    f"  ldctx  {load.kernel} -> CM block {load.cm_block} "
                    f"({load.words}w)"
                )
            for load in ops.data_loads:
                lines.append(
                    f"  ld     {load.name}#{load.iteration} -> set{load.fb_set} "
                    f"({load.words}w)"
                )
            for run in ops.compute:
                lines.append(
                    f"  run    {run.kernel}#{run.iteration} ({run.cycles}cyc)"
                )
            for store in ops.stores:
                lines.append(
                    f"  st     {store.name}#{store.iteration} <- "
                    f"set{store.fb_set} ({store.words}w)"
                )
        if max_visits > 0 and len(self.visits) > max_visits:
            lines.append(f"... {len(self.visits) - max_visits} more visits")
        return "\n".join(lines)
