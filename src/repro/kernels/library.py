"""Kernel library registry and simulator adapters.

:class:`LibraryKernel` couples an RC-array context program with a NumPy
reference; :class:`KernelLibrary` registers the standard DSP set and
adapts entries to the two consumers:

* :meth:`KernelLibrary.impl_for` builds a functional-simulator
  implementation (:data:`~repro.sim.functional.KernelImpl`) for an
  application kernel, binding the kernel's input/output object names to
  the program's operand roles positionally;
* :meth:`KernelLibrary.cycles_for` estimates a kernel's per-iteration
  cycle count by executing its program on the RC-array model — the
  "kernel execution time" the paper's information extractor supplies to
  the schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.arch.rc_array import ContextProgram, RCArray
from repro.core.application import Application
from repro.core.kernel import Kernel
from repro.errors import WorkloadError

__all__ = ["LibraryKernel", "KernelLibrary", "default_library"]

Reference = Callable[[Mapping[str, np.ndarray]], Dict[str, np.ndarray]]


def _shape_words(shape: Tuple[int, ...]) -> int:
    words = 1
    for dim in shape:
        words *= dim
    return words


@dataclass
class LibraryKernel:
    """One library entry.

    Attributes:
        op: library key (e.g. ``"dct8x8"``).
        program: the RC-array mapping.
        reference: NumPy golden implementation over role-named operands.
        input_shapes / output_shapes: role name -> logical shape.
        constants: roles bound to compile-time constants (e.g. the DCT
            basis) rather than data objects.
        context_words: configuration size of the mapping.
    """

    op: str
    program: ContextProgram
    reference: Reference
    input_shapes: Dict[str, Tuple[int, ...]]
    output_shapes: Dict[str, Tuple[int, ...]]
    context_words: int
    constants: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for role in self.program.inputs:
            if role not in self.input_shapes and role not in self.constants:
                raise WorkloadError(
                    f"library kernel {self.op!r}: program input {role!r} has "
                    f"neither a shape nor a constant binding"
                )
        for role in self.program.outputs:
            if role not in self.output_shapes:
                raise WorkloadError(
                    f"library kernel {self.op!r}: program output {role!r} "
                    f"has no declared shape"
                )

    @property
    def data_input_roles(self) -> Tuple[str, ...]:
        """Program inputs bound to data objects (constants excluded),
        in program order."""
        return tuple(
            role for role in self.program.inputs if role not in self.constants
        )

    @property
    def output_roles(self) -> Tuple[str, ...]:
        """Program outputs, in program order."""
        return tuple(self.program.outputs)

    def input_words(self, role: str) -> int:
        """Word size of one input role."""
        return _shape_words(self.input_shapes[role])

    def output_words(self, role: str) -> int:
        """Word size of one output role."""
        return _shape_words(self.output_shapes[role])

    def run_reference(
        self, operands: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Run the golden implementation with constants injected."""
        bound = dict(operands)
        bound.update(self.constants)
        return self.reference(bound)

    def run_program(
        self, rc_array: RCArray, operands: Mapping[str, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        """Run the RC-array program with constants injected."""
        bound = dict(operands)
        bound.update(self.constants)
        return rc_array.execute(self.program, bound)

    def representative_operands(self, *, seed: int = 7) -> Dict[str, np.ndarray]:
        """Deterministic operands matching the declared input shapes."""
        rng = np.random.RandomState(seed)
        return {
            role: rng.randint(-128, 128, size=shape or (1,)).reshape(shape).astype(np.int64)
            if shape else np.asarray(rng.randint(-128, 128), dtype=np.int64)
            for role, shape in self.input_shapes.items()
        }


class KernelLibrary:
    """A registry of :class:`LibraryKernel` entries."""

    def __init__(self):
        self._entries: Dict[str, LibraryKernel] = {}

    def register(self, entry: LibraryKernel) -> None:
        """Add an entry; the op key must be unused."""
        if entry.op in self._entries:
            raise WorkloadError(f"library op {entry.op!r} already registered")
        self._entries[entry.op] = entry

    def get(self, op: str) -> LibraryKernel:
        """Look up an entry."""
        try:
            return self._entries[op]
        except KeyError:
            raise KeyError(
                f"no library kernel {op!r}; available: {sorted(self._entries)}"
            ) from None

    def __contains__(self, op: str) -> bool:
        return op in self._entries

    def ops(self) -> Tuple[str, ...]:
        """Registered op keys, sorted."""
        return tuple(sorted(self._entries))

    # -- adapters -----------------------------------------------------------

    def cycles_for(self, op: str, rc_array: Optional[RCArray] = None) -> int:
        """Per-iteration cycle estimate for one op on the RC array."""
        entry = self.get(op)
        array = rc_array or RCArray()
        operands = entry.representative_operands()
        operands.update(entry.constants)
        return array.estimate_cycles(entry.program, operands)

    def impl_for(self, application: Application, kernel: Kernel):
        """A functional-simulator implementation for *kernel*.

        The kernel's ``library_op`` selects the entry; the kernel's
        input object names bind to the entry's data input roles
        positionally, and output names to output roles positionally.
        Object sizes must match the role sizes exactly.
        """
        if kernel.library_op is None:
            raise WorkloadError(
                f"kernel {kernel.name!r} has no library_op; use a surrogate"
            )
        entry = self.get(kernel.library_op)
        input_roles = entry.data_input_roles
        output_roles = entry.output_roles
        if len(kernel.inputs) != len(input_roles):
            raise WorkloadError(
                f"kernel {kernel.name!r} has {len(kernel.inputs)} inputs; "
                f"library op {entry.op!r} expects {len(input_roles)}"
            )
        if len(kernel.outputs) != len(output_roles):
            raise WorkloadError(
                f"kernel {kernel.name!r} has {len(kernel.outputs)} outputs; "
                f"library op {entry.op!r} expects {len(output_roles)}"
            )
        for obj_name, role in zip(kernel.inputs, input_roles):
            expected = entry.input_words(role)
            actual = application.object(obj_name).size
            if actual != expected:
                raise WorkloadError(
                    f"kernel {kernel.name!r}: object {obj_name!r} has "
                    f"{actual} words, role {role!r} of {entry.op!r} needs "
                    f"{expected}"
                )
        for obj_name, role in zip(kernel.outputs, output_roles):
            expected = entry.output_words(role)
            actual = application.object(obj_name).size
            if actual != expected:
                raise WorkloadError(
                    f"kernel {kernel.name!r}: object {obj_name!r} has "
                    f"{actual} words, role {role!r} of {entry.op!r} needs "
                    f"{expected}"
                )

        def implementation(
            inputs: Mapping[str, np.ndarray], iteration: int
        ) -> Dict[str, np.ndarray]:
            del iteration  # library kernels are iteration-independent
            operands = {}
            for obj_name, role in zip(kernel.inputs, input_roles):
                shape = entry.input_shapes[role]
                flat = np.asarray(inputs[obj_name], dtype=np.int64).ravel()
                operands[role] = flat.reshape(shape) if shape else flat[0]
            results = entry.run_reference(operands)
            outputs: Dict[str, np.ndarray] = {}
            for obj_name, role in zip(kernel.outputs, output_roles):
                outputs[obj_name] = np.asarray(
                    results[role], dtype=np.int64
                ).ravel()
            return outputs

        return implementation

    def impls_for(self, application: Application) -> Dict[str, "KernelImpl"]:
        """Implementations for every kernel of *application* that names
        a ``library_op`` (others are left to surrogates)."""
        impls = {}
        for kernel in application.kernels:
            if kernel.library_op is not None:
                impls[kernel.name] = self.impl_for(application, kernel)
        return impls


def default_library() -> KernelLibrary:
    """The standard library with all built-in DSP kernels registered."""
    # Imported here to avoid a circular import with repro.kernels.dsp.
    from repro.kernels import dsp

    library = KernelLibrary()
    library.register(dsp.dct8x8())
    library.register(dsp.idct8x8())
    library.register(dsp.quant8x8())
    library.register(dsp.dequant8x8())
    library.register(dsp.zigzag_pack())
    library.register(dsp.fir())
    library.register(dsp.threshold_clip())
    library.register(dsp.sad16())
    library.register(dsp.pointwise_abs_diff())
    library.register(dsp.vector_add())
    library.register(dsp.motion_search())
    library.register(dsp.haar8())
    library.register(dsp.rgb_to_luma())
    return library
