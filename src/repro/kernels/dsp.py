"""DSP kernel definitions: RC-array programs plus NumPy references.

All arithmetic is integer (the RC cells are 16-bit integer ALUs in M1;
the model widens to 64-bit to avoid overflow while keeping the same
values).  Transform kernels use a scaled integer DCT basis with a final
arithmetic shift, the standard fixed-point factorisation.

Every factory returns a :class:`LibraryKernel`; see
:mod:`repro.kernels.library` for the registry and simulator adapters.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.arch.rc_array import ContextProgram, MacroOp
from repro.kernels.library import LibraryKernel

__all__ = [
    "dct8x8",
    "motion_search",
    "haar8",
    "haar_matrix",
    "rgb_to_luma",
    "dequant8x8",
    "fir",
    "idct8x8",
    "pointwise_abs_diff",
    "quant8x8",
    "sad16",
    "threshold_clip",
    "vector_add",
    "zigzag_pack",
    "dct_basis_matrix",
    "zigzag_order",
]

#: Fixed-point scale for the integer DCT basis (values scaled by 2^SHIFT).
DCT_SHIFT = 7


def dct_basis_matrix(size: int = 8, shift: int = DCT_SHIFT) -> np.ndarray:
    """The scaled integer DCT-II basis matrix ``C`` (``size x size``)."""
    scale = 1 << shift
    basis = np.empty((size, size), dtype=np.int64)
    for k in range(size):
        for n in range(size):
            alpha = math.sqrt(1.0 / size) if k == 0 else math.sqrt(2.0 / size)
            basis[k, n] = round(
                scale * alpha * math.cos(math.pi * (2 * n + 1) * k / (2 * size))
            )
    return basis


def zigzag_order(size: int = 8) -> np.ndarray:
    """Indices of the classic JPEG/MPEG zig-zag scan of a square block."""
    order = sorted(
        ((row, col) for row in range(size) for col in range(size)),
        # Odd anti-diagonals run top-to-bottom, even ones bottom-to-top.
        key=lambda rc: (
            rc[0] + rc[1],
            rc[0] if (rc[0] + rc[1]) % 2 else -rc[0],
        ),
    )
    flat = np.array([row * size + col for row, col in order], dtype=np.int64)
    return flat


# ---------------------------------------------------------------------------
# transforms
# ---------------------------------------------------------------------------

def dct8x8() -> LibraryKernel:
    """2-D 8x8 integer DCT: ``Y = (C X C^T) >> 2*SHIFT``."""
    basis = dct_basis_matrix()
    program = ContextProgram(
        name="dct8x8",
        inputs=("x", "c"),
        outputs=("y",),
        ops=(
            MacroOp("matmul", "t", ("c", "x")),
            MacroOp("matmul_t", "y_raw", ("t", "c")),
            MacroOp("shr", "y", ("y_raw",), imm=2 * DCT_SHIFT),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = operands["x"]
        c = operands["c"]
        return {"y": (c @ x @ c.T) >> (2 * DCT_SHIFT)}

    return LibraryKernel(
        op="dct8x8",
        program=program,
        reference=reference,
        input_shapes={"x": (8, 8), "c": (8, 8)},
        output_shapes={"y": (8, 8)},
        constants={"c": basis},
        context_words=24,
    )


def idct8x8() -> LibraryKernel:
    """2-D 8x8 integer inverse DCT: ``X = (C^T Y C) >> 2*SHIFT``."""
    basis = dct_basis_matrix()
    program = ContextProgram(
        name="idct8x8",
        inputs=("y", "c"),
        outputs=("x",),
        ops=(
            MacroOp("transpose", "ct", ("c",)),
            MacroOp("matmul", "t", ("ct", "y")),
            MacroOp("matmul", "x_raw", ("t", "c")),
            MacroOp("shr", "x", ("x_raw",), imm=2 * DCT_SHIFT),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        y = operands["y"]
        c = operands["c"]
        return {"x": (c.T @ y @ c) >> (2 * DCT_SHIFT)}

    return LibraryKernel(
        op="idct8x8",
        program=program,
        reference=reference,
        input_shapes={"y": (8, 8), "c": (8, 8)},
        output_shapes={"x": (8, 8)},
        constants={"c": basis},
        context_words=28,
    )


# ---------------------------------------------------------------------------
# quantisation
# ---------------------------------------------------------------------------

def quant8x8(qshift: int = 4) -> LibraryKernel:
    """Uniform quantiser: ``q = clip(y >> qshift, 255)``."""
    program = ContextProgram(
        name="quant8x8",
        inputs=("y",),
        outputs=("q",),
        ops=(
            MacroOp("shr", "scaled", ("y",), imm=qshift),
            MacroOp("clip", "q", ("scaled",), imm=255),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"q": np.clip(operands["y"] >> qshift, -255, 255)}

    return LibraryKernel(
        op="quant8x8",
        program=program,
        reference=reference,
        input_shapes={"y": (8, 8)},
        output_shapes={"q": (8, 8)},
        context_words=8,
    )


def dequant8x8(qshift: int = 4) -> LibraryKernel:
    """Inverse quantiser: ``y = q << qshift``."""
    program = ContextProgram(
        name="dequant8x8",
        inputs=("q",),
        outputs=("y",),
        ops=(MacroOp("shl", "y", ("q",), imm=qshift),),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"y": operands["q"] << qshift}

    return LibraryKernel(
        op="dequant8x8",
        program=program,
        reference=reference,
        input_shapes={"q": (8, 8)},
        output_shapes={"y": (8, 8)},
        context_words=6,
    )


def zigzag_pack() -> LibraryKernel:
    """Zig-zag scan of an 8x8 block into a 64-vector (entropy-coder feed).

    The permutation is realised with the interconnect (modelled as a
    matmul with a permutation matrix held as a constant)."""
    order = zigzag_order()
    permutation = np.zeros((64, 64), dtype=np.int64)
    for position, source in enumerate(order):
        permutation[position, source] = 1
    program = ContextProgram(
        name="zigzag_pack",
        inputs=("q", "p"),
        outputs=("z",),
        ops=(MacroOp("matmul", "z", ("p", "q")),),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        q = operands["q"].reshape(64)
        return {"z": q[order]}

    return LibraryKernel(
        op="zigzag_pack",
        program=program,
        reference=reference,
        input_shapes={"q": (64,), "p": (64, 64)},
        output_shapes={"z": (64,)},
        constants={"p": permutation},
        context_words=10,
    )


# ---------------------------------------------------------------------------
# filtering
# ---------------------------------------------------------------------------

def fir(taps: Tuple[int, ...] = (1, 4, 6, 4, 1), length: int = 64) -> LibraryKernel:
    """Causal FIR filter with compile-time integer taps.

    ``y[n] = sum_k taps[k] * x[n - k]`` with zero history, followed by a
    normalising shift when the tap sum is a power of two.
    """
    if not taps:
        raise ValueError("fir needs at least one tap")
    tap_sum = sum(taps)
    shift = tap_sum.bit_length() - 1 if tap_sum and tap_sum & (tap_sum - 1) == 0 else 0
    ops = []
    for index, tap in enumerate(taps):
        ops.append(MacroOp("shift_elems", f"s{index}", ("x",), imm=index))
        ops.append(MacroOp("muli", f"m{index}", (f"s{index}",), imm=int(tap)))
        if index == 0:
            ops.append(MacroOp("copy", "acc0", ("m0",)))
        else:
            ops.append(MacroOp("add", f"acc{index}", (f"acc{index - 1}", f"m{index}")))
    last_acc = f"acc{len(taps) - 1}"
    if shift:
        ops.append(MacroOp("shr", "y", (last_acc,), imm=shift))
    else:
        ops.append(MacroOp("copy", "y", (last_acc,)))
    program = ContextProgram(
        name="fir",
        inputs=("x",),
        outputs=("y",),
        ops=tuple(ops),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        x = operands["x"]
        acc = np.zeros_like(x)
        for index, tap in enumerate(taps):
            shifted = np.zeros_like(x)
            if index == 0:
                shifted[...] = x
            else:
                shifted[..., index:] = x[..., :-index]
            acc = acc + tap * shifted
        if shift:
            acc = acc >> shift
        return {"y": acc}

    return LibraryKernel(
        op="fir",
        program=program,
        reference=reference,
        input_shapes={"x": (length,)},
        output_shapes={"y": (length,)},
        context_words=4 + 3 * len(taps),
    )


def threshold_clip(bound: int = 64) -> LibraryKernel:
    """Symmetric clipping (ATR detection thresholding stage)."""
    program = ContextProgram(
        name="threshold_clip",
        inputs=("x",),
        outputs=("y",),
        ops=(MacroOp("clip", "y", ("x",), imm=bound),),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"y": np.clip(operands["x"], -bound, bound)}

    return LibraryKernel(
        op="threshold_clip",
        program=program,
        reference=reference,
        input_shapes={"x": (64,)},
        output_shapes={"y": (64,)},
        context_words=4,
    )


# ---------------------------------------------------------------------------
# block matching / correlation
# ---------------------------------------------------------------------------

def sad16() -> LibraryKernel:
    """Sum of absolute differences of two 16x16 blocks (motion
    estimation metric; the heart of MPEG's ME and ATR's correlation)."""
    program = ContextProgram(
        name="sad16",
        inputs=("a", "b"),
        outputs=("sad",),
        ops=(
            MacroOp("sub", "d", ("a", "b")),
            MacroOp("abs", "ad", ("d",)),
            MacroOp("reduce_sum", "sad", ("ad",)),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        diff = np.abs(operands["a"] - operands["b"])
        return {"sad": np.asarray(int(diff.sum()), dtype=np.int64)}

    return LibraryKernel(
        op="sad16",
        program=program,
        reference=reference,
        input_shapes={"a": (16, 16), "b": (16, 16)},
        output_shapes={"sad": ()},
        context_words=6,
    )


def pointwise_abs_diff(length: int = 256) -> LibraryKernel:
    """Elementwise |a - b| (ATR shift-and-difference stage)."""
    program = ContextProgram(
        name="pointwise_abs_diff",
        inputs=("a", "b"),
        outputs=("d",),
        ops=(
            MacroOp("sub", "raw", ("a", "b")),
            MacroOp("abs", "d", ("raw",)),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"d": np.abs(operands["a"] - operands["b"])}

    return LibraryKernel(
        op="pointwise_abs_diff",
        program=program,
        reference=reference,
        input_shapes={"a": (length,), "b": (length,)},
        output_shapes={"d": (length,)},
        context_words=5,
    )


def vector_add(length: int = 256) -> LibraryKernel:
    """Elementwise addition (accumulation stages)."""
    program = ContextProgram(
        name="vector_add",
        inputs=("a", "b"),
        outputs=("s",),
        ops=(MacroOp("add", "s", ("a", "b")),),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"s": operands["a"] + operands["b"]}

    return LibraryKernel(
        op="vector_add",
        program=program,
        reference=reference,
        input_shapes={"a": (length,), "b": (length,)},
        output_shapes={"s": (length,)},
        context_words=3,
    )


# ---------------------------------------------------------------------------
# motion estimation / colour / wavelets
# ---------------------------------------------------------------------------

def motion_search(candidates: int = 4, block: int = 16) -> LibraryKernel:
    """Block-matching motion search: SAD of the current block against a
    stack of candidate reference blocks (one per motion-vector
    hypothesis).  Outputs the SAD vector; the controller picks the
    minimum downstream."""
    program = ContextProgram(
        name="motion_search",
        inputs=("cur", "cands"),
        outputs=("sads",),
        ops=(
            MacroOp("sub", "d", ("cands", "cur")),
            MacroOp("abs", "ad", ("d",)),
            MacroOp("reduce_tail", "sads", ("ad",), imm=2),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        diff = np.abs(operands["cands"] - operands["cur"])
        return {"sads": diff.sum(axis=(1, 2))}

    return LibraryKernel(
        op="motion_search",
        program=program,
        reference=reference,
        input_shapes={
            "cur": (block, block),
            "cands": (candidates, block, block),
        },
        output_shapes={"sads": (candidates,)},
        context_words=10,
    )


def haar_matrix(size: int = 8) -> np.ndarray:
    """One level of the (unnormalised) Haar analysis transform: the
    first ``size/2`` rows are pairwise sums, the rest pairwise
    differences."""
    if size % 2:
        raise ValueError(f"haar size must be even, got {size}")
    matrix = np.zeros((size, size), dtype=np.int64)
    half = size // 2
    for index in range(half):
        matrix[index, 2 * index] = 1
        matrix[index, 2 * index + 1] = 1
        matrix[half + index, 2 * index] = 1
        matrix[half + index, 2 * index + 1] = -1
    return matrix


def haar8() -> LibraryKernel:
    """One 1-D Haar analysis level over rows of an 8x8 tile, with a
    one-bit normalising shift of the averages band folded in later
    stages (kept exact here)."""
    matrix = haar_matrix(8)
    program = ContextProgram(
        name="haar8",
        inputs=("x", "h"),
        outputs=("y",),
        ops=(MacroOp("matmul_t", "y", ("x", "h")),),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {"y": operands["x"] @ operands["h"].T}

    return LibraryKernel(
        op="haar8",
        program=program,
        reference=reference,
        input_shapes={"x": (8, 8), "h": (8, 8)},
        output_shapes={"y": (8, 8)},
        constants={"h": matrix},
        context_words=12,
    )


def rgb_to_luma(pixels: int = 64) -> LibraryKernel:
    """ITU-R BT.601 luma from planar RGB:
    ``y = (66 r + 129 g + 25 b + 128) >> 8``."""
    program = ContextProgram(
        name="rgb_to_luma",
        inputs=("r", "g", "b"),
        outputs=("y",),
        ops=(
            MacroOp("muli", "wr", ("r",), imm=66),
            MacroOp("muli", "wg", ("g",), imm=129),
            MacroOp("muli", "wb", ("b",), imm=25),
            MacroOp("add", "rg", ("wr", "wg")),
            MacroOp("add", "rgb", ("rg", "wb")),
            MacroOp("addi", "biased", ("rgb",), imm=128),
            MacroOp("shr", "y", ("biased",), imm=8),
        ),
    )

    def reference(operands: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        value = (66 * operands["r"] + 129 * operands["g"]
                 + 25 * operands["b"] + 128) >> 8
        return {"y": value}

    return LibraryKernel(
        op="rgb_to_luma",
        program=program,
        reference=reference,
        input_shapes={"r": (pixels,), "g": (pixels,), "b": (pixels,)},
        output_shapes={"y": (pixels,)},
        context_words=14,
    )
