"""The kernel library: real DSP kernels for the RC array.

"The application code is written in terms of kernels that are available
in a kernel library.  The kernel programming is equivalent to
specifying the mapping of computation to the target architecture, and
is done only once" (paper, section 2).

Each library entry bundles a :class:`~repro.arch.rc_array.ContextProgram`
(the RC-array mapping), a NumPy reference implementation, I/O shapes
and a context-word count.  The library feeds three consumers:

* the **information extractor** derives kernel cycle counts by running
  the program on representative operands;
* the **functional simulator** uses the reference as the kernel
  implementation, so MPEG/ATR example pipelines compute real DCT
  coefficients, quantised blocks and SAD maps end to end;
* the **tests** check program-vs-reference equivalence on the RC-array
  model.
"""

from repro.kernels.dsp import (
    dct8x8,
    dequant8x8,
    fir,
    idct8x8,
    pointwise_abs_diff,
    quant8x8,
    sad16,
    threshold_clip,
    vector_add,
    zigzag_pack,
)
from repro.kernels.library import KernelLibrary, LibraryKernel, default_library

__all__ = [
    "KernelLibrary",
    "LibraryKernel",
    "dct8x8",
    "default_library",
    "dequant8x8",
    "fir",
    "idct8x8",
    "pointwise_abs_diff",
    "quant8x8",
    "sad16",
    "threshold_clip",
    "vector_add",
    "zigzag_pack",
]
