"""Ablations of the Complete Data Scheduler's design choices.

DESIGN.md calls out four decisions worth isolating:

* **TF ranking** (paper section 4) vs. naive candidate orders — does
  ranking retention candidates by the time factor actually beat
  largest-first or discovery order?
* **RF policy** — the paper maximises the common reuse factor first and
  keeps what still fits; the ``joint`` policy sweeps (RF, keeps) pairs.
* **DMA ordering** (context scheduler [4]) — contexts-first vs.
  loads-first vs. stores-first inside overlap windows.
* **Allocator splitting** (section 5) — last-resort splitting on/off,
  and first-fit growth directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.parallel import PlanMemo
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.errors import InfeasibleScheduleError
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.context_scheduler import DmaPolicy
from repro.sim.batch import simulate_program
from repro.workloads.spec import ExperimentSpec

__all__ = [
    "AblationResult",
    "keep_policy_ablation",
    "rf_policy_ablation",
    "dma_policy_ablation",
    "cross_set_ablation",
    "render_ablation",
]


@dataclass(frozen=True)
class AblationResult:
    """One variant's outcome on one workload."""

    workload: str
    variant: str
    total_cycles: Optional[int]
    data_words: Optional[int]
    rf: Optional[int]
    kept_items: Optional[int]
    infeasible_reason: str = ""

    @property
    def feasible(self) -> bool:
        return self.total_cycles is not None


def _run_cds(
    application: Application,
    clustering: Clustering,
    architecture: Architecture,
    options: ScheduleOptions,
    *,
    variant: str,
    dma_policy: DmaPolicy = DmaPolicy.CONTEXTS_FIRST,
    memo: Optional[PlanMemo] = None,
    cache=None,
) -> AblationResult:
    key = None
    if cache is not None:
        from repro.cache import (
            arch_fingerprint,
            digest,
            options_fingerprint,
            workload_fingerprint,
        )

        key = digest((
            "ablation",
            variant,
            workload_fingerprint(application, clustering),
            arch_fingerprint(architecture),
            options_fingerprint(options),
            dma_policy.value,
        ))
        cached = cache.get(key)
        if cached is not None:
            return cached
    try:
        if memo is not None:
            schedule = memo.schedule(
                CompleteDataScheduler, application, clustering,
                architecture, options=options,
            )
        else:
            # Route cold compiles through the batch front-end like the
            # corpus and sweep drivers (a one-request batch; the SoA
            # engine still wins per case, and unsupported options fall
            # back to the reference scheduler inside compile_many).
            from repro.schedule.batch.compiler import (
                CompileRequest,
                compile_many,
            )

            schedule = compile_many([CompileRequest(
                "cds", application, architecture,
                clustering=clustering, options=options,
            )])[0].unwrap()
    except InfeasibleScheduleError as exc:
        result = AblationResult(
            workload=application.name, variant=variant,
            total_cycles=None, data_words=None, rf=None, kept_items=None,
            infeasible_reason=str(exc),
        )
        if cache is not None:
            cache.put(key, result)
        return result
    program = generate_program(schedule)
    report = simulate_program(
        program, architecture, dma_policy=dma_policy, verify=True,
    )
    result = AblationResult(
        workload=application.name,
        variant=variant,
        total_cycles=report.total_cycles,
        data_words=report.data_words,
        rf=schedule.rf,
        kept_items=len(schedule.keeps),
    )
    if cache is not None:
        cache.put(key, result)
    return result


def keep_policy_ablation(
    spec: ExperimentSpec, *, cache=None
) -> List[AblationResult]:
    """TF ranking vs. size-first vs. discovery-order retention."""
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    results = []
    for policy in ("tf", "size", "fifo"):
        results.append(
            _run_cds(
                application, clustering, architecture,
                ScheduleOptions(keep_policy=policy),
                variant=f"keep={policy}", cache=cache,
            )
        )
    return results


def rf_policy_ablation(
    spec: ExperimentSpec, *, cache=None
) -> List[AblationResult]:
    """Paper's RF-first policy vs. joint (RF, keeps) exploration."""
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    return [
        _run_cds(
            application, clustering, architecture,
            ScheduleOptions(rf_policy=policy),
            variant=f"rf={policy}", cache=cache,
        )
        for policy in ("max_then_keep", "joint")
    ]


def dma_policy_ablation(
    spec: ExperimentSpec, *, cache=None
) -> List[AblationResult]:
    """Context-scheduler orderings inside overlap windows.

    The schedule is invariant across DMA policies (they differ only in
    simulation), so the variants share one plan through a
    :class:`~repro.analysis.parallel.PlanMemo`.
    """
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    memo = PlanMemo()
    return [
        _run_cds(
            application, clustering, architecture, ScheduleOptions(),
            variant=f"dma={policy.value}", dma_policy=policy, memo=memo,
            cache=cache,
        )
        for policy in DmaPolicy
    ]


def cross_set_ablation(
    spec: ExperimentSpec, *, cache=None
) -> List[AblationResult]:
    """The paper's future work: retention across frame-buffer sets.

    Runs the CDS on the experiment's workload twice — on the M1
    architecture (same-set retention only) and on an architecture with
    ``fb_cross_set_access`` and ``cross_set_retention`` enabled — to
    quantify what the proposed extension would buy."""
    application, clustering = spec.build()
    m1 = Architecture.m1(spec.fb)
    extended = Architecture.m1(
        spec.fb, fb_cross_set_access=True,
        name=f"M1x-FB{spec.fb}",
    )
    return [
        _run_cds(application, clustering, m1, ScheduleOptions(),
                 variant="retention=same-set", cache=cache),
        _run_cds(application, clustering, extended,
                 ScheduleOptions(cross_set_retention=True),
                 variant="retention=cross-set", cache=cache),
    ]


def render_ablation(results: Sequence[AblationResult]) -> str:
    """Text table of ablation outcomes."""
    lines = [
        f"{'workload':<12} {'variant':<22} {'cycles':>10} {'data words':>11} "
        f"{'RF':>3} {'keeps':>5}"
    ]
    lines.append("-" * len(lines[0]))
    for result in results:
        if result.feasible:
            lines.append(
                f"{result.workload:<12} {result.variant:<22} "
                f"{result.total_cycles:>10} {result.data_words:>11} "
                f"{result.rf:>3} {result.kept_items:>5}"
            )
        else:
            lines.append(
                f"{result.workload:<12} {result.variant:<22} "
                f"{'infeasible':>10}"
            )
    return "\n".join(lines)
