"""Frame-buffer-size sweeps.

Section 6: "We also have tested a fixed kernel schedule but different
memory sizes as shown MPEG and MPEG*, ATR-FI and ATR-FI* or E1 and E1*.
A bigger memory allows reusing contexts for an increased number of
iterations (RF)."  The paper samples that curve at two points per
workload; :func:`sweep_fb_sizes` traces it densely — RF, retention
volume, traffic and makespan as functions of the frame-buffer set size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.compare import compare_workload, compare_workloads
from repro.analysis.parallel import default_jobs, parallel_map
from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.units import SizeLike, format_size, parse_size

__all__ = ["SweepPoint", "sweep_fb_sizes", "render_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, FB size) sample."""

    fb_words: int
    basic_feasible: bool
    ds_feasible: bool
    rf: Optional[int]
    kept_items: Optional[int]
    ds_improvement_pct: Optional[float]
    cds_improvement_pct: Optional[float]
    cds_cycles: Optional[int]
    dt_words: Optional[float]


def _row_to_point(row, words: int) -> SweepPoint:
    return SweepPoint(
        fb_words=words,
        basic_feasible=row.basic.feasible,
        ds_feasible=row.ds.feasible,
        rf=row.rf,
        kept_items=(
            len(row.cds.schedule.keeps)
            if row.cds.schedule else None
        ),
        ds_improvement_pct=row.ds_improvement_pct,
        cds_improvement_pct=row.cds_improvement_pct,
        cds_cycles=row.cds.total_cycles,
        dt_words=row.dt_words,
    )


def _sweep_chunk(task) -> List[SweepPoint]:
    """One worker's share of FB sizes (top-level: picklable).

    The chunk's scheduling problems — three schedulers at every size —
    compile in one batch; sizes may differ per request because the
    batch tables carry a per-case capacity.
    """
    application, clustering, words_list, cache_dir, engine = task
    cache = None
    if cache_dir is not None:
        from repro.cache import CacheStore

        cache = CacheStore(cache_dir)
    rows = compare_workloads(
        [
            (application, clustering, Architecture.m1(words), None)
            for words in words_list
        ],
        cache=cache, engine=engine,
    )
    return [
        _row_to_point(row, words)
        for row, words in zip(rows, words_list)
    ]


def sweep_fb_sizes(
    application: Application,
    clustering: Clustering,
    fb_sizes: Sequence[SizeLike],
    *,
    architecture_factory: Callable[[int], Architecture] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    engine: str = "batch",
) -> List[SweepPoint]:
    """Run the three-scheduler comparison at each frame-buffer size.

    Infeasible sizes yield points with ``rf = None`` (and the relevant
    feasibility flags cleared) rather than raising, so the caller can
    plot the feasibility frontier.

    ``jobs`` partitions the sizes over worker processes (``None``/``1``
    = serial, ``0`` = one per CPU) with identical results; each
    worker's share compiles in one :mod:`repro.schedule.batch` pass
    (``engine='reference'`` keeps the per-case scheduler).  A custom
    ``architecture_factory`` (often a closure, not picklable) forces
    the serial, uncached path.  ``cache_dir`` enables the persistent
    pipeline cache for the standard-architecture path.
    """
    words_list = [parse_size(size) for size in fb_sizes]
    if architecture_factory is None:
        workers = (
            1 if jobs in (None, 1)
            else (jobs if jobs > 0 else default_jobs())
        )
        n_chunks = max(1, min(workers, len(words_list)))
        chunks = [words_list[i::n_chunks] for i in range(n_chunks)]
        chunk_points = parallel_map(
            _sweep_chunk,
            [
                (application, clustering, chunk, cache_dir, engine)
                for chunk in chunks
            ],
            jobs=jobs,
        )
        by_words = {}
        for chunk, points in zip(chunks, chunk_points):
            by_words.update(zip(chunk, points))
        return [by_words[words] for words in words_list]
    points: List[SweepPoint] = []
    for words in words_list:
        row = compare_workload(
            application, clustering, architecture_factory(words),
            engine=engine,
        )
        points.append(_row_to_point(row, words))
    return points


def render_sweep(points: Sequence[SweepPoint], *, title: str = "") -> str:
    """Text table of a sweep."""
    lines = []
    if title:
        lines.append(title)
    header = (
        f"{'FB':>6} {'basic':>6} {'RF':>4} {'keeps':>5} {'DT':>7} "
        f"{'DS%':>6} {'CDS%':>6} {'CDS cycles':>11}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for point in points:
        if not point.ds_feasible:
            lines.append(
                f"{format_size(point.fb_words):>6} {'—':>6} "
                f"{'infeasible':>10}"
            )
            continue
        basic = "ok" if point.basic_feasible else "INF"
        ds_pct = (
            f"{point.ds_improvement_pct:5.1f}%"
            if point.ds_improvement_pct is not None else "  n/a"
        )
        cds_pct = (
            f"{point.cds_improvement_pct:5.1f}%"
            if point.cds_improvement_pct is not None else "  n/a"
        )
        lines.append(
            f"{format_size(point.fb_words):>6} {basic:>6} {point.rf:>4} "
            f"{point.kept_items:>5} {point.dt_words or 0:>7.0f} "
            f"{ds_pct:>6} {cds_pct:>6} {point.cds_cycles:>11}"
        )
    return "\n".join(lines)
