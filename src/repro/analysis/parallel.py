"""Parallel analysis driver and the schedule-plan memo cache.

The analysis layer's drivers — :func:`~repro.analysis.corpus.corpus_study`
over its seeds, :func:`~repro.analysis.sweep.sweep_fb_sizes` over its
frame-buffer sizes, and the four design ablations — are embarrassingly
parallel: every work item is an independent (workload, architecture,
options) pipeline run.  :func:`parallel_map` fans such items out over a
:class:`concurrent.futures.ProcessPoolExecutor`; each driver exposes a
``jobs`` parameter (and the CLI a ``--jobs`` flag) that routes through
it.  ``jobs=None`` or ``jobs=1`` keeps the historical serial path —
bit-for-bit, since both paths run the same top-level worker per item —
and the equivalence tests assert serial and parallel outputs are
identical.

:class:`PlanMemo` is a content-hash memo for schedule plans: the key
(:func:`plan_key`) digests the workload structure, the architecture
parameters and the schedule options, so any two pipeline runs over
identical configurations share one scheduling pass.  The DMA-policy
ablation, for example, simulates three policies over one CDS plan — with
a shared memo the plan is computed once.  Keys depend only on content,
never on object identity or enumeration order, which makes the cache
safe to use from drivers that shuffle or fan out their work.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.schedule.base import ScheduleOptions

__all__ = [
    "default_jobs",
    "parallel_map",
    "plan_key",
    "PlanMemo",
    "run_all_ablations",
    "WorkerPool",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_jobs() -> int:
    """Worker count used for ``jobs=0``: the machine's CPU count."""
    return os.cpu_count() or 1


class _MetricsWorker:
    """Wraps a worker *fn* to return ``(result, metrics snapshot)``.

    Top-level class so it pickles into :class:`ProcessPoolExecutor`
    workers.  Each call collects into the worker process's own registry
    (reset per item, so pool reuse cannot leak samples between items)
    and ships the snapshot back for the parent to merge — the
    per-worker rollup behind ``repro bench`` / ``--profile`` with
    ``--jobs``.
    """

    def __init__(self, fn: Callable[[_T], _R]):
        self.fn = fn

    def __call__(self, item: _T):
        from repro.obs import metrics

        registry = metrics.get_registry()
        registry.reset()
        previous = metrics.set_metrics_active(True)
        try:
            result = self.fn(item)
        finally:
            metrics.set_metrics_active(previous)
        return result, registry.snapshot()


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[_R]:
    """``[fn(item) for item in items]``, optionally across processes.

    ``jobs=None`` or ``jobs=1`` runs serially in-process; ``jobs=0``
    uses :func:`default_jobs`; ``jobs>1`` fans out over a
    :class:`ProcessPoolExecutor`.  Negative ``jobs`` values are
    rejected (they are always a caller bug, not a serial-mode request).
    Results are returned in item order regardless of completion order,
    so callers observe identical output either way.  *fn* and every
    item must be picklable when ``jobs>1`` (top-level functions and
    plain data only).  ``chunksize`` batches items per pool dispatch
    (forwarded to :meth:`ProcessPoolExecutor.map`) — raise it when the
    per-item work is small relative to pickling overhead, as the fuzz
    runner's seed batches are; it never changes results or their order.

    When the global metrics registry is collecting
    (:func:`repro.obs.metrics.metrics_active`), parallel runs wrap the
    worker so each item's counters/timers are snapshotted in its worker
    process and merged back into the parent registry; serial runs
    collect in-process.  Either way the *results* are identical.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 = one worker per CPU), got {jobs}"
        )
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    items = list(items)
    if jobs == 0:
        jobs = default_jobs()
    from repro.obs import metrics

    collect = metrics.metrics_active()
    if collect:
        metrics.inc("parallel.items", len(items), scope="driver")
    if jobs is None or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if collect:
        metrics.inc("parallel.fanouts", scope="driver")
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(items)))
    pairs = _drain_pool(
        pool, _MetricsWorker(fn) if collect else fn, items, chunksize
    )
    if not collect:
        return pairs
    registry = metrics.recording_registry() or metrics.get_registry()
    for _, snapshot in pairs:
        registry.merge(snapshot)
    return [result for result, _ in pairs]


def _drain_pool(
    pool: Executor, fn: Callable, items: Sequence, chunksize: int
) -> list:
    """``list(pool.map(...))`` with deterministic pool teardown.

    The historical ``with ProcessPoolExecutor(...)`` form had a
    concurrency bug in long-lived callers: when a worker raised (or the
    driver took a ``KeyboardInterrupt``) mid-map, ``__exit__`` ran
    ``shutdown(wait=True)`` *without cancelling the queued items*, so
    the pool kept executing the entire remaining workload — and kept
    its worker processes alive for that long — behind an exception the
    caller thought had aborted the run.  Here any error cancels the
    queued futures first, so workers are reaped as soon as their
    in-flight item finishes.
    """
    try:
        results = list(pool.map(fn, items, chunksize=chunksize))
    except BaseException:
        pool.shutdown(wait=True, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return results


class WorkerPool:
    """A persistent :func:`parallel_map`-style worker pool.

    ``parallel_map`` spins an executor up and down per call — right for
    batch drivers, wasteful for a long-lived caller dispatching many
    small units.  The scheduler service keeps one ``WorkerPool`` for
    its whole lifetime and fans requests out over it; ``close()`` (or
    the context manager) reaps the workers, cancelling anything still
    queued.

    Args:
        jobs: worker count (``0``/``None`` = one per CPU).
        mode: ``"process"`` (default) — true parallelism, work and
            results must pickle; ``"thread"`` — in-process workers, no
            pickling, suitable for I/O-bound or cache-hit-dominated
            loads and for tests.
    """

    def __init__(
        self, *, jobs: Optional[int] = None, mode: str = "process"
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ValueError(
                f"jobs must be >= 0 (0 = one worker per CPU), got {jobs}"
            )
        self.jobs = jobs if jobs else default_jobs()
        self.mode = mode
        if mode == "process":
            self._executor: Executor = ProcessPoolExecutor(
                max_workers=self.jobs
            )
        elif mode == "thread":
            self._executor = ThreadPoolExecutor(max_workers=self.jobs)
        else:
            raise ValueError(
                f"unknown mode {mode!r}; expected 'process' or 'thread'"
            )

    @property
    def executor(self) -> Executor:
        """The underlying executor (for ``loop.run_in_executor``)."""
        return self._executor

    def submit(self, fn: Callable[..., _R], *args) -> "Future[_R]":
        """Schedule one call; returns its ``concurrent.futures.Future``."""
        return self._executor.submit(fn, *args)

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        chunksize: int = 1,
    ) -> List[_R]:
        """:func:`parallel_map` over this pool's persistent workers.

        Unlike :func:`parallel_map` the pool survives the call; an
        error still cancels this map's queued items (the result
        iterator cancels its remaining futures when the exception
        unwinds), so a failed map cannot keep the shared workers busy
        behind later callers.
        """
        items = list(items)
        if not items:
            return []
        return list(self._executor.map(fn, items, chunksize=chunksize))

    def close(self) -> None:
        """Reap the workers; queued-but-unstarted work is cancelled."""
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- content-hash schedule-plan memo -------------------------------------


def plan_key(
    scheduler_name: str,
    application: Application,
    clustering: Clustering,
    architecture: Architecture,
    options: ScheduleOptions,
) -> str:
    """Content hash identifying one scheduling problem.

    Equal keys guarantee byte-identical schedules: every input the
    schedulers read — workload structure, architecture parameters,
    options — is digested; object identities and discovery order are
    not.  The canonical fingerprints live in :mod:`repro.cache.keys`,
    shared with the persistent on-disk store.
    """
    from repro.cache.keys import (
        arch_fingerprint,
        digest,
        options_fingerprint,
        workload_fingerprint,
    )

    return digest((
        scheduler_name,
        workload_fingerprint(application, clustering),
        arch_fingerprint(architecture),
        options_fingerprint(options),
    ))


class PlanMemo:
    """Schedule-plan cache keyed by :func:`plan_key`.

    One memo is process-local (it is not shared across
    :func:`parallel_map` workers); drivers create one per fan-out unit
    so repeated identical configurations inside that unit — e.g. the
    DMA-policy ablation's one plan simulated under three policies —
    schedule once.

    The cached :class:`~repro.schedule.plan.Schedule` references the
    application/clustering objects of the *first* call that computed
    it; since equal keys imply structurally identical workloads, every
    downstream consumer (codegen, allocation, simulation) produces
    identical results either way.
    """

    def __init__(self) -> None:
        self._plans: dict = {}
        self.hits = 0
        self.misses = 0

    def schedule(
        self,
        scheduler_cls,
        application: Application,
        clustering: Clustering,
        architecture: Architecture,
        *,
        options: Optional[ScheduleOptions] = None,
    ):
        """The scheduler's plan for this configuration, memoised.

        Infeasible configurations are *not* cached — the scheduler's
        exception propagates and a retry recomputes.
        """
        options = options or ScheduleOptions()
        key = plan_key(
            scheduler_cls.name, application, clustering, architecture,
            options,
        )
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            plan = scheduler_cls(architecture, options).schedule(
                application, clustering
            )
            self._plans[key] = plan
        else:
            self.hits += 1
        return plan


# -- ablation fan-out ----------------------------------------------------

_ABLATION_KINDS = ("keep", "rf", "dma", "cross")


def _ablation_worker(task) -> list:
    """Run one ablation family on one experiment (top-level: picklable).

    ``ExperimentSpec`` carries a builder callable, so tasks ship the
    experiment *id* and the worker re-resolves it.
    """
    spec_id, kind, cache_dir = task
    from repro.analysis.ablation import (
        cross_set_ablation,
        dma_policy_ablation,
        keep_policy_ablation,
        rf_policy_ablation,
    )
    from repro.workloads.spec import paper_experiments

    cache = None
    if cache_dir is not None:
        from repro.cache import CacheStore

        cache = CacheStore(cache_dir)
    functions = {
        "keep": keep_policy_ablation,
        "rf": rf_policy_ablation,
        "dma": dma_policy_ablation,
        "cross": cross_set_ablation,
    }
    for spec in paper_experiments():
        if spec.id == spec_id:
            return functions[kind](spec, cache=cache)
    raise ValueError(f"unknown experiment {spec_id!r}")


def run_all_ablations(
    spec,
    *,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> list:
    """All four design ablations of one experiment, optionally parallel.

    Result order is fixed (keep, rf, dma, cross-set — each family's
    variants in its own order) independent of *jobs*.  ``cache_dir``
    enables the persistent pipeline cache in every worker.
    """
    groups = parallel_map(
        _ablation_worker,
        [(spec.id, kind, cache_dir) for kind in _ABLATION_KINDS],
        jobs=jobs,
    )
    return [result for group in groups for result in group]
