"""The greedy-vs-exact optimality gap table (``repro gap``).

The paper's Table 1 reports what the greedy Complete Data Scheduler
achieves; this driver reports what it *leaves on the table*.  Every
workload — the Table-1 experiments, the pinned reproducers under
``tests/corpus/``, and optionally a sweep of seeded random workloads —
is scheduled by both the greedy CDS and the exact branch-and-bound
solver (:mod:`repro.schedule.exact`), and the row records the traffic
words each moves, the gap between them, and whether the exact search
ran to completion within its budget.

A row is **sound** when the two schedulers agree on feasibility (with
byte-identical infeasibility payloads up to the scheduler-name prefix)
and exact traffic does not exceed greedy traffic.  An unsound row is a
bug in one of the schedulers — the driver exits non-zero on it, and
the ``exactgap`` fuzz oracle continuously sweeps the same assertion.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.params import Architecture
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.errors import InfeasibleScheduleError
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.exact import DEFAULT_MAX_NODES, ExactDataScheduler
from repro.units import SizeLike, parse_size
from repro.workloads.random_gen import random_application
from repro.workloads.spec import ExperimentSpec, paper_experiments

__all__ = ["GapRow", "build_gap_table", "render_gap_table", "gap_table_json"]


@dataclass(frozen=True)
class GapRow:
    """Greedy vs exact on one workload."""

    name: str
    source: str  # "paper" | "corpus" | "seed"
    feasible: bool
    sound: bool
    unsound_reason: str
    greedy_rf: int
    exact_rf: int
    greedy_keeps: int
    exact_keeps: int
    greedy_traffic_words: int
    exact_traffic_words: int
    nodes: int
    complete: bool
    infeasible_reason: str = ""

    @property
    def gap_words(self) -> int:
        return self.greedy_traffic_words - self.exact_traffic_words

    @property
    def gap_pct(self) -> float:
        if self.greedy_traffic_words == 0:
            return 0.0
        return 100.0 * self.gap_words / self.greedy_traffic_words

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "source": self.source,
            "feasible": self.feasible,
            "sound": self.sound,
            "unsound_reason": self.unsound_reason,
            "greedy_rf": self.greedy_rf,
            "exact_rf": self.exact_rf,
            "greedy_keeps": self.greedy_keeps,
            "exact_keeps": self.exact_keeps,
            "greedy_traffic_words": self.greedy_traffic_words,
            "exact_traffic_words": self.exact_traffic_words,
            "gap_words": self.gap_words,
            "gap_pct": round(self.gap_pct, 3),
            "nodes": self.nodes,
            "complete": self.complete,
            "infeasible_reason": self.infeasible_reason,
        }


def _strip_prefix(message: str, scheduler: str) -> str:
    prefix = f"{scheduler}: "
    return message[len(prefix):] if message.startswith(prefix) else message


def gap_for_workload(
    application: Application,
    clustering: Clustering,
    architecture: Architecture,
    *,
    name: str,
    source: str,
    max_nodes: int = DEFAULT_MAX_NODES,
    budget_ms: Optional[float] = None,
) -> GapRow:
    """Schedule one workload with greedy CDS and the exact solver."""
    dataflow = analyze_dataflow(application, clustering)
    greedy = CompleteDataScheduler(architecture)
    exact = ExactDataScheduler(
        architecture, max_nodes=max_nodes, budget_ms=budget_ms
    )

    def attempt(scheduler):
        try:
            return (
                scheduler.schedule(
                    application, clustering, dataflow=dataflow
                ),
                None,
            )
        except InfeasibleScheduleError as exc:
            return None, exc

    greedy_schedule, greedy_error = attempt(greedy)
    exact_schedule, exact_error = attempt(exact)

    if greedy_schedule is None or exact_schedule is None:
        sound = (greedy_schedule is None) == (exact_schedule is None)
        reason = "" if sound else "feasibility verdicts diverge"
        if sound:
            got = (
                _strip_prefix(str(exact_error), "exact"),
                exact_error.cluster, exact_error.required,
                exact_error.available,
            )
            want = (
                _strip_prefix(str(greedy_error), "cds"),
                greedy_error.cluster, greedy_error.required,
                greedy_error.available,
            )
            if got != want:
                sound = False
                reason = "infeasibility payloads diverge"
        return GapRow(
            name=name, source=source, feasible=False, sound=sound,
            unsound_reason=reason,
            greedy_rf=0, exact_rf=0, greedy_keeps=0, exact_keeps=0,
            greedy_traffic_words=0, exact_traffic_words=0,
            nodes=0, complete=True,
            infeasible_reason=str(greedy_error or exact_error),
        )

    greedy_summary = greedy_schedule.summary()
    exact_summary = exact_schedule.summary()
    greedy_total = (
        greedy_summary.total_data_words + greedy_summary.total_context_words
    )
    exact_total = (
        exact_summary.total_data_words + exact_summary.total_context_words
    )
    solution = exact.last_solution
    sound = True
    reason = ""
    if exact_total > greedy_total:
        sound = False
        reason = (
            f"greedy beats exact by {exact_total - greedy_total} words"
        )
    elif solution.traffic_words != exact_total:
        sound = False
        reason = (
            f"traffic model ({solution.traffic_words}) diverges from "
            f"the materialised schedule ({exact_total})"
        )
    elif solution.greedy_traffic_words != greedy_total:
        sound = False
        reason = (
            f"greedy mirror ({solution.greedy_traffic_words}) diverges "
            f"from the CDS schedule ({greedy_total})"
        )
    return GapRow(
        name=name, source=source, feasible=True, sound=sound,
        unsound_reason=reason,
        greedy_rf=greedy_schedule.rf, exact_rf=exact_schedule.rf,
        greedy_keeps=len(greedy_schedule.keeps),
        exact_keeps=len(exact_schedule.keeps),
        greedy_traffic_words=greedy_total,
        exact_traffic_words=exact_total,
        nodes=solution.nodes, complete=solution.complete,
    )


def _corpus_workloads(corpus_dir: str) -> List[Tuple[str, object]]:
    from repro.fuzz.case import FuzzCase

    entries = []
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        entries.append((path.stem, FuzzCase.load(path)))
    return entries


def build_gap_table(
    specs: Optional[Sequence[ExperimentSpec]] = None,
    *,
    seeds: int = 0,
    fb: SizeLike = "4K",
    iterations: int = 6,
    corpus_dir: Optional[str] = "tests/corpus",
    max_nodes: int = DEFAULT_MAX_NODES,
    budget_ms: Optional[float] = None,
) -> List[GapRow]:
    """Gap rows for the paper experiments, the pinned corpus, and an
    optional sweep of seeded random workloads."""
    rows: List[GapRow] = []
    for spec in (specs if specs is not None else paper_experiments()):
        application, clustering = spec.build()
        rows.append(gap_for_workload(
            application, clustering, Architecture.m1(spec.fb_words),
            name=spec.id, source="paper",
            max_nodes=max_nodes, budget_ms=budget_ms,
        ))
    if corpus_dir:
        for stem, case in _corpus_workloads(corpus_dir):
            application, clustering = case.build()
            rows.append(gap_for_workload(
                application, clustering, case.architecture(),
                name=stem, source="corpus",
                max_nodes=max_nodes, budget_ms=budget_ms,
            ))
    fb_words = parse_size(fb)
    architecture = Architecture.m1(fb_words)
    for seed in range(seeds):
        application, clustering = random_application(
            seed, iterations=iterations
        )
        rows.append(gap_for_workload(
            application, clustering, architecture,
            name=f"seed-{seed}", source="seed",
            max_nodes=max_nodes, budget_ms=budget_ms,
        ))
    return rows


def render_gap_table(rows: Sequence[GapRow]) -> str:
    """Fixed-width table alongside Table 1's conventions."""
    header = (
        f"{'workload':<28} {'src':<6} {'RFg':>4} {'RFx':>4} "
        f"{'Kg':>3} {'Kx':>3} {'greedy':>10} {'exact':>10} "
        f"{'gap':>8} {'gap%':>7}  status"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if not row.feasible:
            status = "infeasible" if row.sound else (
                f"UNSOUND: {row.unsound_reason}"
            )
            lines.append(
                f"{row.name:<28} {row.source:<6} {'-':>4} {'-':>4} "
                f"{'-':>3} {'-':>3} {'-':>10} {'-':>10} {'-':>8} "
                f"{'-':>7}  {status}"
            )
            continue
        if not row.sound:
            status = f"UNSOUND: {row.unsound_reason}"
        elif not row.complete:
            status = f"budget ({row.nodes} nodes)"
        elif row.gap_words:
            status = "greedy suboptimal"
        else:
            status = "optimal"
        lines.append(
            f"{row.name:<28} {row.source:<6} {row.greedy_rf:>4} "
            f"{row.exact_rf:>4} {row.greedy_keeps:>3} {row.exact_keeps:>3} "
            f"{row.greedy_traffic_words:>10} {row.exact_traffic_words:>10} "
            f"{row.gap_words:>8} {row.gap_pct:>6.2f}%  {status}"
        )
    feasible = [row for row in rows if row.feasible]
    with_gap = [row for row in feasible if row.gap_words > 0]
    unsound = [row for row in rows if not row.sound]
    lines.append("")
    lines.append(
        f"{len(rows)} workloads: {len(feasible)} feasible, "
        f"{len(with_gap)} with a greedy optimality gap, "
        f"{len(unsound)} unsound"
    )
    return "\n".join(lines)


def gap_table_json(rows: Sequence[GapRow]) -> str:
    """The JSON artifact ``make gap-check`` publishes."""
    feasible = [row for row in rows if row.feasible]
    payload = {
        "rows": [row.to_dict() for row in rows],
        "summary": {
            "workloads": len(rows),
            "feasible": len(feasible),
            "with_gap": sum(1 for row in feasible if row.gap_words > 0),
            "unsound": sum(1 for row in rows if not row.sound),
            "total_gap_words": sum(row.gap_words for row in feasible),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
