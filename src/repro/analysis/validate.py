"""One-call schedule validation: every checker in the repository.

``validate_schedule`` takes a schedule and runs the full gauntlet:

1. static program verification (use-before-load, context residency,
   store completeness);
2. the Figure-4 allocator on both frame-buffer sets, with offline
   overlap re-verification and capacity checks;
3. a timing simulation, cross-checked against the schedule's static
   traffic accounting;
4. a functional simulation, cross-checked against a direct reference
   execution of the application.

Returns a :class:`ValidationReport`; raises the first underlying error
when ``raise_on_error`` is set.  This is the harness downstream users
should run after modifying any scheduler component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.errors import ReproError
from repro.schedule.plan import Schedule, TransferSummary
from repro.sim.engine import Simulator
from repro.sim.report import SimulationReport

__all__ = ["ValidationReport", "validate_schedule"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_schedule`."""

    schedule: Schedule
    ok: bool = True
    checks_passed: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    timing_report: Optional[SimulationReport] = None
    functional_report: Optional[SimulationReport] = None

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"validation of schedule[{self.schedule.scheduler}] on "
            f"{self.schedule.application.name!r}: {status}"
        ]
        for check in self.checks_passed:
            lines.append(f"  [pass] {check}")
        for failure in self.failures:
            lines.append(f"  [FAIL] {failure}")
        return "\n".join(lines)


def validate_schedule(
    schedule: Schedule,
    architecture: Optional[Architecture] = None,
    *,
    functional: bool = True,
    raise_on_error: bool = False,
) -> ValidationReport:
    """Run every checker against *schedule*.

    Args:
        schedule: the schedule to validate.
        architecture: target; defaults to an M1 with the schedule's
            frame-buffer set size (cross-set schedules need the real
            architecture passed in).
        functional: also run the value-level simulation (slower).
        raise_on_error: re-raise the first failure instead of recording.
    """
    if architecture is None:
        architecture = Architecture.m1(
            schedule.fb_set_words,
            fb_cross_set_access=any(
                True for keep in schedule.keeps
                for consumers in [getattr(keep, "clusters", None)
                                  or keep.consumer_clusters]
                if any(
                    schedule.clustering[c].fb_set != keep.fb_set
                    for c in consumers
                )
            ),
        )
    report = ValidationReport(schedule=schedule)

    def run_check(name: str, action) -> bool:
        try:
            action()
        except ReproError as exc:
            report.ok = False
            report.failures.append(f"{name}: {exc}")
            if raise_on_error:
                raise
            return False
        report.checks_passed.append(name)
        return True

    program_holder = {}

    def lower_and_verify():
        program_holder["program"] = generate_program(schedule)
        verify_program(program_holder["program"])

    run_check("static program verification", lower_and_verify)
    program = program_holder.get("program")

    def allocate():
        for fb_set in (0, 1):
            allocation = FrameBufferAllocator(schedule).allocate_set(fb_set)
            allocation.verify()
            if allocation.peak_words > architecture.fb_set_words:
                raise ReproError(
                    f"set {fb_set} peak {allocation.peak_words} exceeds "
                    f"{architecture.fb_set_words}"
                )

    run_check("frame-buffer allocation (both sets)", allocate)

    if program is not None:
        def timing():
            simulation = Simulator(MorphoSysM1(architecture)).run(program)
            report.timing_report = simulation
            summary = TransferSummary.from_schedule(schedule)
            if simulation.data_load_words != summary.total_data_loaded_words:
                raise ReproError(
                    f"load words: simulated {simulation.data_load_words}, "
                    f"accounted {summary.total_data_loaded_words}"
                )
            if simulation.data_store_words != summary.total_data_stored_words:
                raise ReproError(
                    f"store words: simulated {simulation.data_store_words}, "
                    f"accounted {summary.total_data_stored_words}"
                )

        run_check("timing simulation vs static accounting", timing)

        if functional:
            def run_functional():
                machine = MorphoSysM1(architecture, functional=True)
                simulation = Simulator(machine).run(
                    program, functional=True
                )
                report.functional_report = simulation
                if simulation.functional_verified is not True:
                    raise ReproError("functional verification did not run")

            run_check("functional simulation vs reference", run_functional)
    return report
