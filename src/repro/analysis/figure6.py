"""Regeneration of the paper's Figure 6: relative execution improvement
(%) of the Data Scheduler and the Complete Data Scheduler over the
Basic Scheduler, for every experiment."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.ascii_chart import hbar_chart
from repro.analysis.table1 import Table1Row, build_table1
from repro.workloads.spec import ExperimentSpec

__all__ = ["figure6_rows", "render_figure6"]


def figure6_rows(
    specs: Optional[Sequence[ExperimentSpec]] = None,
) -> List[Tuple[str, Optional[float], Optional[float]]]:
    """``(experiment, DS%, CDS%)`` for every experiment.

    ``None`` marks an infeasible schedule (cannot happen for DS/CDS at
    the paper's sizes, but kept for robustness).
    """
    table = build_table1(specs)
    return [
        (row.id, row.measured_ds_pct, row.measured_cds_pct)
        for row in table
    ]


def render_figure6(
    rows: Optional[Sequence[Tuple[str, Optional[float], Optional[float]]]] = None,
) -> str:
    """ASCII bar chart in the style of the paper's Figure 6 (the paper
    shows CDS and DS bars side by side per experiment)."""
    rows = list(rows) if rows is not None else figure6_rows()
    chart_rows = [
        (experiment, (cds_pct, ds_pct))
        for experiment, ds_pct, cds_pct in rows
    ]
    chart = hbar_chart(
        chart_rows,
        series_labels=("CDS (Complete Data Scheduler)", "DS (Data Scheduler)"),
        series_marks=("#", "="),
        max_value=100.0,
    )
    return (
        "Figure 6: relative execution improvement over the Basic "
        "Scheduler\n" + chart
    )
