"""Head-to-head comparison of the three schedulers on one workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.core.application import Application
from repro.core.cluster import Clustering
from repro.core.dataflow import analyze_dataflow
from repro.core.metrics import total_data_size
from repro.errors import InfeasibleScheduleError
from repro.obs.metrics import time_stage
from repro.schedule.base import DataSchedulerBase, ScheduleOptions
from repro.schedule.basic import BasicScheduler
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.plan import Schedule
from repro.sim.engine import Simulator
from repro.sim.report import SimulationReport
from repro.workloads.spec import ExperimentSpec

__all__ = [
    "SchedulerOutcome",
    "ComparisonRow",
    "run_pipeline_batch",
    "compare_workload",
    "compare_workloads",
    "compare_experiment",
]

_SCHEDULER_NAMES = ("basic", "ds", "cds")


@dataclass(frozen=True)
class SchedulerOutcome:
    """One scheduler's result on one workload.

    ``schedule``/``report`` are ``None`` when infeasible;
    ``error`` then carries the structured
    :class:`~repro.errors.InfeasibleScheduleError` (cluster name,
    required/available word counts) behind the rendered
    ``infeasible_reason`` — the service layer serves those numbers to
    clients, and the exception pickles with its fields intact so
    cached and worker-shipped outcomes keep them.
    """

    scheduler: str
    feasible: bool
    schedule: Optional[Schedule] = None
    report: Optional[SimulationReport] = None
    infeasible_reason: str = ""
    # compare=False: exceptions compare by identity, which would break
    # outcome equality (serial vs parallel, cached vs fresh); the
    # rendered reason string participates instead.
    error: Optional[InfeasibleScheduleError] = field(
        default=None, compare=False
    )

    @property
    def rf(self) -> Optional[int]:
        return self.schedule.rf if self.schedule else None

    @property
    def total_cycles(self) -> Optional[int]:
        return self.report.total_cycles if self.report else None

    @property
    def data_words(self) -> Optional[int]:
        return self.report.data_words if self.report else None

    def improvement_over(self, baseline: "SchedulerOutcome") -> Optional[float]:
        """Relative execution improvement (%) over *baseline*; ``None``
        if either run was infeasible."""
        if self.report is None or baseline.report is None:
            return None
        return 100.0 * self.report.improvement_over(baseline.report)

    def for_transport(self) -> "SchedulerOutcome":
        """A copy stripped for pickling across process/cache boundaries.

        The decision trace is process-local observability data
        (``compare=False``, often megabytes on traced runs); shipping
        it through worker pools or the persistent cache buys nothing —
        the receiving side compares equal either way.  Untraced
        outcomes (every driver default) return ``self`` unchanged.
        """
        schedule = self.schedule
        if schedule is None or schedule.decisions is None:
            return self
        return SchedulerOutcome(
            scheduler=self.scheduler,
            feasible=self.feasible,
            schedule=schedule.without_decisions(),
            report=self.report,
            infeasible_reason=self.infeasible_reason,
            error=self.error,
        )


@dataclass(frozen=True)
class ComparisonRow:
    """All three schedulers on one workload at one architecture."""

    workload: str
    architecture: str
    fb_words: int
    n_clusters: int
    max_kernels_per_cluster: int
    total_data_words: int
    basic: SchedulerOutcome
    ds: SchedulerOutcome
    cds: SchedulerOutcome

    @property
    def ds_improvement_pct(self) -> Optional[float]:
        """The paper's ``DS`` column (vs the Basic Scheduler)."""
        return self.ds.improvement_over(self.basic)

    @property
    def cds_improvement_pct(self) -> Optional[float]:
        """The paper's ``CDS`` column (vs the Basic Scheduler)."""
        return self.cds.improvement_over(self.basic)

    @property
    def dt_words(self) -> Optional[int]:
        """The paper's ``DT`` column: data transfers avoided per
        iteration by the Complete Data Scheduler relative to the Data
        Scheduler's (and Basic's) traffic."""
        if self.cds.report is None or self.ds.report is None:
            return None
        iterations = None
        if self.cds.schedule is not None:
            iterations = self.cds.schedule.application.total_iterations
        if not iterations:
            return None
        avoided = self.ds.report.data_words - self.cds.report.data_words
        return avoided // iterations

    @property
    def rf(self) -> Optional[int]:
        """The reuse factor achieved (DS and CDS agree by construction;
        reported from CDS)."""
        return self.cds.rf if self.cds.feasible else self.ds.rf


def run_scheduler(
    scheduler: DataSchedulerBase,
    application: Application,
    clustering: Clustering,
    architecture: Architecture,
    *,
    trace: bool = True,
    dataflow=None,
    cache=None,
    codegen_engine: str = "auto",
) -> SchedulerOutcome:
    """Schedule, lower, simulate; package the outcome.

    ``trace=False`` skips recording the per-transfer DMA trace; the
    report's aggregate statistics are identical.
    ``codegen_engine`` selects the program-generation backend
    (``auto``/``templated``/``reference``); the backends are
    byte-identical, so the outcome does not depend on it.

    *cache* (a :class:`~repro.cache.CacheStore`) memoizes the whole
    outcome — including infeasible verdicts — across processes and
    runs, keyed by :func:`~repro.cache.keys.outcome_key`.  Cached and
    freshly computed outcomes are byte-identical (equivalence-tested):
    every pipeline input is digested into the key, so a hit can only
    replay the exact same computation.

    Each pipeline stage reports into the observability metrics registry
    (scope ``pipeline.<scheduler>``) when collection is on — a no-op
    flag check otherwise.
    """
    key = None
    if cache is not None:
        from repro.cache import outcome_key

        key = outcome_key(
            scheduler.name, application, clustering, architecture,
            options=scheduler.options, trace=trace,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    scope = f"pipeline.{scheduler.name}"
    try:
        with time_stage("schedule", scope=scope):
            schedule = scheduler.schedule(
                application, clustering, dataflow=dataflow
            )
    except InfeasibleScheduleError as exc:
        outcome = SchedulerOutcome(
            scheduler=scheduler.name,
            feasible=False,
            infeasible_reason=str(exc),
            error=exc,
        )
        if cache is not None:
            cache.put(key, outcome)
        return outcome
    with time_stage("codegen", scope=scope):
        program = generate_program(schedule, engine=codegen_engine)
    machine = MorphoSysM1(architecture)
    with time_stage("simulate", scope=scope):
        report = Simulator(machine, trace=trace).run(program)
    outcome = SchedulerOutcome(
        scheduler=scheduler.name,
        feasible=True,
        schedule=schedule,
        report=report,
    )
    if cache is not None:
        cache.put(key, outcome.for_transport())
    return outcome


def run_pipeline_batch(
    items,
    *,
    trace: bool = True,
    cache=None,
    engine: str = "batch",
) -> list:
    """The batch front-end shared by the corpus/sweep/fuzz drivers.

    *items* is a sequence of ``(scheduler_name, application, clustering,
    architecture, options, dataflow)`` pipeline problems.  Cache hits
    (same :func:`~repro.cache.keys.outcome_key` as
    :func:`run_scheduler`) skip everything; the misses are compiled in
    **one** :func:`repro.schedule.batch.compile_many` call under
    *engine*, then lowered and simulated per case.  Outcomes — cached,
    batch-compiled, or reference-compiled — are byte-identical to
    :func:`run_scheduler`'s, so drivers can batch freely without
    changing any result (equivalence-tested in
    ``tests/schedule/test_batch_equivalence.py``).

    Scheduling time lands in metrics scope ``batch`` (per-stage:
    layout/rf/keeps/finalize); codegen and simulation keep the
    per-scheduler ``pipeline.<name>`` scopes of the per-case path.
    """
    from repro.schedule.batch import CompileRequest, compile_many

    # `--engine reference` reverts the whole cold path, codegen
    # included; any other engine pairs the batch scheduler with the
    # templated backend.
    codegen_engine = "reference" if engine == "reference" else "auto"
    outcomes: list = [None] * len(items)
    keys: list = [None] * len(items)
    misses: list = []
    if cache is not None:
        from repro.cache import outcome_key

        for index, (name, application, clustering, architecture,
                    options, dataflow) in enumerate(items):
            keys[index] = outcome_key(
                name, application, clustering, architecture,
                options=options or ScheduleOptions(), trace=trace,
            )
            cached = cache.get(keys[index])
            if cached is not None:
                outcomes[index] = cached
            else:
                misses.append(index)
    else:
        misses = list(range(len(items)))

    requests = [
        CompileRequest(
            scheduler=items[index][0],
            application=items[index][1],
            architecture=items[index][3],
            clustering=items[index][2],
            options=items[index][4],
            dataflow=items[index][5],
        )
        for index in misses
    ]
    results = compile_many(requests, engine=engine)
    for index, result in zip(misses, results):
        name, _, _, architecture, _, _ = items[index]
        if result.error is not None:
            outcome = SchedulerOutcome(
                scheduler=name,
                feasible=False,
                infeasible_reason=str(result.error),
                error=result.error,
            )
        else:
            scope = f"pipeline.{name}"
            with time_stage("codegen", scope=scope):
                program = generate_program(
                    result.schedule, engine=codegen_engine
                )
            machine = MorphoSysM1(architecture)
            with time_stage("simulate", scope=scope):
                report = Simulator(machine, trace=trace).run(program)
            outcome = SchedulerOutcome(
                scheduler=name,
                feasible=True,
                schedule=result.schedule,
                report=report,
            )
        if cache is not None:
            cache.put(keys[index], outcome.for_transport())
        outcomes[index] = outcome
    return outcomes


def _assemble_row(workload_name, architecture, clustering, dataflow,
                  basic, ds, cds) -> ComparisonRow:
    return ComparisonRow(
        workload=workload_name,
        architecture=architecture.name,
        fb_words=architecture.fb_set_words,
        n_clusters=len(clustering),
        max_kernels_per_cluster=max(clustering.sizes()),
        total_data_words=total_data_size(dataflow),
        basic=basic,
        ds=ds,
        cds=cds,
    )


def compare_workloads(
    workloads,
    *,
    options: Optional[ScheduleOptions] = None,
    trace: bool = True,
    cache=None,
    engine: str = "batch",
) -> list:
    """Batched :func:`compare_workload`: one row per ``(application,
    clustering, architecture, name)`` entry, all scheduling problems
    compiled in one batch."""
    prepared = [
        (application, clustering, architecture, name,
         analyze_dataflow(application, clustering))
        for application, clustering, architecture, name in workloads
    ]
    items = [
        (scheduler, application, clustering, architecture, options, dataflow)
        for application, clustering, architecture, _, dataflow in prepared
        for scheduler in _SCHEDULER_NAMES
    ]
    outcomes = run_pipeline_batch(
        items, trace=trace, cache=cache, engine=engine
    )
    rows = []
    for index, (application, clustering, architecture, name,
                dataflow) in enumerate(prepared):
        basic, ds, cds = outcomes[3 * index: 3 * index + 3]
        rows.append(_assemble_row(
            name or application.name, architecture, clustering, dataflow,
            basic, ds, cds,
        ))
    return rows


def compare_workload(
    application: Application,
    clustering: Clustering,
    architecture: Architecture,
    *,
    options: Optional[ScheduleOptions] = None,
    workload_name: Optional[str] = None,
    trace: bool = True,
    cache=None,
    engine: str = "batch",
) -> ComparisonRow:
    """Run Basic, DS and CDS on one workload and collect the row.

    ``engine='batch'`` (default) compiles the three scheduling problems
    through the structure-of-arrays batch engine;
    ``engine='reference'`` runs the historical per-case scheduler
    path.  Both produce byte-identical rows.
    """
    if engine == "batch":
        return compare_workloads(
            [(application, clustering, architecture, workload_name)],
            options=options, trace=trace, cache=cache, engine=engine,
        )[0]
    if engine != "reference":
        raise ValueError(f"unknown engine {engine!r}")
    dataflow = analyze_dataflow(application, clustering)
    basic = run_scheduler(
        BasicScheduler(architecture, options), application, clustering,
        architecture, trace=trace, dataflow=dataflow, cache=cache,
        codegen_engine="reference",
    )
    ds = run_scheduler(
        DataScheduler(architecture, options), application, clustering,
        architecture, trace=trace, dataflow=dataflow, cache=cache,
        codegen_engine="reference",
    )
    cds = run_scheduler(
        CompleteDataScheduler(architecture, options), application, clustering,
        architecture, trace=trace, dataflow=dataflow, cache=cache,
        codegen_engine="reference",
    )
    return _assemble_row(
        workload_name or application.name, architecture, clustering,
        dataflow, basic, ds, cds,
    )


def compare_experiment(
    spec: ExperimentSpec,
    *,
    options: Optional[ScheduleOptions] = None,
) -> ComparisonRow:
    """Run one Table-1 experiment at its paper frame-buffer size."""
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    return compare_workload(
        application, clustering, architecture,
        options=options, workload_name=spec.id,
    )
