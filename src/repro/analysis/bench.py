"""``repro bench``: timing the compile pipeline, stage by stage.

The schedulers run at compile time, so their own cost is a product
metric.  This module times each pipeline stage — dataflow analysis, CDS
scheduling, allocation, code generation, verification, lint, and
simulation — over the bundled paper experiments, plus two scalability
configurations matching ``benchmarks/test_scalability.py``'s largest
cases:

* ``cds_large``: Complete-Data-Scheduler scheduling of a 32-cluster /
  64-iteration random workload on a 16K frame buffer;
* ``corpus``: the full three-scheduler corpus study over 20 seeded
  workloads at 16K / 48 iterations;
* ``corpus_cached``: the same corpus study served warm from the
  persistent pipeline cache (one cold run fills a temporary cache
  directory, then the warm rerun is timed — the ``cache`` payload
  section records both and the warm speedup);
* ``schedule_batch``: the structure-of-arrays batch compiler over 100
  corpus-shaped workloads x three schedulers (dataflow precomputed, so
  the sample isolates scheduling itself); the ``batch`` payload
  section also times the same 300 problems on the reference per-case
  schedulers and records the cold-path speedup ratio;
* ``corpus_cold_batch``: the end-to-end corpus study with
  ``engine='batch'`` — schedulers plus codegen, simulation and hazard
  analysis, so the ratio over ``corpus`` shows what batch compile buys
  the whole driver rather than the scheduling stage alone;
* ``service_p50`` / ``service_p99``: request-latency percentiles of a
  self-hosted scheduler-service loadgen campaign
  (:func:`repro.service.bench.run_service_bench`) — the full payload
  is embedded under ``"service"`` and exported as
  ``BENCH_service.json`` via ``repro bench --service-output``.

The ``simulate`` stage times the analysis drivers' hot path — the
vectorized timeline evaluator with tracing and re-verification off;
``simulate_traced`` times the default interactive configuration (full
per-transfer trace + program verification) on the reference engine.
The ``codegen``/``verify`` stages are pinned to the reference codegen
backend for cross-baseline continuity; ``codegen_templated`` and
``verify_fast`` time the template-compiled generator (with full visit
materialization forced) and the vectorized fast-verification path the
drivers now default to.  ``repro bench --profile-stages`` skips the
timed run and prints a cProfile breakdown per stage instead
(:func:`profile_stages`).

Every sample is a **best-of-N** wall-clock measurement (minimum over
*N* runs), which is robust against scheduler noise on loaded machines.
Results are written as ``BENCH_pipeline.json``; the copy committed at
the repository root is the perf trajectory's current point and the
regression baseline the CI quick-mode job compares against.  The
pre-overhaul timings are embedded here (:data:`PRE_PR_BASELINE`) as
the trajectory's fixed origin; ``repro bench --baseline <file>`` /
``--update-baseline`` swap in a recorded baseline file instead, so
future optimisation PRs re-anchor the speedup column without editing
source.
"""

from __future__ import annotations

import json
import tempfile
import time
from typing import Callable, Dict, List, Optional

from repro.alloc.allocator import FrameBufferAllocator
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.core.dataflow import analyze_dataflow
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator
from repro.workloads.random_gen import random_application
from repro.workloads.spec import paper_experiments

__all__ = [
    "PRE_PR_BASELINE",
    "STAGES",
    "baseline_payload",
    "load_baseline",
    "run_bench",
    "compare_bench",
    "profile_stages",
    "render_bench",
]

#: Pipeline timings measured on this codebase immediately before the
#: performance overhaul (incremental occupancy engine, bisect free
#: list, trace-free simulation fast path), same harness and configs.
PRE_PR_BASELINE: Dict[str, object] = {
    "scalability": {
        "cds_large": 0.013037096000061865,
        "corpus": 0.5555225509997399,
    },
    "stages": {
        "dataflow": 0.0007356020005317987,
        "cds": 0.005649131998325174,
        "alloc": 0.007846667001103924,
        "codegen": 0.025250435999168985,
        "verify": 0.007920801998352545,
        "lint": 0.004712210999969102,
        "simulate": 0.03211609999925713,
    },
}

STAGES = (
    "dataflow", "cds", "alloc", "codegen", "codegen_templated", "verify",
    "verify_fast", "lint", "simulate", "simulate_traced",
)


def load_baseline(path: str) -> Dict[str, object]:
    """Read a recorded baseline file (``--baseline``).

    Accepts either a bare baseline blob (``{"stages": ..,
    "scalability": ..}``) or a full ``BENCH_pipeline.json`` payload —
    the two sections the speedup column needs are extracted either
    way.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    baseline = {
        "stages": data.get("stages") or {},
        "scalability": data.get("scalability") or {},
    }
    if not baseline["stages"] and not baseline["scalability"]:
        raise ValueError(
            f"{path} has neither a 'stages' nor a 'scalability' section"
        )
    return baseline


def baseline_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """The recordable baseline blob of one bench run
    (``--update-baseline``)."""
    return {
        "stages": dict(payload["stages"]),
        "scalability": dict(payload["scalability"]),
    }


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds over *repeats* calls of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _batch_requests():
    """The schedule_batch workload: 100 corpus-shaped problems x three
    schedulers, dataflows precomputed (the drivers reuse analyzed
    dataflows too, so the sample isolates scheduling throughput)."""
    from repro.schedule.batch.compiler import CompileRequest

    architecture = Architecture.m1("16K")
    requests = []
    for seed in range(100):
        application, clustering = random_application(seed, iterations=48)
        dataflow = analyze_dataflow(application, clustering)
        for name in ("basic", "ds", "cds"):
            requests.append(CompileRequest(
                name, application, architecture,
                clustering=clustering, dataflow=dataflow,
            ))
    return requests


def _experiment_stage_fns(spec) -> Dict[str, Callable[[], object]]:
    """Zero-arg stage callables for one bundled experiment.

    ``codegen``/``verify`` stay pinned to the reference backend so
    their timings remain comparable across baselines;
    ``codegen_templated``/``verify_fast`` time the template-compiled
    generator (forcing full visit materialization, so the sample is
    apples-to-apples with the reference build) and the vectorized
    fast-verification path on a templated program.  The simulate
    stages run the reference program for the same continuity reason.
    """
    from repro.lint.runner import lint_schedule

    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    schedule = CompleteDataScheduler(architecture).schedule(
        application, clustering
    )
    allocator = FrameBufferAllocator(schedule, debug_invariants=False)
    reference = generate_program(schedule, engine="reference")
    templated = generate_program(schedule, engine="templated")

    def _templated_codegen() -> None:
        program = generate_program(schedule, engine="templated")
        if len(program.visits):
            program.visits[0]  # force template stamping of every visit

    return {
        "dataflow": lambda: analyze_dataflow(application, clustering),
        "cds": lambda: CompleteDataScheduler(architecture).schedule(
            application, clustering
        ),
        "alloc": allocator.allocate,
        "codegen": lambda: generate_program(schedule, engine="reference"),
        "codegen_templated": _templated_codegen,
        "verify": lambda: verify_program(reference),
        "verify_fast": lambda: verify_program(templated),
        "lint": lambda: lint_schedule(schedule),
        # The batch-driver hot path: vectorized timeline, no trace, no
        # re-verification (verify/lint are timed as their own stages).
        "simulate": lambda: Simulator(
            MorphoSysM1(architecture), trace=False, verify=False
        ).run(reference),
        # The interactive default: full per-transfer trace via the
        # reference event-driven engine, plus program verification.
        "simulate_traced": lambda: Simulator(
            MorphoSysM1(architecture)
        ).run(reference),
    }


def _stage_totals(repeats: int) -> Dict[str, float]:
    """Per-stage best-of times, summed over the bundled experiments."""
    totals = {stage: 0.0 for stage in STAGES}
    for spec in paper_experiments():
        fns = _experiment_stage_fns(spec)
        for stage in STAGES:
            totals[stage] += _best_of(fns[stage], repeats)
    return totals


def profile_stages(stage_names, *, top: int = 25) -> str:
    """cProfile the requested stages over the bundled experiments.

    Each stage runs once per experiment under a dedicated profiler;
    the report shows the *top* entries by cumulative time.  This is
    the ``repro bench --profile-stages`` diagnostic — it answers
    "where does this stage spend its time" without running the timed
    bench.
    """
    import cProfile
    import io
    import pstats

    unknown = sorted(set(stage_names) - set(STAGES))
    if unknown:
        raise ValueError(
            f"unknown stage(s): {', '.join(unknown)}; "
            f"expected a subset of: {', '.join(STAGES)}"
        )
    per_experiment = [
        _experiment_stage_fns(spec) for spec in paper_experiments()
    ]
    sections = []
    for stage in stage_names:
        profiler = cProfile.Profile()
        for fns in per_experiment:
            fn = fns[stage]
            profiler.enable()
            fn()
            profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)
        sections.append(
            f"== stage {stage} (bundled experiments, top {top} by "
            f"cumulative time) ==\n{stream.getvalue().rstrip()}"
        )
    return "\n\n".join(sections)


def run_bench(
    *,
    quick: bool = False,
    baseline: Optional[Dict[str, object]] = None,
    baseline_source: str = "pre-overhaul",
) -> Dict[str, object]:
    """Time the pipeline; return the ``BENCH_pipeline.json`` payload.

    ``quick=True`` drops to best-of-2 (best-of-1 for the corpus study)
    for CI; the configurations are identical, only the repeat counts
    shrink, so quick results stay comparable to a committed full run
    within normal scheduling noise.

    ``baseline`` is the reference blob for the report's speedup
    column; it defaults to the embedded :data:`PRE_PR_BASELINE`
    literal, and ``repro bench --baseline <file>`` passes a recorded
    file instead.  ``baseline_source`` labels where it came from in
    the payload and the rendered report.

    The run also collects the observability metrics registry (the
    pipeline-stage timers populated by the corpus study's
    ``run_scheduler`` calls) and embeds its snapshot under
    ``"metrics"``; the regression gate ignores the section.  The
    process-global registry is reset at the start of the run.
    """
    from repro.analysis.corpus import corpus_study
    from repro.obs.metrics import get_registry, set_metrics_active

    registry = get_registry()
    registry.reset()
    metrics_were_active = set_metrics_active(True)

    # The per-stage and cds_large samples are milliseconds each; quick
    # mode keeps their full repeat counts (cheap, and best-of-N at full
    # N is what keeps the CI regression gate stable) and economises
    # only on the corpus study, the one genuinely expensive sample.
    stage_repeats = 3
    cds_repeats = 5
    corpus_repeats = 1 if quick else 3

    if baseline is None:
        baseline = PRE_PR_BASELINE

    try:
        application, clustering = random_application(
            123, max_clusters=32, iterations=64
        )
        architecture = Architecture.m1("16K")
        scalability = {
            "cds_large": _best_of(
                lambda: CompleteDataScheduler(architecture).schedule(
                    application, clustering
                ),
                cds_repeats,
            ),
            "corpus": _best_of(
                lambda: corpus_study(
                    range(20), fb="16K", iterations=48, engine="reference"
                ),
                corpus_repeats,
            ),
            "corpus_cold_batch": _best_of(
                lambda: corpus_study(range(20), fb="16K", iterations=48),
                corpus_repeats,
            ),
        }
        from repro.schedule.batch.compiler import compile_many

        # Milliseconds per run, so the batch samples keep the full
        # repeat count even in quick mode — best-of-1 is too noisy for
        # the speedup ratio the docs quote.
        requests = _batch_requests()
        batch_seconds = _best_of(
            lambda: compile_many(requests), cds_repeats
        )
        reference_seconds = _best_of(
            lambda: compile_many(requests, engine="reference"),
            cds_repeats,
        )
        scalability["schedule_batch"] = batch_seconds
        # Warm-vs-cold cache scenario: one cold run fills a throwaway
        # cache directory (timed once — a second "cold" run would
        # already hit), then the warm rerun is the gated sample.  The
        # warm replay is sub-millisecond and I/O-bound, so it always
        # gets a generous best-of count — repeats are nearly free and
        # a single sample is too noisy for the 25% CI gate.
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
            start = time.perf_counter()
            corpus_study(range(20), fb="16K", iterations=48, cache_dir=tmp)
            corpus_cold = time.perf_counter() - start
            corpus_warm = _best_of(
                lambda: corpus_study(
                    range(20), fb="16K", iterations=48, cache_dir=tmp
                ),
                10,
            )
        scalability["corpus_cached"] = corpus_warm
        stages = _stage_totals(stage_repeats)
        # Scheduler-as-a-service campaign (self-hosted, cold temp
        # cache, zipf-skewed fleet — see repro.service.bench).  The
        # request-latency percentiles join the scalability section so
        # the existing --compare gate covers them; the full loadgen
        # payload is embedded under "service" and written out as
        # BENCH_service.json by ``repro bench --service-output``.
        from repro.service.bench import run_service_bench

        service = run_service_bench(quick=quick)
        scalability["service_p50"] = service["latency"]["p50_s"]
        scalability["service_p99"] = service["latency"]["p99_s"]
    finally:
        set_metrics_active(metrics_were_active)

    baseline_scalability = baseline.get("scalability") or {}
    speedups = {
        name: baseline_scalability[name] / seconds
        for name, seconds in scalability.items()
        if seconds > 0 and name in baseline_scalability
    }
    return {
        "schema": 2,
        "quick": quick,
        "stages": stages,
        "scalability": scalability,
        "cache": {
            "corpus_cold": corpus_cold,
            "corpus_warm": corpus_warm,
            "warm_speedup": (
                corpus_cold / corpus_warm if corpus_warm > 0 else None
            ),
        },
        "batch": {
            "schedule_batch": batch_seconds,
            "schedule_reference": reference_seconds,
            "batch_speedup": (
                reference_seconds / batch_seconds
                if batch_seconds > 0 else None
            ),
        },
        "service": service,
        "baseline": baseline,
        "baseline_source": baseline_source,
        "speedup_vs_baseline": speedups,
        "metrics": registry.snapshot(),
    }


def compare_bench(
    current: Dict[str, object],
    baseline: Dict[str, object],
    *,
    max_regression_pct: float,
) -> List[str]:
    """Regressions of *current* against *baseline*, as messages.

    A section/key present in only one of the two reports is skipped;
    a timing more than ``max_regression_pct`` percent above the
    baseline's is a regression.
    """
    problems: List[str] = []
    limit = 1.0 + max_regression_pct / 100.0
    for section in ("stages", "scalability"):
        current_section = current.get(section) or {}
        baseline_section = baseline.get(section) or {}
        for name, reference in sorted(baseline_section.items()):
            measured = current_section.get(name)
            if measured is None or reference <= 0:
                continue
            if measured > reference * limit:
                problems.append(
                    f"{section}.{name}: {measured:.6f}s is "
                    f"{100.0 * (measured / reference - 1.0):.1f}% over the "
                    f"baseline {reference:.6f}s "
                    f"(limit +{max_regression_pct:.0f}%)"
                )
    return problems


def render_bench(payload: Dict[str, object]) -> str:
    """Human-readable table of one bench payload."""
    lines = ["pipeline stages (bundled experiments, best-of):"]
    source = payload.get("baseline_source", "pre-overhaul")
    baseline_stages = (payload.get("baseline") or {}).get("stages") or {}
    for stage, seconds in payload["stages"].items():
        reference = baseline_stages.get(stage)
        speedup = (
            f"  ({reference / seconds:4.2f}x vs {source})"
            if reference and seconds > 0 else ""
        )
        lines.append(
            f"  {stage:<15} {seconds * 1000.0:9.3f} ms{speedup}"
        )
    lines.append("scalability:")
    speedups = payload.get("speedup_vs_baseline", {})
    for name, seconds in payload["scalability"].items():
        speedup = speedups.get(name)
        extra = f"  ({speedup:4.2f}x vs {source})" if speedup else ""
        lines.append(f"  {name:<15} {seconds * 1000.0:9.3f} ms{extra}")
    cache = payload.get("cache")
    if cache:
        lines.append("persistent cache (corpus study, throwaway dir):")
        lines.append(
            f"  cold fill       {cache['corpus_cold'] * 1000.0:9.3f} ms"
        )
        warm_speedup = cache.get("warm_speedup")
        extra = f"  ({warm_speedup:4.2f}x vs cold)" if warm_speedup else ""
        lines.append(
            f"  warm rerun      {cache['corpus_warm'] * 1000.0:9.3f} ms"
            f"{extra}"
        )
    batch = payload.get("batch")
    if batch:
        lines.append(
            "batch compile (100 corpus workloads x 3 schedulers, cold):"
        )
        lines.append(
            f"  batch engine    {batch['schedule_batch'] * 1000.0:9.3f} ms"
        )
        batch_speedup = batch.get("batch_speedup")
        extra = f"  ({batch_speedup:4.2f}x vs reference)" if batch_speedup else ""
        lines.append(
            f"  reference       "
            f"{batch['schedule_reference'] * 1000.0:9.3f} ms{extra}"
        )
    service = payload.get("service")
    if service:
        latency = service.get("latency", {})
        lines.append(
            f"service ({service.get('clients')} clients x "
            f"{service.get('requests_per_client')} requests, "
            f"{service.get('distinct_workloads')} distinct workloads):"
        )
        lines.append(
            f"  p50 latency     {latency.get('p50_s', 0.0) * 1000.0:9.3f} ms"
        )
        lines.append(
            f"  p99 latency     {latency.get('p99_s', 0.0) * 1000.0:9.3f} ms"
        )
        lines.append(
            f"  throughput      "
            f"{service.get('throughput_rps', 0.0):9.1f} req/s  "
            f"(errors={service.get('errors')}, "
            f"hit_rate={service.get('hit_rate', 0.0):.2f})"
        )
    metrics_snapshot = payload.get("metrics")
    if metrics_snapshot and (
        metrics_snapshot.get("counters") or metrics_snapshot.get("timers")
    ):
        from repro.obs.metrics import MetricsRegistry

        rollup = MetricsRegistry()
        rollup.merge(metrics_snapshot)
        lines.append("metrics rollup:")
        for line in rollup.render().splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)
