"""Regeneration of the paper's Table 1.

Columns, as in the paper:

* ``N``  — total number of clusters;
* ``n``  — maximum number of kernels per cluster;
* ``DS`` — total data size per iteration (input data + intermediate
  results + final results);
* ``DT`` — data transfers avoided per iteration;
* ``RF`` — reuse (context) factor achieved;
* ``FB`` — one frame-buffer set size;
* ``DS%``  — Data Scheduler relative execution improvement;
* ``CDS%`` — Complete Data Scheduler relative execution improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.compare import ComparisonRow, compare_experiment
from repro.units import format_size
from repro.workloads.spec import ExperimentSpec, paper_experiments

__all__ = ["Table1Row", "build_table1", "render_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One measured row plus the paper's reported values."""

    spec: ExperimentSpec
    comparison: ComparisonRow

    @property
    def id(self) -> str:
        return self.spec.id

    @property
    def measured_rf(self) -> Optional[int]:
        return self.comparison.rf

    @property
    def measured_dt_words(self) -> Optional[int]:
        return self.comparison.dt_words

    @property
    def measured_ds_pct(self) -> Optional[float]:
        return self.comparison.ds_improvement_pct

    @property
    def measured_cds_pct(self) -> Optional[float]:
        return self.comparison.cds_improvement_pct


def build_table1(
    specs: Optional[Sequence[ExperimentSpec]] = None,
) -> List[Table1Row]:
    """Run every experiment and collect the rows."""
    specs = list(specs) if specs is not None else list(paper_experiments())
    return [
        Table1Row(spec=spec, comparison=compare_experiment(spec))
        for spec in specs
    ]


def _fmt_pct(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.0f}%"


def _fmt_opt(value) -> str:
    return "?" if value is None else str(value)


def render_table1(rows: Sequence[Table1Row], *, show_paper: bool = True) -> str:
    """Text rendering of the measured (and optionally paper) table."""
    header = (
        f"{'exp':<10} {'N':>2} {'n':>2} {'DS':>6} {'DT':>6} {'RF':>3} "
        f"{'FB':>4} {'DS%':>5} {'CDS%':>5}"
    )
    if show_paper:
        header += f"   {'paper RF':>8} {'paper DT':>8} {'paper DS%':>9} {'paper CDS%':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        comparison = row.comparison
        line = (
            f"{row.id:<10} {comparison.n_clusters:>2} "
            f"{comparison.max_kernels_per_cluster:>2} "
            f"{format_size(comparison.total_data_words):>6} "
            f"{format_size(row.measured_dt_words or 0):>6} "
            f"{_fmt_opt(row.measured_rf):>3} "
            f"{format_size(comparison.fb_words):>4} "
            f"{_fmt_pct(row.measured_ds_pct):>5} "
            f"{_fmt_pct(row.measured_cds_pct):>5}"
        )
        if show_paper:
            spec = row.spec
            line += (
                f"   {_fmt_opt(spec.paper_rf):>8} "
                f"{format_size(spec.paper_dt_words) if spec.paper_dt_words else '?':>8} "
                f"{_fmt_pct(spec.paper_ds_pct):>9} "
                f"{_fmt_pct(spec.paper_cds_pct):>10}"
            )
        lines.append(line)
    return "\n".join(lines)
