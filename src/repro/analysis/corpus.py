"""Robustness study over a corpus of random workloads.

The paper evaluates on twelve hand-picked experiments; this module
checks the Complete Data Scheduler's claims *in distribution*: over a
seeded corpus of random applications, how often is CDS strictly better
than the Data Scheduler, how large is the improvement, and does it ever
regress?  Used by ``benchmarks/test_corpus_robustness.py``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.compare import compare_workload
from repro.arch.params import Architecture
from repro.units import SizeLike
from repro.workloads.random_gen import random_application

__all__ = ["CorpusStats", "corpus_study"]


@dataclass
class CorpusStats:
    """Aggregate outcomes over the corpus."""

    seeds_total: int
    feasible: int = 0
    infeasible: int = 0
    with_keeps: int = 0
    cds_strictly_faster_than_ds: int = 0
    cds_regressions_vs_ds: int = 0
    ds_improvements_pct: List[float] = field(default_factory=list)
    cds_improvements_pct: List[float] = field(default_factory=list)

    @property
    def mean_cds_pct(self) -> Optional[float]:
        values = self.cds_improvements_pct
        return statistics.fmean(values) if values else None

    @property
    def median_cds_pct(self) -> Optional[float]:
        values = self.cds_improvements_pct
        return statistics.median(values) if values else None

    @property
    def min_cds_pct(self) -> Optional[float]:
        values = self.cds_improvements_pct
        return min(values) if values else None

    def summary(self) -> str:
        lines = [
            f"corpus: {self.seeds_total} workloads, {self.feasible} "
            f"feasible, {self.infeasible} infeasible at this FB size",
            f"retention found work on {self.with_keeps}/{self.feasible} "
            f"feasible workloads",
            f"CDS strictly faster than DS on "
            f"{self.cds_strictly_faster_than_ds}, regressions: "
            f"{self.cds_regressions_vs_ds}",
        ]
        if self.cds_improvements_pct:
            lines.append(
                f"CDS improvement over Basic: mean {self.mean_cds_pct:.1f}%"
                f", median {self.median_cds_pct:.1f}%, min "
                f"{self.min_cds_pct:.1f}%"
            )
        return "\n".join(lines)


def corpus_study(
    seeds: Sequence[int],
    *,
    fb: SizeLike = "4K",
    iterations: int = 6,
) -> CorpusStats:
    """Run the three-scheduler comparison over seeded random workloads."""
    architecture = Architecture.m1(fb)
    stats = CorpusStats(seeds_total=len(seeds))
    for seed in seeds:
        application, clustering = random_application(
            seed, iterations=iterations
        )
        row = compare_workload(application, clustering, architecture)
        if not (row.basic.feasible and row.ds.feasible
                and row.cds.feasible):
            stats.infeasible += 1
            continue
        stats.feasible += 1
        if row.cds.schedule.keeps:
            stats.with_keeps += 1
        if row.cds.total_cycles < row.ds.total_cycles:
            stats.cds_strictly_faster_than_ds += 1
        elif row.cds.total_cycles > row.ds.total_cycles:
            stats.cds_regressions_vs_ds += 1
        stats.ds_improvements_pct.append(row.ds_improvement_pct)
        stats.cds_improvements_pct.append(row.cds_improvement_pct)
    return stats
