"""Robustness study over a corpus of random workloads.

The paper evaluates on twelve hand-picked experiments; this module
checks the Complete Data Scheduler's claims *in distribution*: over a
seeded corpus of random applications, how often is CDS strictly better
than the Data Scheduler, how large is the improvement, and does it ever
regress?  Used by ``benchmarks/test_corpus_robustness.py``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.compare import compare_workloads
from repro.analysis.parallel import default_jobs, parallel_map
from repro.arch.params import Architecture
from repro.units import SizeLike
from repro.workloads.random_gen import random_application

__all__ = ["CorpusStats", "corpus_study"]


@dataclass
class CorpusStats:
    """Aggregate outcomes over the corpus."""

    seeds_total: int
    feasible: int = 0
    infeasible: int = 0
    with_keeps: int = 0
    cds_strictly_faster_than_ds: int = 0
    cds_regressions_vs_ds: int = 0
    ds_improvements_pct: List[float] = field(default_factory=list)
    cds_improvements_pct: List[float] = field(default_factory=list)
    #: Workloads whose CDS program has error-severity hazard findings
    #: under the default DMA policy (should stay 0).
    hazard_flagged: int = 0
    #: Summed DFA001 cost over the corpus: words moved by loads no
    #: kernel ever reads (wasted traffic the scheduler left behind).
    dead_transfer_words: int = 0
    #: Summed DFA002 cost over the corpus: traffic savings claimed by
    #: keep decisions whose retained values are never re-read.
    retention_waste_words: int = 0

    @property
    def mean_cds_pct(self) -> Optional[float]:
        values = self.cds_improvements_pct
        return statistics.fmean(values) if values else None

    @property
    def median_cds_pct(self) -> Optional[float]:
        values = self.cds_improvements_pct
        return statistics.median(values) if values else None

    @property
    def min_cds_pct(self) -> Optional[float]:
        values = self.cds_improvements_pct
        return min(values) if values else None

    def summary(self) -> str:
        lines = [
            f"corpus: {self.seeds_total} workloads, {self.feasible} "
            f"feasible, {self.infeasible} infeasible at this FB size",
            f"retention found work on {self.with_keeps}/{self.feasible} "
            f"feasible workloads",
            f"CDS strictly faster than DS on "
            f"{self.cds_strictly_faster_than_ds}, regressions: "
            f"{self.cds_regressions_vs_ds}",
        ]
        if self.cds_improvements_pct:
            lines.append(
                f"CDS improvement over Basic: mean {self.mean_cds_pct:.1f}%"
                f", median {self.median_cds_pct:.1f}%, min "
                f"{self.min_cds_pct:.1f}%"
            )
        lines.append(
            f"hazard analysis: {self.hazard_flagged} flagged, "
            f"{self.dead_transfer_words}w dead transfers, "
            f"{self.retention_waste_words}w unrealised retention savings"
        )
        return "\n".join(lines)


def _row_outcome(row):
    """Reduce one comparison row to the study's picklable aggregates."""
    if not (row.basic.feasible and row.ds.feasible and row.cds.feasible):
        return None
    from repro.dataflow.analyzer import analyze_schedule

    _, collector = analyze_schedule(row.cds.schedule)
    dead_words = sum(
        d.cost_words for d in collector.diagnostics
        if d.code == "DFA001"
    )
    retention_words = sum(
        d.cost_words for d in collector.diagnostics
        if d.code == "DFA002"
    )
    return (
        bool(row.cds.schedule.keeps),
        row.cds.total_cycles - row.ds.total_cycles,
        row.ds_improvement_pct,
        row.cds_improvement_pct,
        collector.has_errors,
        dead_words,
        retention_words,
    )


def _seed_chunk(task):
    """One worker's share of seeds, reduced to picklable aggregates.

    Top-level so :func:`parallel_map` can ship it to worker processes;
    the serial path runs the same function over one chunk holding every
    seed, so serial and parallel studies are identical by construction.

    With a cache directory, the reduced aggregates are memoised per
    ``(seed, fb, iterations)`` — a warm rerun skips the generator, the
    schedulers and the simulator for every unchanged seed.  Cache
    *misses* are compiled together through the batch front-end
    (:func:`~repro.analysis.compare.compare_workloads`); their
    per-scheduler outcomes are additionally cached under their own
    content keys, so other drivers touching the same workloads hit too.
    """
    seeds, fb, iterations, cache_dir, engine = task
    architecture = Architecture.m1(fb)
    cache = None
    if cache_dir is not None:
        from repro.cache import CacheStore, digest

        cache = CacheStore(cache_dir)
    outcomes: dict = {}
    pending = []
    seed_keys = {}
    for seed in seeds:
        if cache is not None:
            seed_keys[seed] = digest((
                "corpus_seed", seed, architecture.fb_set_words, iterations,
            ))
            cached = cache.get(seed_keys[seed])
            if cached is not None:
                # Wrapped in a 1-tuple: ``None`` (infeasible seed) is a
                # legitimate outcome but the store's miss sentinel.
                outcomes[seed] = cached[0]
                continue
        application, clustering = random_application(
            seed, iterations=iterations
        )
        pending.append((seed, application, clustering))

    if pending:
        # The study consumes aggregates only, so the per-transfer DMA
        # trace is not recorded.
        rows = compare_workloads(
            [
                (application, clustering, architecture, None)
                for _, application, clustering in pending
            ],
            trace=False, cache=cache, engine=engine,
        )
        for (seed, _, _), row in zip(pending, rows):
            outcome = _row_outcome(row)
            if cache is not None:
                cache.put(seed_keys[seed], (outcome,))
            outcomes[seed] = outcome
    return [outcomes[seed] for seed in seeds]


def corpus_study(
    seeds: Sequence[int],
    *,
    fb: SizeLike = "4K",
    iterations: int = 6,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    engine: str = "batch",
) -> CorpusStats:
    """Run the three-scheduler comparison over seeded random workloads.

    ``jobs`` partitions the seeds over worker processes (``None``/``1``
    = serial, ``0`` = one per CPU); the resulting stats are identical
    either way.  Each worker batch-compiles its whole share of cache
    misses in one :mod:`repro.schedule.batch` pass (``engine='batch'``;
    ``'reference'`` keeps the per-case scheduler).  ``cache_dir``
    enables the persistent pipeline cache: reruns over unchanged seeds
    (and unchanged code) are served from disk with byte-identical
    results.
    """
    stats = CorpusStats(seeds_total=len(seeds))
    seeds = list(seeds)
    workers = 1 if jobs in (None, 1) else (jobs if jobs > 0 else default_jobs())
    n_chunks = max(1, min(workers, len(seeds)))
    chunks = [seeds[i::n_chunks] for i in range(n_chunks)]
    chunk_outcomes = parallel_map(
        _seed_chunk,
        [(chunk, fb, iterations, cache_dir, engine) for chunk in chunks],
        jobs=jobs,
    )
    by_seed = {}
    for chunk, results in zip(chunks, chunk_outcomes):
        by_seed.update(zip(chunk, results))
    for seed in seeds:
        outcome = by_seed[seed]
        if outcome is None:
            stats.infeasible += 1
            continue
        (with_keeps, cds_minus_ds, ds_pct, cds_pct,
         hazard_flagged, dead_words, retention_words) = outcome
        stats.feasible += 1
        if with_keeps:
            stats.with_keeps += 1
        if cds_minus_ds < 0:
            stats.cds_strictly_faster_than_ds += 1
        elif cds_minus_ds > 0:
            stats.cds_regressions_vs_ds += 1
        stats.ds_improvements_pct.append(ds_pct)
        stats.cds_improvements_pct.append(cds_pct)
        if hazard_flagged:
            stats.hazard_flagged += 1
        stats.dead_transfer_words += dead_words
        stats.retention_waste_words += retention_words
    return stats
