"""Analysis and reporting: regeneration of the paper's evaluation.

* :mod:`repro.analysis.compare` — run Basic / DS / CDS on one workload
  and collect the comparison row;
* :mod:`repro.analysis.table1` — the full Table 1;
* :mod:`repro.analysis.figure6` — the Figure 6 bar chart;
* :mod:`repro.analysis.ablation` — ablations of the design choices
  (TF ranking, RF policy, DMA ordering, allocator splitting).
"""

from repro.analysis.compare import ComparisonRow, SchedulerOutcome, compare_experiment, compare_workload
from repro.analysis.figure6 import figure6_rows, render_figure6
from repro.analysis.table1 import Table1Row, build_table1, render_table1

__all__ = [
    "ComparisonRow",
    "SchedulerOutcome",
    "Table1Row",
    "build_table1",
    "compare_experiment",
    "compare_workload",
    "figure6_rows",
    "render_figure6",
    "render_table1",
]
