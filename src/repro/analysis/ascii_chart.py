"""Minimal ASCII bar charts for terminal reports."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["hbar_chart"]


def hbar_chart(
    rows: Sequence[Tuple[str, Sequence[Optional[float]]]],
    *,
    series_labels: Sequence[str],
    series_marks: Sequence[str] = ("#", "="),
    width: int = 50,
    max_value: Optional[float] = None,
    unit: str = "%",
) -> str:
    """Render grouped horizontal bars.

    Args:
        rows: ``(label, values)`` pairs; a ``None`` value renders as
            ``n/a`` (e.g. an infeasible schedule).
        series_labels: one label per series (shown in the legend).
        series_marks: one bar character per series.
        width: bar width in characters at ``max_value``.
        max_value: scale maximum; defaults to the data maximum.
        unit: suffix for printed values.
    """
    if len(series_labels) > len(series_marks):
        raise ValueError("need one mark per series")
    values = [
        value
        for _, series in rows
        for value in series
        if value is not None
    ]
    scale = max_value if max_value is not None else max(values or [1.0])
    scale = scale or 1.0
    label_width = max((len(label) for label, _ in rows), default=5)
    lines: List[str] = []
    legend = "  ".join(
        f"{mark} {label}"
        for mark, label in zip(series_marks, series_labels)
    )
    lines.append(f"legend: {legend}")
    for label, series in rows:
        for mark, value in zip(series_marks, series):
            if value is None:
                bar = "(infeasible)"
                text = "n/a"
            else:
                length = max(0, min(width, round(value / scale * width)))
                bar = mark * length
                text = f"{value:.1f}{unit}"
            lines.append(f"{label:>{label_width}} |{bar:<{width}}| {text}")
        lines.append("")
    return "\n".join(lines).rstrip()
