#!/usr/bin/env python3
"""Wavelet image codec with extractor-derived kernel timings.

Unlike the other examples, every kernel's cycle count here is measured
by the information extractor — executing the kernel's RC-array context
program on representative operands — instead of being hand-supplied.
The pipeline computes real luma, Haar bands and quantised streams, and
the functional simulator proves the schedule preserves the values.

Run:  python examples/wavelet_codec.py
"""

from repro import Architecture, CompleteDataScheduler, MorphoSysM1, Simulator
from repro.codegen import generate_program
from repro.kernels import default_library
from repro.workloads.wavelet import wavelet_functional


def main() -> None:
    library = default_library()
    print("information extractor: kernel cycles measured from RC-array "
          "programs")
    for op in ("rgb_to_luma", "haar8", "quant8x8", "zigzag_pack"):
        print(f"  {op:<12} -> {library.cycles_for(op):>4} cycles/iteration")
    print()

    application, clustering, impls = wavelet_functional(library)
    architecture = Architecture.m1("1K")
    schedule = CompleteDataScheduler(architecture).schedule(
        application, clustering
    )
    print(schedule.describe())
    print()

    machine = MorphoSysM1(architecture, functional=True)
    # Feed realistic 8-bit pixel planes instead of the default
    # full-range pseudo-random words.
    import numpy as np
    rng = np.random.RandomState(3)
    for plane in ("r", "g", "b"):
        for iteration in range(application.total_iterations):
            machine.external_memory.put(
                plane, iteration,
                rng.randint(0, 256, size=64).astype(np.int64),
            )
    report = Simulator(machine).run(
        generate_program(schedule), functional=True, kernel_impls=impls,
    )
    print(f"makespan: {report.total_cycles} cycles, "
          f"RF={schedule.rf}, verified={report.functional_verified}")
    stream = machine.external_memory.get("stream", 0)
    print(f"iteration 0 coded stream (first 12 words): "
          f"{stream[:12].tolist()}")


if __name__ == "__main__":
    main()
