#!/usr/bin/env python3
"""Quickstart: schedule a small application with all three schedulers.

Builds a three-cluster application with a coefficient table shared
between two same-set clusters, schedules it with the Basic Scheduler
[3], the Data Scheduler [5] and the paper's Complete Data Scheduler,
simulates each on the MorphoSys M1 model, and prints the comparison
the paper's Figure 6 is made of.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    Architecture,
    BasicScheduler,
    Clustering,
    CompleteDataScheduler,
    DataScheduler,
    simulate,
)


def build_application() -> Application:
    """A small DSP-style chain: filter -> refine -> combine.

    ``coeffs`` is an iteration-invariant table consumed by the first
    and third cluster (both on frame-buffer set 0) — the retention
    opportunity the Complete Data Scheduler exploits.
    """
    return (
        Application.build("quickstart", total_iterations=24)
        .data("samples", 256)
        .data("coeffs", 192, invariant=True)
        .kernel("filter", context_words=96, cycles=400,
                inputs=["samples", "coeffs"],
                outputs=["filtered"], result_sizes={"filtered": 256})
        .kernel("refine", context_words=64, cycles=300,
                inputs=["filtered"],
                outputs=["refined"], result_sizes={"refined": 256})
        .kernel("combine", context_words=80, cycles=350,
                inputs=["refined", "coeffs", "filtered"],
                outputs=["result"], result_sizes={"result": 128})
        .final("result")
        .finish()
    )


def main() -> None:
    application = build_application()
    clustering = Clustering.per_kernel(application)
    architecture = Architecture.m1("2K")
    print(f"application : {application}")
    print(f"clustering  : {clustering}")
    print(f"architecture: {architecture}\n")

    reports = {}
    for scheduler_cls in (BasicScheduler, DataScheduler,
                          CompleteDataScheduler):
        scheduler = scheduler_cls(architecture)
        schedule = scheduler.schedule(application, clustering)
        report = simulate(schedule, architecture, functional=True)
        reports[scheduler.name] = report
        print(f"--- {scheduler.name} ---")
        print(schedule.describe())
        print(
            f"cycles={report.total_cycles}  data={report.data_words}w  "
            f"contexts={report.context_words}w  "
            f"functionally verified={report.functional_verified}\n"
        )

    basic = reports["basic"]
    for name in ("ds", "cds"):
        improvement = 100 * reports[name].improvement_over(basic)
        print(f"{name.upper():>4} improvement over Basic: {improvement:.1f}%")


if __name__ == "__main__":
    main()
