#!/usr/bin/env python3
"""Loop fission and the context reuse factor (the paper's Figure 3).

Figure 3 contrasts the kernel scheduling graph before loop fission
(k1 k2 ... repeated n times, contexts reloaded every iteration) with
the fissioned version (each kernel executed RF consecutive times, so
contexts load n/RF times).  This example prints both programs and the
context-traffic arithmetic.

Run:  python examples/loop_fission.py
"""

from repro import Application, Architecture, BasicScheduler, Clustering, DataScheduler
from repro.codegen import generate_program


def main() -> None:
    application = (
        Application.build("fission-demo", total_iterations=8)
        .data("block", 96)
        .kernel("k1", context_words=120, cycles=200, inputs=["block"],
                outputs=["mid"], result_sizes={"mid": 96})
        .kernel("k2", context_words=120, cycles=200, inputs=["mid"],
                outputs=["out"], result_sizes={"out": 96})
        .final("out")
        .finish()
    )
    clustering = Clustering.per_kernel(application)
    architecture = Architecture.m1("1K")

    before = BasicScheduler(architecture).schedule(application, clustering)
    after = DataScheduler(architecture).schedule(application, clustering)

    print("=== Figure 3a: no fission (Basic Scheduler) ===")
    print(f"RF = {before.rf}: each iteration reloads every kernel's "
          f"contexts")
    print(generate_program(before).listing(max_visits=4))
    print()
    print("=== Figure 3b: loop fission (Data Scheduler) ===")
    print(f"RF = {after.rf}: each kernel runs {after.rf} consecutive "
          f"iterations per context load")
    print(generate_program(after).listing(max_visits=2))
    print()

    n = application.total_iterations
    ctx = application.total_context_words()
    print(f"context words per full run: "
          f"no fission = n * ctx = {n} * {ctx} = {n * ctx}; "
          f"fissioned = n/RF * ctx = {n}/{after.rf} * {ctx} = "
          f"{(n // after.rf) * ctx}")
    print(f"(summary: {before.summary().total_context_words} vs "
          f"{after.summary().total_context_words} context words)")


if __name__ == "__main__":
    main()
