#!/usr/bin/env python3
"""Kernel-schedule design-space exploration (the paper's framework [7]).

The kernel scheduler explores every contiguous partition of the kernel
sequence into clusters, evaluates each with a tentative Complete Data
Scheduler run, and picks the partition with the smallest estimated
execution time.  This example sweeps the ATR-SLD chain at two memory
sizes and shows how the best clustering changes with the frame buffer.

Run:  python examples/design_space_exploration.py
"""

from repro import Architecture, CompleteDataScheduler, KernelScheduler, simulate
from repro.schedule.estimate import estimate_execution_cycles
from repro.workloads.atr import atr_sld


def main() -> None:
    application, paper_clustering = atr_sld()

    for fb in ("8K", "10K", "12K"):
        architecture = Architecture.m1(fb)
        scheduler = CompleteDataScheduler(architecture)
        explorer = KernelScheduler(architecture, scheduler)
        result = explorer.explore(application)

        paper_schedule = None
        try:
            paper_schedule = scheduler.schedule(
                application, paper_clustering
            )
        except Exception:
            pass

        print(f"=== FB = {fb} ===")
        print(f"partitions evaluated : {result.candidates_evaluated} "
              f"(+{result.candidates_infeasible} infeasible)")
        print(f"best clustering      : {result.clustering}")
        print(f"estimated cycles     : {result.estimated_cycles}")
        report = simulate(result.schedule, architecture)
        print(f"simulated cycles     : {report.total_cycles}")
        if paper_schedule is not None:
            paper_estimate = estimate_execution_cycles(
                paper_schedule, architecture
            )
            print(f"paper clustering     : {paper_clustering} "
                  f"-> estimated {paper_estimate}")
        print()


if __name__ == "__main__":
    main()
