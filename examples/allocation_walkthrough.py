#!/usr/bin/env python3
"""Frame-buffer allocation walkthrough (the paper's Figure 5).

Reconstructs the figure's scenario — three kernels of one cluster
executing twice (RF=2) amid shared data kept for distant clusters —
and renders the frame-buffer set contents after every step as an ASCII
memory map, exactly like the figure's columns a) through g).

Run:  python examples/allocation_walkthrough.py
"""

from repro import Application, Architecture, Clustering
from repro.alloc import FrameBufferAllocator, compute_stats
from repro.schedule import CompleteDataScheduler, ScheduleOptions


def build() -> tuple:
    builder = Application.build("figure5-demo", total_iterations=8)
    builder.data("D13", 96, invariant=True)    # shared clusters 1 and 3
    builder.data("D37", 128, invariant=True)   # shared clusters 3 and 5
    builder.data("d1", 64).data("d2", 64)
    builder.data("in1", 48)
    builder.kernel("pre", context_words=16, cycles=60,
                   inputs=["in1", "D13"], outputs=["p"],
                   result_sizes={"p": 32})
    builder.final("p")
    builder.data("in2", 48)
    builder.kernel("other", context_words=16, cycles=60,
                   inputs=["in2"], outputs=["q"], result_sizes={"q": 32})
    builder.final("q")
    builder.kernel("k1", context_words=16, cycles=80,
                   inputs=["d1", "D13", "D37"],
                   outputs=["r13"], result_sizes={"r13": 48})
    builder.kernel("k2", context_words=16, cycles=80,
                   inputs=["d2"], outputs=["r23", "Rout"],
                   result_sizes={"r23": 48, "Rout": 40})
    builder.kernel("k3", context_words=16, cycles=80,
                   inputs=["r13", "r23"],
                   outputs=["R35"], result_sizes={"R35": 56})
    builder.final("Rout")
    builder.data("in6", 48)
    builder.kernel("mid", context_words=16, cycles=60,
                   inputs=["in6"], outputs=["m"], result_sizes={"m": 32})
    builder.kernel("k5", context_words=16, cycles=60,
                   inputs=["R35", "D37", "m"],
                   outputs=["f5"], result_sizes={"f5": 32})
    builder.final("f5")
    application = builder.finish()
    clustering = Clustering(
        application,
        [["pre"], ["other"], ["k1", "k2", "k3"], ["mid"], ["k5"]],
    )
    return application, clustering


def render_memory(snapshot, capacity, *, columns=64) -> str:
    """One-line ASCII map: address 0 on the left, capacity on the right."""
    cells = ["."] * columns
    for name, instance, extents in snapshot.regions:
        mark = name[0].upper() if name[0].isalpha() else "#"
        for extent in extents:
            lo = int(extent.start / capacity * columns)
            hi = max(int(extent.end / capacity * columns), lo + 1)
            for position in range(lo, min(hi, columns)):
                cells[position] = mark
    return "".join(cells)


def main() -> None:
    application, clustering = build()
    architecture = Architecture.m1("1K")
    schedule = CompleteDataScheduler(
        architecture, ScheduleOptions(rf_cap=2)
    ).schedule(application, clustering)
    print(schedule.describe())
    print()

    allocation = FrameBufferAllocator(schedule).allocate_set(0)
    capacity = allocation.capacity_words
    print(f"FB set 0 ({capacity} words), address 0 left -> {capacity} right")
    print("legend: each region marked by the first letter of its name\n")
    for snapshot in allocation.snapshots:
        occupancy = snapshot.occupied_words
        print(f"|{render_memory(snapshot, capacity)}| "
              f"{occupancy:>4}w  {snapshot.label}")

    stats = compute_stats(allocation)
    print(
        f"\npeak {stats.peak_words}/{capacity} words, "
        f"{stats.placements} placements, {stats.splits} splits, "
        f"{stats.irregular_placements} irregular placements"
    )
    print("(the paper's claim: first-fit with two growth directions and "
          "eager release never needs to split)")


if __name__ == "__main__":
    main()
