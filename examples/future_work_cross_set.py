#!/usr/bin/env python3
"""The paper's future work, implemented: cross-set retention.

Section 7 closes with: "Future work will address ... data and results
reuse among clusters assigned to different sets of the FB when the
architecture allows it."  This example builds that architecture (an M1
whose RC array can read operands from the other frame-buffer set) and
shows what the extension buys on the schedule it helps most: ATR-SLD**,
whose two correlation kernels sit on different sets, so the vanilla
Complete Data Scheduler cannot retain the 6K template bank for both.

Run:  python examples/future_work_cross_set.py
"""

from repro import Architecture, CompleteDataScheduler, ScheduleOptions, simulate
from repro.units import format_size
from repro.workloads.atr import atr_sld_star2
from repro.workloads.spec import paper_experiments


def main() -> None:
    application, clustering = atr_sld_star2()
    fb = next(
        spec.fb for spec in paper_experiments() if spec.id == "ATR-SLD**"
    )

    m1 = Architecture.m1(fb)
    extended = Architecture.m1(fb, fb_cross_set_access=True,
                               name=f"M1x-FB{fb}")

    vanilla = CompleteDataScheduler(m1).schedule(application, clustering)
    cross = CompleteDataScheduler(
        extended, ScheduleOptions(cross_set_retention=True)
    ).schedule(application, clustering)

    print(f"workload  : {application.name}  ({clustering})")
    print(f"memory    : FB set = {fb}\n")

    for label, schedule, architecture in (
        ("M1 (same-set retention only)", vanilla, m1),
        ("future-work architecture (cross-set)", cross, extended),
    ):
        report = simulate(schedule, architecture, functional=True)
        kept = ", ".join(
            f"{keep.label} {keep.name}({format_size(keep.size)})"
            for keep in schedule.keeps
        ) or "(nothing)"
        print(f"=== {label} ===")
        print(f"retains : {kept}")
        print(f"cycles  : {report.total_cycles}")
        print(f"data    : {report.data_words} words")
        print(f"verified: {report.functional_verified}\n")

    v_report = simulate(vanilla, m1)
    c_report = simulate(cross, extended)
    saving = 100 * (1 - c_report.total_cycles / v_report.total_cycles)
    print(f"cross-set retention wins {saving:.1f}% on this schedule — the "
          f"template bank no longer\nround-trips through external memory "
          f"for the second correlator.")


if __name__ == "__main__":
    main()
