#!/usr/bin/env python3
"""ATR template matching: where retention pays the most.

Automatic Target Recognition correlates every image chip against a
large bank of target templates.  The bank is iteration-invariant and
consumed by two correlation kernels in different clusters — without
retention it crosses the external-memory bus twice per chip.  This
example shows how the paper's three kernel schedules of the same
five-kernel chain change what the Complete Data Scheduler can retain,
reproducing the ATR-SLD / ATR-SLD* / ATR-SLD** rows of Table 1.

Run:  python examples/atr_template_matching.py
"""

from repro import Architecture
from repro.analysis.compare import compare_workload
from repro.units import format_size
from repro.workloads.atr import atr_sld, atr_sld_star, atr_sld_star2


def main() -> None:
    architecture = Architecture.m1("8K")
    print(f"architecture: {architecture}\n")

    for builder in (atr_sld, atr_sld_star, atr_sld_star2):
        application, clustering = builder()
        row = compare_workload(application, clustering, architecture)
        schedule = row.cds.schedule
        kept = ", ".join(
            f"{keep.label} {keep.name}({format_size(keep.size)})"
            for keep in schedule.keeps
        ) or "(nothing)"
        print(f"=== {application.name} ===")
        print(f"kernel schedule : {clustering}")
        print(f"CDS retains     : {kept}")
        print(
            f"traffic         : basic={row.basic.data_words}w  "
            f"cds={row.cds.data_words}w  "
            f"avoided/iter={row.dt_words}w"
        )
        print(
            f"improvement     : DS={row.ds_improvement_pct:.1f}%  "
            f"CDS={row.cds_improvement_pct:.1f}%"
        )
        print()

    print(
        "Note how the ** schedule puts the two correlators on different\n"
        "frame-buffer sets: the template bank can no longer be retained\n"
        "for both, and the CDS advantage collapses — kernel scheduling\n"
        "and data scheduling are coupled decisions."
    )


if __name__ == "__main__":
    main()
