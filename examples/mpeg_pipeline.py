#!/usr/bin/env python3
"""MPEG coding loop with REAL kernels on the functional RC-array model.

The pipeline DCT -> quantise -> dequantise -> IDCT -> zig-zag runs on
actual 8x8 integer blocks: the kernel library supplies RC-array context
programs whose outputs are checked against NumPy references, and the
scheduled execution (with the Complete Data Scheduler's retention of
the quantised coefficients between same-set clusters) is verified to
produce bit-identical results to a direct execution.

Run:  python examples/mpeg_pipeline.py
"""

import numpy as np

from repro import Architecture, CompleteDataScheduler, MorphoSysM1, Simulator
from repro.codegen import generate_program
from repro.workloads.mpeg import mpeg_functional


def main() -> None:
    application, clustering, impls = mpeg_functional()
    architecture = Architecture.m1("2K")

    schedule = CompleteDataScheduler(architecture).schedule(
        application, clustering
    )
    print(schedule.describe())
    print()

    program = generate_program(schedule)
    print(program.listing(max_visits=3))
    print()

    machine = MorphoSysM1(architecture, functional=True)
    report = Simulator(machine).run(
        program, functional=True, kernel_impls=impls, seed=7
    )

    print(f"makespan            : {report.total_cycles} cycles")
    print(f"data traffic        : {report.data_words} words")
    print(f"context traffic     : {report.context_words} words")
    print(f"RC-array utilisation: {report.rc_utilisation:.0%}")
    print(f"functional check    : "
          f"{'PASS' if report.functional_verified else 'FAIL'}")
    print()

    # Show one real result: iteration 0's zig-zag-packed coefficients.
    packed = machine.external_memory.get("z", 0)
    reconstructed = machine.external_memory.get("xr", 0).reshape(8, 8)
    print("zig-zag coefficients (first 16):", packed[:16].tolist())
    print("reconstructed block row 0      :",
          reconstructed[0].tolist())
    original = machine.external_memory.get("x", 0).reshape(8, 8)
    error = np.abs(reconstructed - original).max()
    print(f"max reconstruction error vs original: {error} "
          f"(quantiser step is 16)")

    print()
    print(report.gantt())


if __name__ == "__main__":
    main()
