"""Benchmark: CDS robustness over a random-workload corpus.

The paper proves its point on twelve experiments; this benchmark checks
the claims hold *in distribution* over seeded random applications:

* the Complete Data Scheduler never regresses against the Data
  Scheduler (keeps are only accepted when they fit, and kept transfers
  are strictly removed work);
* wherever retention candidates exist and fit, CDS is strictly faster;
* both always dominate the Basic Scheduler.
"""

import pytest

from repro.analysis.corpus import corpus_study


def test_corpus_robustness(benchmark):
    stats = benchmark.pedantic(
        corpus_study, args=(list(range(60)),),
        kwargs={"fb": "4K", "iterations": 4},
        rounds=1, iterations=1,
    )
    assert stats.feasible >= 30, "corpus mostly infeasible; check sizes"
    # The central guarantee: retention never hurts.
    assert stats.cds_regressions_vs_ds == 0
    # Retention finds work on a decent fraction of random workloads.
    assert stats.with_keeps >= stats.feasible // 4
    # And the schedulers dominate Basic throughout.
    assert all(pct >= 0 for pct in stats.ds_improvements_pct)
    assert all(pct > 0 for pct in stats.cds_improvements_pct)
    print("\n" + stats.summary())


def test_corpus_at_tight_memory(benchmark):
    """At a tight FB size many random workloads become infeasible; the
    feasible ones still obey the ordering."""
    stats = benchmark.pedantic(
        corpus_study, args=(list(range(60, 120)),),
        kwargs={"fb": "1K", "iterations": 4},
        rounds=1, iterations=1,
    )
    assert stats.infeasible > 0
    assert stats.cds_regressions_vs_ds == 0
    print("\n" + stats.summary())
