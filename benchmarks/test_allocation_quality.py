"""Benchmark: the section-5/6 allocator quality claims.

"For all examples no data or result has to be split into several
parts.  Moreover, it simplifies accesses to FB, as well as, promotes
regularity in data allocation.  It achieves that the memory size used
is the minimum allowed by the architecture."

The benchmark runs the Figure-4 allocator on the Complete Data
Scheduler's schedule of every Table-1 experiment (both frame-buffer
sets) and asserts: zero splits, no overlaps, peak within the set, and a
bounded number of regularity violations.
"""

import pytest

from repro.alloc.allocator import FrameBufferAllocator
from repro.alloc.stats import compute_stats
from repro.arch.params import Architecture
from repro.schedule.complete import CompleteDataScheduler
from repro.workloads.spec import paper_experiments

_SPECS = {spec.id: spec for spec in paper_experiments()}


@pytest.mark.parametrize("experiment_id", list(_SPECS))
def test_allocation_quality(benchmark, experiment_id):
    spec = _SPECS[experiment_id]
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)
    schedule = CompleteDataScheduler(architecture).schedule(
        application, clustering
    )

    def allocate_both_sets():
        allocator = FrameBufferAllocator(schedule)
        return allocator.allocate()

    set0, set1 = benchmark(allocate_both_sets)

    for allocation in (set0, set1):
        allocation.verify()  # overlap-freedom, offline re-check
        stats = compute_stats(allocation)
        # Paper claim: never split.
        assert stats.split_free, (
            f"{spec.id}: {stats.splits} split placements on "
            f"set {allocation.fb_set}"
        )
        # Capacity respected, peak consistent with the schedule.
        assert stats.peak_words <= architecture.fb_set_words
        # Regularity promoted: the vast majority of placements keep
        # iteration adjacency.
        if stats.placements:
            assert stats.irregular_placements <= max(
                2, stats.placements // 4
            ), (
                f"{spec.id}: {stats.irregular_placements}/"
                f"{stats.placements} irregular placements"
            )

    print(
        f"\n{spec.id:<10} set0: peak {set0.peak_words}/"
        f"{set0.capacity_words}w, {len(set0.records)} placements, "
        f"{set0.splits} splits, {set0.irregular_placements} irregular | "
        f"set1: peak {set1.peak_words}/{set1.capacity_words}w"
    )


def test_allocator_splitting_fallback(benchmark):
    """Splitting exists as a last resort: with splitting disabled a
    pathologically fragmented workload raises; with it enabled the same
    workload allocates (access 'becomes complex' but succeeds)."""
    from repro.core.application import Application
    from repro.core.cluster import Clustering
    from repro.errors import FragmentationError
    from repro.alloc.free_list import FreeBlockList

    def fragmented_case():
        fbl = FreeBlockList(256)
        fbl.allocate_at(96, 64)  # free: [0..96) + [160..256)
        return fbl.allocate_split(150, from_high=True)

    extents = benchmark(fragmented_case)
    assert len(extents) == 2
    assert sum(e.size for e in extents) == 150

    fbl = FreeBlockList(256)
    fbl.allocate_at(96, 64)
    with pytest.raises(FragmentationError):
        fbl.allocate_high(150)
