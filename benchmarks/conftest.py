"""Shared benchmark fixtures and reporting helpers.

Every benchmark regenerates a piece of the paper's evaluation and
*asserts the reproduced shape* (orderings, reuse factors, feasibility
claims) while pytest-benchmark records the runtime of the regeneration
itself.  Measured-vs-paper numbers are printed so a benchmark run
doubles as the data source for EXPERIMENTS.md.
"""

import pytest

from repro.workloads.spec import paper_experiments


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table1: benchmarks regenerating Table 1 rows"
    )


@pytest.fixture(scope="session")
def specs():
    return {spec.id: spec for spec in paper_experiments()}


@pytest.fixture(scope="session")
def experiment_ids():
    return [spec.id for spec in paper_experiments()]
