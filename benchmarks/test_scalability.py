"""Benchmarks: compile-time scalability of the toolchain itself.

The paper's schedulers run at compilation time, so their own cost
matters.  These benchmarks track how the pipeline stages scale with
application size (random workloads of increasing size) and with the
design-space size (kernel-scheduler exploration).
"""

import pytest

from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.codegen.verifier import verify_program
from repro.core.dataflow import analyze_dataflow
from repro.schedule.complete import CompleteDataScheduler
from repro.schedule.data_scheduler import DataScheduler
from repro.schedule.kernel_scheduler import KernelScheduler
from repro.sim.engine import Simulator
from repro.workloads.random_gen import random_application

_ARCH = Architecture.m1("8K")


@pytest.mark.parametrize("clusters", [3, 5, 8])
def test_cds_scheduling_scales(benchmark, clusters):
    application, clustering = random_application(
        123, max_clusters=clusters, iterations=8
    )
    scheduler = CompleteDataScheduler(_ARCH)
    schedule = benchmark(scheduler.schedule, application, clustering)
    assert schedule.rf >= 1


def test_cds_scheduling_large(benchmark):
    """The ``repro bench`` "cds_large" scalability configuration: a
    32-cluster / 64-iteration workload on a 16K frame buffer."""
    application, clustering = random_application(
        123, max_clusters=32, iterations=64
    )
    scheduler = CompleteDataScheduler(Architecture.m1("16K"))
    schedule = benchmark(scheduler.schedule, application, clustering)
    assert schedule.rf >= 1


def test_corpus_study_throughput(benchmark):
    """The ``repro bench`` "corpus" configuration: the three-scheduler
    study over 20 seeded workloads at 16K / 48 iterations."""
    from repro.analysis.corpus import corpus_study

    stats = benchmark(corpus_study, range(20), fb="16K", iterations=48)
    assert stats.feasible > 0


def test_dataflow_analysis(benchmark):
    application, clustering = random_application(77, iterations=8)
    dataflow = benchmark(analyze_dataflow, application, clustering)
    assert len(dataflow.objects) == len(application.objects)


def test_program_generation(benchmark):
    application, clustering = random_application(88, iterations=16)
    schedule = DataScheduler(_ARCH).schedule(application, clustering)
    program = benchmark(generate_program, schedule)
    assert len(program) == schedule.rounds * len(clustering)


def test_program_verification(benchmark):
    application, clustering = random_application(88, iterations=16)
    schedule = DataScheduler(_ARCH).schedule(application, clustering)
    program = generate_program(schedule)
    benchmark(verify_program, program)


def test_simulation_throughput(benchmark):
    application, clustering = random_application(99, iterations=16)
    schedule = DataScheduler(_ARCH).schedule(application, clustering)
    program = generate_program(schedule)

    def simulate_once():
        return Simulator(MorphoSysM1(_ARCH)).run(program)

    report = benchmark(simulate_once)
    assert report.total_cycles > 0


def test_kernel_scheduler_exploration(benchmark):
    """Exhaustive exploration of 2^(K-1) partitions for K=6."""
    application, _ = random_application(55, max_clusters=3,
                                        max_kernels_per_cluster=2,
                                        iterations=4)
    explorer = KernelScheduler(_ARCH, DataScheduler(_ARCH))
    result = benchmark(explorer.explore, application)
    assert result.estimated_cycles > 0
