"""Benchmark: regenerate the paper's Figure 6 bar chart.

Figure 6 plots the relative execution improvement of the Data Scheduler
and the Complete Data Scheduler over the Basic Scheduler for all twelve
experiments.  The benchmark regenerates the full series, asserts the
figure's visual claims, and prints the ASCII chart.
"""

import pytest

from repro.analysis.figure6 import figure6_rows, render_figure6
from repro.workloads.spec import paper_experiments


def test_figure6_series(benchmark):
    rows = benchmark.pedantic(figure6_rows, rounds=1, iterations=1)

    assert len(rows) == 12
    by_id = {experiment: (ds, cds) for experiment, ds, cds in rows}

    # Visual claim 1: the CDS bar is never shorter than the DS bar.
    for experiment, (ds_pct, cds_pct) in by_id.items():
        assert cds_pct >= ds_pct - 1e-9, experiment

    # Visual claim 2: every CDS bar is visible (strictly positive).
    for experiment, (_, cds_pct) in by_id.items():
        assert cds_pct > 0, experiment

    # Visual claim 3: E3 shows the tallest bars of the synthetic family
    # (deep loop fission dominates) — as in the paper's chart.
    assert by_id["E3"][1] > by_id["E1"][1]
    assert by_id["E3"][0] > by_id["E2"][0]

    # Visual claim 4: within the ATR-SLD family the * schedule has the
    # largest CDS gain (it retains the most data).
    assert by_id["ATR-SLD*"][1] >= by_id["ATR-SLD"][1]
    assert by_id["ATR-SLD*"][1] > by_id["ATR-SLD**"][1]

    print("\n" + render_figure6(rows))


def test_figure6_improvement_metric_is_relative(benchmark):
    """The chart metric is (T_basic - T_x) / T_basic, bounded by 100%."""
    spec = paper_experiments()[0]
    from repro.analysis.compare import compare_experiment
    row = benchmark(compare_experiment, spec)
    assert 0 <= row.cds_improvement_pct < 100
