"""Benchmarks: ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the Complete Data Scheduler and
checks it earns its keep on the paper's workloads:

* TF ranking vs. size-first vs. discovery-order retention;
* RF-first (the paper's policy) vs. joint (RF, keeps) exploration;
* context-scheduler DMA orderings;
* loop fission (RF) alone, retention alone, and both together.
"""

import pytest

from repro.analysis.ablation import (
    dma_policy_ablation,
    keep_policy_ablation,
    rf_policy_ablation,
)
from repro.arch.machine import MorphoSysM1
from repro.arch.params import Architecture
from repro.codegen.generator import generate_program
from repro.schedule.base import ScheduleOptions
from repro.schedule.complete import CompleteDataScheduler
from repro.sim.engine import Simulator
from repro.workloads.spec import paper_experiments

_SPECS = {spec.id: spec for spec in paper_experiments()}
_ABLATION_ROWS = ["E1", "E1*", "ATR-SLD", "MPEG"]


@pytest.mark.parametrize("experiment_id", _ABLATION_ROWS)
def test_keep_policy_ablation(benchmark, experiment_id):
    """The paper's TF ranking is never beaten by naive orders by more
    than noise, and strictly helps somewhere."""
    spec = _SPECS[experiment_id]
    results = benchmark(keep_policy_ablation, spec)
    by_variant = {result.variant: result for result in results}
    tf = by_variant["keep=tf"]
    assert tf.feasible
    for variant, result in by_variant.items():
        if result.feasible:
            assert tf.total_cycles <= result.total_cycles * 1.02, variant
    print(f"\n{spec.id}: " + ", ".join(
        f"{r.variant}={r.total_cycles}" for r in results if r.feasible
    ))


@pytest.mark.parametrize("experiment_id", _ABLATION_ROWS)
def test_rf_policy_ablation(benchmark, experiment_id):
    """Joint exploration can only match or beat RF-first (it includes
    it in its search space) at the cost of a bigger search."""
    spec = _SPECS[experiment_id]
    results = benchmark(rf_policy_ablation, spec)
    by_variant = {result.variant: result for result in results}
    paper = by_variant["rf=max_then_keep"]
    joint = by_variant["rf=joint"]
    assert paper.feasible and joint.feasible
    assert joint.total_cycles <= paper.total_cycles * 1.02


@pytest.mark.parametrize("experiment_id", _ABLATION_ROWS)
def test_dma_policy_ablation(benchmark, experiment_id):
    """Contexts-first ([4]) beats the other *space-sound* ordering
    (stores-first) on every workload.

    The loads-first variant can report better cycle counts, but it
    issues a visit's loads before the previous same-set visit's stores
    — coexisting arrivals and departures that the ``DS(C_c) <= FBS``
    feasibility check does not budget for.  It is measured here as an
    upper bound on what relaxing the space ordering could buy, not as a
    legal policy."""
    spec = _SPECS[experiment_id]
    results = benchmark(dma_policy_ablation, spec)
    by_variant = {result.variant: result for result in results}
    default = by_variant["dma=contexts_first"]
    naive = by_variant["dma=stores_first"]
    unsound = by_variant["dma=loads_first"]
    adaptive = by_variant["dma=adaptive"]
    assert default.feasible and naive.feasible and adaptive.feasible
    assert default.total_cycles <= naive.total_cycles * 1.02
    # The space-relaxed bound is never *worse* than the sound orderings.
    assert unsound.total_cycles <= default.total_cycles * 1.02
    # Adaptive is sound AND at least as fast as the default; where the
    # occupancy budget allows, it matches the relaxed bound.
    assert adaptive.total_cycles <= default.total_cycles
    assert adaptive.total_cycles >= unsound.total_cycles
    print(
        f"\n{spec.id}: contexts_first={default.total_cycles} "
        f"stores_first={naive.total_cycles} "
        f"adaptive={adaptive.total_cycles} "
        f"loads_first(space-relaxed bound)={unsound.total_cycles}"
    )


def test_mechanism_decomposition(benchmark):
    """Disentangle the two CDS mechanisms on E1*: loop fission alone
    (RF capped vs free) and retention alone (keeps on RF=1)."""
    spec = _SPECS["E1*"]
    application, clustering = spec.build()
    architecture = Architecture.m1(spec.fb)

    def run(options):
        schedule = CompleteDataScheduler(architecture, options).schedule(
            application, clustering
        )
        report = Simulator(MorphoSysM1(architecture)).run(
            generate_program(schedule)
        )
        return schedule, report

    def decompose():
        return {
            "full": run(ScheduleOptions()),
            "rf_only": None,
            "keeps_only": run(ScheduleOptions(rf_cap=1)),
        }

    results = benchmark.pedantic(decompose, rounds=1, iterations=1)
    full_schedule, full_report = results["full"]
    keeps_schedule, keeps_report = results["keeps_only"]
    assert full_schedule.rf > keeps_schedule.rf == 1
    assert keeps_schedule.keeps  # retention still active at RF=1
    # Both mechanisms matter: full CDS beats retention-only.
    assert full_report.total_cycles < keeps_report.total_cycles
    print(
        f"\nE1* decomposition: full={full_report.total_cycles} "
        f"(RF={full_schedule.rf}, keeps={len(full_schedule.keeps)}), "
        f"keeps-only={keeps_report.total_cycles} "
        f"(keeps={len(keeps_schedule.keeps)})"
    )
